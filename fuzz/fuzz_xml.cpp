// Fuzz target: the XML parser and the WSDL loader layered on it. Both
// consume peer-controlled text (service descriptions, directory
// summaries, syntactic-baseline documents), so any abort, leak, or
// uncaught exception on arbitrary bytes is a bug. The harness asserts
// the no-throw contract of the try_* entry points by calling them bare:
// an escaping exception terminates the fuzzer and counts as a crash.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "description/wsdl.hpp"
#include "xml/parser.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    const std::string_view text(reinterpret_cast<const char*>(data), size);

    const auto doc = sariadne::xml::try_parse(text);
    if (doc.ok()) {
        // A parsed document must be walkable without faulting.
        (void)doc.value().root.name();
        (void)doc.value().root.children().size();
    }

    (void)sariadne::desc::try_parse_wsdl(text);
    return 0;
}
