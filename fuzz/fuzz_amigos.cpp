// Fuzz target: Amigo-S description loading — the service-advertisement
// and request documents every node accepts from peers. Exercises both
// try_parse entry points; on success, round-trips through the serializer
// and re-parses, asserting the serializer emits documents its own parser
// accepts (serialize∘parse must be closed on whatever the fuzzer finds).
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string_view>

#include "description/amigos_io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    const std::string_view text(reinterpret_cast<const char*>(data), size);

    if (const auto service = sariadne::desc::try_parse_service(text);
        service.ok()) {
        const std::string again =
            sariadne::desc::serialize_service(service.value());
        if (!sariadne::desc::try_parse_service(again).ok()) std::abort();
    }

    if (const auto request = sariadne::desc::try_parse_request(text);
        request.ok()) {
        const std::string again =
            sariadne::desc::serialize_request(request.value());
        if (!sariadne::desc::try_parse_request(again).ok()) std::abort();
    }
    return 0;
}
