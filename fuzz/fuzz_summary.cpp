// Fuzz target: the exact-summary image codecs — the snapshot
// (try_decode_summary) and word-granular delta (try_decode_delta) bytes a
// directory accepts from backbone peers inside kSummaryBitmap /
// kSummaryDelta frames. Every byte sequence must map to a validated value
// or a Result error; accepted images must satisfy the encode∘decode
// closure: re-encoding a decoded value yields bytes the decoder accepts
// again as an equal value. Any escaping exception, abort, or overread
// under ASan is a finding.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "summary/interval_summary.hpp"
#include "summary/summary_wire.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    namespace summary = sariadne::summary;
    const std::span<const std::uint8_t> bytes(data, size);

    const auto snapshot = summary::try_decode_summary(bytes);
    if (snapshot.ok()) {
        const std::vector<std::uint8_t> again =
            summary::encode_summary(snapshot.value());
        const auto redecoded = summary::try_decode_summary(again);
        if (!redecoded.ok() || !(redecoded.value() == snapshot.value())) {
            std::abort();
        }
    }

    const auto delta = summary::try_decode_delta(bytes);
    if (delta.ok()) {
        const std::vector<std::uint8_t> again =
            summary::encode_delta(delta.value());
        const auto redecoded = summary::try_decode_delta(again);
        if (!redecoded.ok() ||
            redecoded.value().base_version != delta.value().base_version ||
            redecoded.value().new_version != delta.value().new_version ||
            redecoded.value().entries.size() != delta.value().entries.size()) {
            std::abort();
        }
    }

    // The two magics are disjoint ('I','S' vs 'I','D'): no input may be
    // accepted by both decoders.
    if (snapshot.ok() && delta.ok()) std::abort();
    return 0;
}
