// Standalone driver for toolchains without libFuzzer (GCC). Linked into
// each fuzz target instead of -fsanitize=fuzzer, it provides main() and
// feeds LLVMFuzzerTestOneInput two ways:
//
//   1. replays every corpus file given on the command line (directories
//      are expanded recursively) — the regression half;
//   2. runs `-runs=N` deterministic mutations (splitmix64-seeded byte
//      flips, truncations, splices) of random corpus entries — a cheap,
//      non-coverage-guided smoke that still shakes out crashes under
//      ASan/UBSan builds.
//
// Flags mirror the libFuzzer spellings so CI invocations are identical:
//   fuzz_xml -runs=20000 -seed=1 fuzz/corpus/fuzz_xml
// Unknown -flags are ignored (so libFuzzer-only options don't error).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

namespace fs = std::filesystem;
using Bytes = std::vector<std::uint8_t>;

/// Deterministic 64-bit PRNG (splitmix64) — no std::random_device, so a
/// given (-seed, -runs, corpus) triple always exercises the same inputs.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next() {
        state_ += 0x9E3779B97F4A7C15ull;
        std::uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }

    std::size_t below(std::size_t bound) {
        return bound == 0 ? 0 : static_cast<std::size_t>(next() % bound);
    }

private:
    std::uint64_t state_;
};

Bytes read_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return Bytes(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
}

void collect(const fs::path& path, std::vector<Bytes>& corpus) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        for (const auto& entry : fs::recursive_directory_iterator(path, ec)) {
            if (entry.is_regular_file()) corpus.push_back(read_file(entry.path()));
        }
    } else if (fs::is_regular_file(path, ec)) {
        corpus.push_back(read_file(path));
    } else {
        std::fprintf(stderr, "standalone fuzz driver: skipping %s\n",
                     path.string().c_str());
    }
}

/// One mutation step: pick an operation and a position. Operations mirror
/// libFuzzer's basic mutators minus the dictionary/coverage feedback.
void mutate(Bytes& input, Rng& rng) {
    switch (rng.below(6)) {
        case 0:  // flip a random bit
            if (!input.empty()) {
                input[rng.below(input.size())] ^=
                    static_cast<std::uint8_t>(1u << rng.below(8));
            }
            break;
        case 1:  // overwrite a byte with a random value
            if (!input.empty()) {
                input[rng.below(input.size())] =
                    static_cast<std::uint8_t>(rng.next());
            }
            break;
        case 2:  // truncate at a random point
            if (!input.empty()) input.resize(rng.below(input.size()));
            break;
        case 3:  // insert a random byte
            input.insert(input.begin() +
                             static_cast<std::ptrdiff_t>(
                                 rng.below(input.size() + 1)),
                         static_cast<std::uint8_t>(rng.next()));
            break;
        case 4:  // erase a random byte
            if (!input.empty()) {
                input.erase(input.begin() +
                            static_cast<std::ptrdiff_t>(rng.below(input.size())));
            }
            break;
        case 5:  // duplicate a random slice to the end
            if (!input.empty()) {
                const std::size_t begin = rng.below(input.size());
                const std::size_t len =
                    rng.below(input.size() - begin) + 1;
                input.insert(input.end(), input.begin() + begin,
                             input.begin() + begin + len);
            }
            break;
    }
}

}  // namespace

int main(int argc, char** argv) {
    std::uint64_t runs = 10000;
    std::uint64_t seed = 1;
    std::vector<Bytes> corpus;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("-runs=", 0) == 0) {
            runs = std::strtoull(arg.c_str() + 6, nullptr, 10);
        } else if (arg.rfind("-seed=", 0) == 0) {
            seed = std::strtoull(arg.c_str() + 6, nullptr, 10);
        } else if (!arg.empty() && arg[0] == '-') {
            // Ignore libFuzzer-only flags (-max_total_time=, -artifact_prefix=…)
        } else {
            collect(arg, corpus);
        }
    }

    for (const Bytes& input : corpus) {
        LLVMFuzzerTestOneInput(input.data(), input.size());
    }
    std::printf("standalone fuzz driver: replayed %zu corpus file(s)\n",
                corpus.size());

    Rng rng(seed);
    Bytes scratch;
    for (std::uint64_t i = 0; i < runs; ++i) {
        if (!corpus.empty() && rng.below(8) != 0) {
            scratch = corpus[rng.below(corpus.size())];
        }  // else keep mutating the previous input ("stacked" mutations)
        const std::size_t steps = 1 + rng.below(8);
        for (std::size_t s = 0; s < steps; ++s) mutate(scratch, rng);
        LLVMFuzzerTestOneInput(scratch.data(), scratch.size());
    }
    std::printf("standalone fuzz driver: completed %llu mutated run(s), OK\n",
                static_cast<unsigned long long>(runs));
    return 0;
}
