// Fuzz target: BloomFilter::try_deserialize — the summary image every
// directory accepts from the backbone during summary exchange. The wire
// form is a u64 sequence, so the byte input is reinterpreted in 8-byte
// words (memcpy, not a cast: the fuzzer's buffer has no alignment
// guarantee). Accepted filters must round-trip bit-exactly and support
// the full query surface without faulting.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bloom/bloom_filter.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    std::vector<std::uint64_t> words(size / 8);
    std::memcpy(words.data(), data, words.size() * 8);

    const auto filter = sariadne::bloom::BloomFilter::try_deserialize(words);
    if (!filter.has_value()) return 0;

    (void)filter->fill_ratio();
    (void)filter->false_positive_rate();
    (void)filter->set_bit_count();
    const std::vector<std::string> uris = {"http://a#X", "http://b#Y"};
    (void)filter->possibly_covers(uris);

    // Round-trip: serialize must reproduce the accepted image exactly.
    const std::vector<std::uint64_t> again = filter->serialize();
    if (again.size() != words.size() ||
        std::memcmp(again.data(), words.data(), words.size() * 8) != 0) {
        std::abort();
    }
    return 0;
}
