// Fuzz target: the Ariadne protocol wire codec — the byte boundary a
// deployed node would expose to the network. try_decode must map every
// byte sequence to either a validated WireMessage or a Result error;
// accepted messages must re-encode to a form the decoder accepts again
// with the same type (encode∘decode closure). Any escaping exception,
// abort, or overread under ASan is a finding.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "ariadne/wire.hpp"
#include "ariadne/wire_bridge.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    namespace wire = sariadne::ariadne::wire;
    namespace bridge = sariadne::ariadne::wirebridge;

    const auto decoded = wire::try_decode(std::span(data, size));
    if (decoded.ok()) {
        const std::vector<std::uint8_t> bytes = wire::encode(decoded.value());
        const auto again = wire::try_decode(bytes);
        if (!again.ok() || again.value().type != decoded.value().type) {
            std::abort();
        }
    }

    // The bridge layer lifts the same bytes into a protocol net::Message;
    // anything the frame codec accepts the bridge must either accept and
    // re-encode losslessly (type-stable) or reject as a Result error.
    const auto message = bridge::try_decode_message(std::span(data, size));
    if (message.ok()) {
        const auto bytes = bridge::encode_message(message.value());
        if (!bytes.ok()) std::abort();
        const auto again = bridge::try_decode_message(bytes.value());
        if (!again.ok() || again.value().type != message.value().type) {
            std::abort();
        }
    }
    return 0;
}
