// Fuzz target: the Ariadne protocol wire codec — the byte boundary a
// deployed node would expose to the network. try_decode must map every
// byte sequence to either a validated WireMessage or a Result error;
// accepted messages must re-encode to a form the decoder accepts again
// with the same type (encode∘decode closure). Any escaping exception,
// abort, or overread under ASan is a finding.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "ariadne/wire.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    namespace wire = sariadne::ariadne::wire;

    const auto decoded = wire::try_decode(std::span(data, size));
    if (!decoded.ok()) return 0;

    const std::vector<std::uint8_t> bytes = wire::encode(decoded.value());
    const auto again = wire::try_decode(bytes);
    if (!again.ok() || again.value().type != decoded.value().type) {
        std::abort();
    }
    return 0;
}
