// sariadne-analyze — whole-repo architectural & lock-order static
// analyzer, run as a gating CI job. Successor to lint_sariadne: the
// per-file repo rules live on in the `rules` pass, joined by three
// cross-file passes (see tools/analyze/passes.hpp and DESIGN.md §15):
//
//   layers   — layer-DAG include enforcement over src/tools/tests/fuzz
//   locks    — static lock-order analysis cross-checked against the
//              runtime LockRank constants
//   hotpath  — flow-aware purity from every lint:hot-path entry point
//
// Usage: sariadne-analyze <repo-root> [--json <out.sarif.json>]
//                         [--baseline <file>]
// Exits 0 when clean, 1 listing every finding, 2 on usage errors. The
// default baseline is <root>/tools/analyze/baseline.txt when present —
// committed empty at HEAD.
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/callgraph.hpp"
#include "analyze/model.hpp"
#include "analyze/passes.hpp"
#include "analyze/report.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

}  // namespace

int main(int argc, char** argv) {
    namespace analyze = sariadne::analyze;
    namespace fs = std::filesystem;

    fs::path root;
    fs::path json_out;
    fs::path baseline_path;
    bool baseline_set = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_out = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            baseline_path = argv[++i];
            baseline_set = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "usage: sariadne-analyze <repo-root> "
                         "[--json <out>] [--baseline <file>]\n";
            return 2;
        } else if (root.empty()) {
            root = arg;
        } else {
            std::cerr << "usage: sariadne-analyze <repo-root> "
                         "[--json <out>] [--baseline <file>]\n";
            return 2;
        }
    }
    if (root.empty() || !fs::is_directory(root)) {
        std::cerr << "sariadne-analyze: not a directory: " << root << "\n";
        return 2;
    }
    if (!baseline_set) baseline_path = root / "tools" / "analyze" / "baseline.txt";

    const auto t0 = Clock::now();
    const analyze::Repo repo = analyze::load_repo(root);
    const analyze::FunctionIndex index = analyze::build_function_index(repo);

    std::vector<analyze::PassResult> passes;
    const auto run = [&](const std::string& name, auto&& fn) {
        const auto start = Clock::now();
        analyze::PassResult result;
        result.name = name;
        result.findings = fn();
        result.ms = ms_since(start);
        passes.push_back(std::move(result));
    };
    run("rules", [&] { return analyze::run_rules_pass(repo); });
    run("layers", [&] { return analyze::run_layer_pass(repo); });
    run("locks", [&] { return analyze::run_lock_pass(repo, index); });
    run("hotpath", [&] { return analyze::run_hotpath_pass(repo, index); });

    const std::vector<std::string> baseline =
        analyze::load_baseline(baseline_path);
    std::size_t baselined = 0;
    for (analyze::PassResult& pass : passes) {
        baselined += analyze::apply_baseline(baseline, pass.findings);
    }

    if (!json_out.empty()) {
        std::ofstream out(json_out);
        out << analyze::to_sarif_json(passes);
    }

    std::size_t total = 0;
    for (const analyze::PassResult& pass : passes) {
        total += pass.findings.size();
    }
    analyze::print_report(total == 0 ? std::cout : std::cerr, passes,
                          repo.files.size(), index.defs.size(), baselined,
                          ms_since(t0));
    return total == 0 ? 0 : 1;
}
