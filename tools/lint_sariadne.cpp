// lint_sariadne — repo-rule source lint, run as a gating CI job. It
// enforces the three invariants no off-the-shelf tool knows about:
//
//   1. naked-mutex:    no `std::mutex` / `std::shared_mutex` member or
//                      local declared outside support/lock_rank.hpp — all
//                      product mutexes are rank-annotated RankedMutex /
//                      RankedSharedMutex. Suppress a genuine exception
//                      (e.g. a condition_variable's queue mutex) with a
//                      `lint:allow-naked-mutex(<reason>)` comment on or
//                      above the declaration.
//   2. metric-name:    no quoted metric-name literal passed to
//                      counter(/gauge(/histogram(/span( under src/ — all
//                      names come from obs/metric_names.hpp, so the
//                      exposition surface stays reviewable in one table
//                      (tests and benches may create ad-hoc metrics).
//   3. wire-decode:    a file marked `lint:wire-decode` is a wire-facing
//                      decode path and must not contain a `throw` token —
//                      malformed bytes surface as Result errors, never as
//                      exceptions unwinding a network event loop.
//   5. fuzz-coverage:  every `try_decode*` decoder defined under src/
//                      lives in a file marked `lint:wire-decode`, and the
//                      decoder's name must be exercised by at least one
//                      fuzz/*.cpp harness — a wire decoder nobody fuzzes
//                      is an untested attack surface.
//   6. fuzz-corpus:    every fuzz/fuzz_*.cpp target ships a non-empty
//                      seed directory fuzz/corpus/<target>/, so the
//                      fixed-seed CI smoke replays real frames instead of
//                      starting from nothing.
//   4. hot-path:       a file marked `lint:hot-path` sits on the
//                      zero-allocation query path and must not name
//                      `std::vector<...>` or `std::string` in code — those
//                      types heap-allocate on growth; scratch lives in the
//                      per-query Arena (ArenaVec/ArenaBitset) instead.
//                      Suppress a cold-path exception (setup, error
//                      reporting) with `lint:allow-hot-path-alloc(<reason>)`
//                      on or above the line.
//
// Usage: lint_sariadne <repo-root>; exits non-zero listing every finding.
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
    std::string file;
    std::size_t line;
    std::string rule;
    std::string message;
};

bool has_extension(const fs::path& path) {
    const std::string ext = path.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

/// Strips // and /* */ comments and the contents of string literals
/// (keeping the quotes), so token scans do not trip on prose. Line
/// structure is preserved for reporting. String contents are *kept* when
/// `keep_strings` is set (the metric-name rule needs to see them).
/// Raw string literals (`R"delim(...)delim"`) are handled explicitly:
/// their embedded quotes would otherwise invert the string/code state for
/// the rest of the file.
std::string strip_comments(const std::string& text, bool keep_strings) {
    std::string out;
    out.reserve(text.size());
    enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
    State state = State::kCode;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (state) {
            case State::kCode:
                if (c == '/' && next == '/') {
                    state = State::kLineComment;
                    ++i;
                } else if (c == '/' && next == '*') {
                    state = State::kBlockComment;
                    ++i;
                } else if (c == 'R' && next == '"' &&
                           (i == 0 || !(std::isalnum(static_cast<unsigned char>(
                                            text[i - 1])) ||
                                        text[i - 1] == '_'))) {
                    // R"delim( ... )delim" — find the opening '(' to learn
                    // the delimiter, then skip to the matching close.
                    const std::size_t open = text.find('(', i + 2);
                    if (open == std::string::npos) {
                        out += c;  // malformed; fall through as code
                        break;
                    }
                    const std::string closer =
                        ")" + text.substr(i + 2, open - (i + 2)) + "\"";
                    const std::size_t close = text.find(closer, open + 1);
                    const std::size_t end = close == std::string::npos
                                                ? text.size()
                                                : close + closer.size();
                    out += "R\"";
                    for (std::size_t j = open + 1;
                         j < (close == std::string::npos ? end : close); ++j) {
                        if (keep_strings) {
                            out += text[j];
                        } else if (text[j] == '\n') {
                            out += '\n';
                        }
                    }
                    out += '"';
                    i = end - 1;
                } else if (c == '"') {
                    state = State::kString;
                    out += c;
                } else if (c == '\'') {
                    state = State::kChar;
                    out += c;
                } else {
                    out += c;
                }
                break;
            case State::kLineComment:
                if (c == '\n') {
                    state = State::kCode;
                    out += c;
                }
                break;
            case State::kBlockComment:
                if (c == '*' && next == '/') {
                    state = State::kCode;
                    ++i;
                } else if (c == '\n') {
                    out += c;
                }
                break;
            case State::kString:
                if (c == '\\' && next != '\0') {
                    if (keep_strings) {
                        out += c;
                        out += next;
                    }
                    ++i;
                } else if (c == '"') {
                    state = State::kCode;
                    out += c;
                } else {
                    if (keep_strings) out += c;
                    if (c == '\n') out += c;  // unterminated; keep lines
                }
                break;
            case State::kChar:
                if (c == '\\' && next != '\0') {
                    ++i;
                } else if (c == '\'') {
                    state = State::kCode;
                    out += c;
                } else if (c == '\n') {
                    out += c;
                }
                break;
        }
    }
    return out;
}

std::vector<std::string> split_lines(const std::string& text) {
    std::vector<std::string> lines;
    std::string line;
    std::istringstream in(text);
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
}

bool is_under(const fs::path& path, const fs::path& root,
              std::string_view top) {
    const fs::path rel = path.lexically_relative(root);
    return !rel.empty() && rel.begin()->string() == top;
}

void check_naked_mutex(const fs::path& path, const std::string& raw,
                       const std::string& code, std::vector<Finding>& out) {
    if (path.filename() == "lock_rank.hpp") return;  // the wrapper itself
    static const std::regex naked(
        R"(\bstd::(recursive_)?(timed_)?(shared_)?mutex\b)");
    const std::vector<std::string> raw_lines = split_lines(raw);
    const std::vector<std::string> code_lines = split_lines(code);
    for (std::size_t i = 0; i < code_lines.size(); ++i) {
        if (!std::regex_search(code_lines[i], naked)) continue;
        // Allow `std::lock_guard<std::mutex>`-style template arguments of
        // RAII helpers only when the guarded object is itself suppressed;
        // the declaration rule is what matters, so scan for a suppression
        // marker on this raw line or the two above it.
        bool suppressed = false;
        for (std::size_t back = 0; back <= 2 && back <= i; ++back) {
            if (raw_lines[i - back].find("lint:allow-naked-mutex(") !=
                std::string::npos) {
                suppressed = true;
                break;
            }
        }
        if (!suppressed) {
            out.push_back(
                {path.string(), i + 1, "naked-mutex",
                 "std::mutex outside support/lock_rank.hpp — use "
                 "RankedMutex/RankedSharedMutex or add "
                 "lint:allow-naked-mutex(<reason>)"});
        }
    }
}

void check_metric_names(const fs::path& path, const std::string& code,
                        std::vector<Finding>& out) {
    if (path.filename() == "metric_names.hpp") return;  // the table itself
    static const std::regex literal(
        R"(\b(counter|gauge|histogram|span)\s*\(\s*")");
    const std::vector<std::string> lines = split_lines(code);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (std::regex_search(lines[i], literal)) {
            out.push_back({path.string(), i + 1, "metric-name",
                           "metric-name literal bypasses "
                           "obs/metric_names.hpp — add the name to the "
                           "table and reference the constant"});
        }
    }
}

void check_wire_decode(const fs::path& path, const std::string& raw,
                       const std::string& code, std::vector<Finding>& out) {
    if (raw.find("lint:wire-decode") == std::string::npos) return;
    static const std::regex throw_token(R"(\bthrow\b)");
    const std::vector<std::string> lines = split_lines(code);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (std::regex_search(lines[i], throw_token)) {
            out.push_back({path.string(), i + 1, "wire-decode",
                           "`throw` in a lint:wire-decode file — decode "
                           "paths report failures through Result"});
        }
    }
}

void check_hot_path(const fs::path& path, const std::string& raw,
                    const std::string& code, std::vector<Finding>& out) {
    // The rule text below names its own tokens; exempt this linter by
    // filename rather than contorting the patterns.
    if (path.filename() == "lint_sariadne.cpp") return;
    if (raw.find("lint:hot-path") == std::string::npos) return;
    static const std::regex allocating(R"(\bstd::vector\s*<|\bstd::string\b)");
    const std::vector<std::string> raw_lines = split_lines(raw);
    const std::vector<std::string> code_lines = split_lines(code);
    for (std::size_t i = 0; i < code_lines.size(); ++i) {
        if (!std::regex_search(code_lines[i], allocating)) continue;
        bool suppressed = false;
        for (std::size_t back = 0; back <= 2 && back <= i; ++back) {
            if (raw_lines[i - back].find("lint:allow-hot-path-alloc(") !=
                std::string::npos) {
                suppressed = true;
                break;
            }
        }
        if (!suppressed) {
            out.push_back(
                {path.string(), i + 1, "hot-path",
                 "std::vector/std::string in a lint:hot-path file — use the "
                 "query Arena (ArenaVec/ArenaBitset) or add "
                 "lint:allow-hot-path-alloc(<reason>)"});
        }
    }
}

struct DecoderDef {
    std::string name;
    std::string file;
    std::size_t line;
};

/// Finds `Result<...> try_decode*(` definitions/declarations in a src/
/// translation unit. Call sites never carry the Result return type, so
/// this matches the decoder surface itself, not its users.
void collect_decoders(const fs::path& path, const std::string& raw,
                      const std::string& code,
                      std::vector<DecoderDef>& decoders,
                      std::vector<Finding>& out) {
    const std::string ext = path.extension().string();
    if (ext != ".cpp" && ext != ".cc") return;
    static const std::regex def(R"(\bResult<[\w:<>,\s]+>\s+(try_decode\w*)\s*\()");
    const std::vector<std::string> lines = split_lines(code);
    bool defines_decoder = false;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        std::smatch match;
        if (!std::regex_search(lines[i], match, def)) continue;
        defines_decoder = true;
        decoders.push_back({match[1].str(), path.string(), i + 1});
    }
    if (defines_decoder &&
        raw.find("lint:wire-decode") == std::string::npos) {
        out.push_back({path.string(), 1, "fuzz-coverage",
                       "file defines a try_decode* wire decoder but lacks "
                       "the lint:wire-decode marker"});
    }
}

}  // namespace

int main(int argc, char** argv) {
    if (argc != 2) {
        std::cerr << "usage: lint_sariadne <repo-root>\n";
        return 2;
    }
    const fs::path root = fs::path(argv[1]);
    if (!fs::is_directory(root)) {
        std::cerr << "lint_sariadne: not a directory: " << root << "\n";
        return 2;
    }

    std::vector<Finding> findings;
    std::vector<DecoderDef> decoders;
    std::string fuzz_sources;  // concatenated fuzz/*.cpp, for rule 5
    for (const std::string_view top :
         {"src", "tests", "bench", "tools", "fuzz", "examples"}) {
        const fs::path dir = root / top;
        if (!fs::is_directory(dir)) continue;
        for (const auto& entry : fs::recursive_directory_iterator(dir)) {
            if (!entry.is_regular_file() || !has_extension(entry.path())) {
                continue;
            }
            std::ifstream in(entry.path());
            std::stringstream buffer;
            buffer << in.rdbuf();
            const std::string raw = buffer.str();
            const std::string code = strip_comments(raw, false);
            const std::string code_with_strings = strip_comments(raw, true);

            check_naked_mutex(entry.path(), raw, code, findings);
            // Metric names are enforced for product code only; tests and
            // benches may create ad-hoc metrics.
            if (is_under(entry.path(), root, "src")) {
                check_metric_names(entry.path(), code_with_strings, findings);
            }
            check_wire_decode(entry.path(), raw, code, findings);
            check_hot_path(entry.path(), raw, code, findings);
            if (is_under(entry.path(), root, "src")) {
                collect_decoders(entry.path(), raw, code, decoders, findings);
            }
            if (is_under(entry.path(), root, "fuzz")) {
                fuzz_sources += code;
                fuzz_sources += '\n';
            }
        }
    }

    // Rule 5: every src/ wire decoder must be named by a fuzz harness.
    for (const DecoderDef& decoder : decoders) {
        const std::regex named(R"(\b)" + decoder.name + R"(\b)");
        if (!std::regex_search(fuzz_sources, named)) {
            findings.push_back(
                {decoder.file, decoder.line, "fuzz-coverage",
                 "wire decoder `" + decoder.name +
                     "` is not exercised by any fuzz/*.cpp harness"});
        }
    }

    // Rule 6: every fuzz target ships committed seeds.
    const fs::path fuzz_dir = root / "fuzz";
    if (fs::is_directory(fuzz_dir)) {
        for (const auto& entry : fs::directory_iterator(fuzz_dir)) {
            const std::string name = entry.path().filename().string();
            if (!entry.is_regular_file() || name.rfind("fuzz_", 0) != 0 ||
                entry.path().extension() != ".cpp") {
                continue;
            }
            const fs::path corpus = fuzz_dir / "corpus" / entry.path().stem();
            bool has_seed = false;
            if (fs::is_directory(corpus)) {
                for (const auto& seed : fs::directory_iterator(corpus)) {
                    if (seed.is_regular_file() && seed.file_size() > 0) {
                        has_seed = true;
                        break;
                    }
                }
            }
            if (!has_seed) {
                findings.push_back(
                    {entry.path().string(), 1, "fuzz-corpus",
                     "fuzz target has no non-empty seed corpus at " +
                         corpus.string()});
            }
        }
    }

    if (findings.empty()) {
        std::cout << "lint_sariadne: clean\n";
        return 0;
    }
    for (const Finding& f : findings) {
        std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";
    }
    std::cerr << "lint_sariadne: " << findings.size() << " finding(s)\n";
    return 1;
}
