// sariadne_cli — batch command-line front end to the discovery engine.
//
// Usage:
//   sariadne_cli [options]
//     --ontology FILE     register an ontology document (repeatable)
//     --publish FILE      publish an Amigo-S service description (repeatable)
//     --request FILE      answer a service request (repeatable)
//     --compose FILE      plan the composition rooted at a description
//     --export-state FILE write the directory content bundle
//     --import-state FILE load a directory content bundle
//     --stats             print directory statistics
//
// Options execute in command-line order, so `--ontology o.xml --publish
// s.xml --request r.xml` behaves like a session. Exit code 0 when every
// request was fully satisfied and every composition complete.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/composition.hpp"
#include "core/discovery_engine.hpp"
#include "description/amigos_io.hpp"
#include "directory/state_transfer.hpp"
#include "support/errors.hpp"

namespace {

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw sariadne::Error("cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw sariadne::Error("cannot write '" + path + "'");
    out << content;
}

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--ontology F] [--publish F] [--request F] "
                 "[--compose F] [--export-state F] [--import-state F] "
                 "[--stats]\n",
                 argv0);
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage(argv[0]);
    sariadne::DiscoveryEngine engine;
    bool all_satisfied = true;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string flag = argv[i];
            const auto need_value = [&]() -> std::string {
                if (i + 1 >= argc) {
                    throw sariadne::Error("missing value after " + flag);
                }
                return argv[++i];
            };

            if (flag == "--ontology") {
                const auto path = need_value();
                engine.register_ontology_xml(read_file(path));
                std::printf("registered ontology %s\n", path.c_str());
            } else if (flag == "--publish") {
                const auto path = need_value();
                const auto id = engine.publish(read_file(path));
                std::printf("published %s as service #%u\n", path.c_str(), id);
            } else if (flag == "--request") {
                const auto path = need_value();
                const auto results = engine.discover(read_file(path));
                std::printf("request %s:\n", path.c_str());
                for (std::size_t c = 0; c < results.size(); ++c) {
                    if (results[c].empty()) {
                        std::printf("  capability %zu: UNSATISFIED\n", c + 1);
                        all_satisfied = false;
                        continue;
                    }
                    for (const auto& hit : results[c]) {
                        std::printf(
                            "  capability %zu: %s / %s (distance %d) at %s\n",
                            c + 1, hit.service_name.c_str(),
                            hit.capability_name.c_str(), hit.semantic_distance,
                            hit.grounding.address.c_str());
                    }
                }
            } else if (flag == "--compose") {
                const auto path = need_value();
                const auto root = sariadne::desc::parse_service(read_file(path));
                sariadne::CompositionPlanner planner(engine.directory());
                const auto plan = planner.plan(root);
                std::printf("composition for %s: %zu step(s), %zu gap(s)\n",
                            root.profile.service_name.c_str(), plan.steps.size(),
                            plan.gaps.size());
                for (const auto& step : plan.steps) {
                    std::printf("  %s needs %s -> %s/%s (d=%d)\n",
                                step.consumer_service.c_str(),
                                step.required_capability.c_str(),
                                step.provider_service.c_str(),
                                step.provided_capability.c_str(),
                                step.semantic_distance);
                }
                for (const auto& gap : plan.gaps) {
                    std::printf("  GAP: %s needs %s: %s\n",
                                gap.consumer_service.c_str(),
                                gap.required_capability.c_str(),
                                gap.reason.c_str());
                    all_satisfied = false;
                }
            } else if (flag == "--export-state") {
                const auto path = need_value();
                write_file(path, sariadne::directory::export_state(
                                     engine.directory()));
                std::printf("exported directory state to %s\n", path.c_str());
            } else if (flag == "--import-state") {
                const auto path = need_value();
                const auto imported = sariadne::directory::import_state(
                    engine.directory(), read_file(path));
                std::printf("imported %zu service(s) from %s\n", imported,
                            path.c_str());
            } else if (flag == "--stats") {
                const auto& dir = engine.directory();
                std::printf("directory: %zu services, %zu capabilities, "
                            "%zu DAGs, %llu matches performed\n",
                            dir.service_count(), dir.capability_count(),
                            dir.dag_count(),
                            static_cast<unsigned long long>(
                                dir.lifetime_stats().capability_matches));
            } else {
                return usage(argv[0]);
            }
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return all_satisfied ? 0 : 3;
}
