// sariadne_cli — batch command-line front end to the discovery engine.
//
// Usage:
//   sariadne_cli [options]
//     --ontology FILE     register an ontology document (repeatable)
//     --publish FILE      publish an Amigo-S service description (repeatable)
//     --request FILE      answer a service request (repeatable)
//     --compose FILE      plan the composition rooted at a description
//     --export-state FILE write the directory content bundle
//     --import-state FILE load a directory content bundle
//     --stats             print directory statistics
//     --simulate N        run a built-in N-node churn scenario of the
//                         distributed protocol, reporting into the
//                         engine's metrics registry
//     --metrics           print the metrics registry (Prometheus text
//                         exposition followed by a JSON dump)
//
// Fault-injection options for --simulate (state them *before* it; they
// configure the radio of every later simulation):
//     --loss P            drop each delivery with probability P in [0,1]
//     --dup P             duplicate each delivery with probability P
//     --crash N:D:U       crash node N at D ms, recover it at U ms
//                         (repeatable)
//     --seed S            seed for the fault-injection RNG (default
//                         0x5EEDFA17); same seed -> same run
//
// Options execute in command-line order, so `--ontology o.xml --publish
// s.xml --request r.xml` behaves like a session. Exit code 0 when every
// request was fully satisfied and every composition complete.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ariadne/protocol.hpp"
#include "net/sim_transport.hpp"
#include "core/composition.hpp"
#include "core/discovery_engine.hpp"
#include "description/amigos_io.hpp"
#include "directory/state_transfer.hpp"
#include "support/errors.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

namespace {

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw sariadne::Error("cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw sariadne::Error("cannot write '" + path + "'");
    out << content;
}

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--ontology F] [--publish F] [--request F] "
                 "[--compose F] [--export-state F] [--import-state F] "
                 "[--stats] [--loss P] [--dup P] [--crash N:D:U] [--seed S] "
                 "[--simulate N] [--metrics]\n",
                 argv0);
    return 2;
}

double parse_probability(const std::string& flag, const std::string& value) {
    char* end = nullptr;
    const double p = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
        throw sariadne::Error(flag + " needs a probability in [0,1], got '" +
                              value + "'");
    }
    return p;
}

sariadne::net::CrashWindow parse_crash(const std::string& value) {
    unsigned long node = 0;
    double down = 0;
    double up = 0;
    if (std::sscanf(value.c_str(), "%lu:%lf:%lf", &node, &down, &up) != 3 ||
        down < 0 || up <= down) {
        throw sariadne::Error(
            "--crash needs NODE:DOWN_MS:UP_MS with DOWN < UP, got '" + value +
            "'");
    }
    sariadne::net::CrashWindow window;
    window.node = static_cast<sariadne::net::NodeId>(node);
    window.down_at = down;
    window.up_at = up;
    return window;
}

/// Built-in churn scenario over an N-node grid: elect a directory,
/// publish a synthetic workload, kill the directory mid-run and keep
/// issuing requests with a retry budget until traffic drains. Exercises
/// every instrumented layer — protocol (elections, retries, expiries),
/// directory (publish/query phases), simulator (per-type traffic) — into
/// the same registry the engine reports into, so a following --metrics
/// prints one unified exposition.
void run_simulation(sariadne::DiscoveryEngine& engine, std::size_t node_count,
                    const sariadne::net::FaultPlan& faults) {
    using namespace sariadne;
    if (node_count < 4) node_count = 4;
    std::size_t width = 2;
    while (width * width < node_count) ++width;

    workload::OntologyGenConfig onto_config;
    onto_config.class_count = 24;
    workload::ServiceWorkload workload(
        workload::generate_universe(6, onto_config, 20060426));
    for (const auto& ontology : workload.ontologies()) {
        engine.register_ontology(ontology);
    }

    ariadne::ProtocolConfig config;
    config.adv_period_ms = 500;
    config.adv_timeout_ms = 1500;
    config.election_wait_ms = 30;
    config.republish_period_ms = 2000;
    config.request_timeout_ms = 1000;
    config.max_request_retries = 3;

    ariadne::DiscoveryNetwork network(
        net::Topology::grid(width, (node_count + width - 1) / width), config,
        engine.knowledge_base(), &engine.metrics());
    if (faults.enabled()) sim(network).set_faults(faults);
    const auto nodes = sim(network).topology().node_count();
    network.appoint_directory(static_cast<net::NodeId>(nodes / 2));
    network.start();
    network.run_for(500);

    const std::size_t services = std::min<std::size_t>(8, nodes);
    for (std::size_t i = 0; i < services; ++i) {
        const std::string xml = workload.service_xml(i);
        network.publish_service(static_cast<net::NodeId>(i), xml);
        engine.publish(xml);  // mirror into the local engine directory
    }
    network.run_for(2000);

    // Steady traffic, a directory failure mid-run, and recovery.
    std::size_t tick = 0;
    bool failed = false;
    while (sim(network).now() < 20000) {
        if (!failed && sim(network).now() >= 8000) {
            sim(network).topology().set_up(
                static_cast<net::NodeId>(nodes / 2), false);
            failed = true;
        }
        const auto client = static_cast<net::NodeId>(
            (nodes / 2 + 1 + tick) % nodes);
        network.discover(client, workload.matching_request_xml(tick % services));
        engine.discover(workload.matching_request_xml(tick % services));
        ++tick;
        network.run_for(1000);
        if (sim(network).idle()) break;
    }
    network.run_for(20000);  // drain retries and expiries

    std::size_t satisfied = 0;
    std::size_t expired = 0;
    for (std::uint64_t id = 1; id <= tick; ++id) {
        const auto& outcome = network.outcome(id);
        if (outcome.satisfied) ++satisfied;
        if (outcome.expired) ++expired;
    }
    std::printf(
        "simulated %zu nodes: %zu requests (%zu satisfied, %zu expired), "
        "%zu directories, retry backlog %zu\n",
        nodes, static_cast<std::size_t>(tick), satisfied, expired,
        network.directories().size(), network.retry_backlog());
    if (faults.enabled()) {
        const auto& stats = network.traffic();
        std::printf(
            "radio faults (seed %llu): %llu dropped, %llu duplicated, "
            "%llu crash(es), %llu recover(ies)\n",
            static_cast<unsigned long long>(faults.seed),
            static_cast<unsigned long long>(stats.faults_dropped),
            static_cast<unsigned long long>(stats.faults_duplicated),
            static_cast<unsigned long long>(stats.faults_crashes),
            static_cast<unsigned long long>(stats.faults_recoveries));
    }
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage(argv[0]);
    sariadne::DiscoveryEngine engine;
    sariadne::net::FaultPlan faults;
    bool all_satisfied = true;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string flag = argv[i];
            const auto need_value = [&]() -> std::string {
                if (i + 1 >= argc) {
                    throw sariadne::Error("missing value after " + flag);
                }
                return argv[++i];
            };

            if (flag == "--ontology") {
                const auto path = need_value();
                engine.register_ontology_xml(read_file(path));
                std::printf("registered ontology %s\n", path.c_str());
            } else if (flag == "--publish") {
                const auto path = need_value();
                const auto id = engine.publish(read_file(path));
                std::printf("published %s as service #%u\n", path.c_str(), id);
            } else if (flag == "--request") {
                const auto path = need_value();
                const auto results = engine.discover(read_file(path));
                std::printf("request %s:\n", path.c_str());
                for (std::size_t c = 0; c < results.size(); ++c) {
                    if (results[c].empty()) {
                        std::printf("  capability %zu: UNSATISFIED\n", c + 1);
                        all_satisfied = false;
                        continue;
                    }
                    for (const auto& hit : results[c]) {
                        std::printf(
                            "  capability %zu: %s / %s (distance %d) at %s\n",
                            c + 1, hit.service_name.c_str(),
                            hit.capability_name.c_str(), hit.semantic_distance,
                            hit.grounding.address.c_str());
                    }
                }
            } else if (flag == "--compose") {
                const auto path = need_value();
                const auto root = sariadne::desc::parse_service(read_file(path));
                sariadne::CompositionPlanner planner(engine.directory());
                const auto plan = planner.plan(root);
                std::printf("composition for %s: %zu step(s), %zu gap(s)\n",
                            root.profile.service_name.c_str(), plan.steps.size(),
                            plan.gaps.size());
                for (const auto& step : plan.steps) {
                    std::printf("  %s needs %s -> %s/%s (d=%d)\n",
                                step.consumer_service.c_str(),
                                step.required_capability.c_str(),
                                step.provider_service.c_str(),
                                step.provided_capability.c_str(),
                                step.semantic_distance);
                }
                for (const auto& gap : plan.gaps) {
                    std::printf("  GAP: %s needs %s: %s\n",
                                gap.consumer_service.c_str(),
                                gap.required_capability.c_str(),
                                gap.reason.c_str());
                    all_satisfied = false;
                }
            } else if (flag == "--export-state") {
                const auto path = need_value();
                write_file(path, sariadne::directory::export_state(
                                     engine.directory()));
                std::printf("exported directory state to %s\n", path.c_str());
            } else if (flag == "--import-state") {
                const auto path = need_value();
                const auto imported = sariadne::directory::import_state(
                    engine.directory(), read_file(path));
                std::printf("imported %zu service(s) from %s\n", imported,
                            path.c_str());
            } else if (flag == "--loss") {
                faults.loss_probability = parse_probability(flag, need_value());
            } else if (flag == "--dup") {
                faults.duplication_probability =
                    parse_probability(flag, need_value());
            } else if (flag == "--crash") {
                faults.crashes.push_back(parse_crash(need_value()));
            } else if (flag == "--seed") {
                faults.seed = std::strtoull(need_value().c_str(), nullptr, 0);
            } else if (flag == "--simulate") {
                const auto value = need_value();
                run_simulation(engine,
                               static_cast<std::size_t>(
                                   std::strtoul(value.c_str(), nullptr, 10)),
                               faults);
            } else if (flag == "--metrics") {
                std::printf("%s\n", engine.metrics().to_prometheus().c_str());
                std::printf("%s\n", engine.metrics().to_json().c_str());
            } else if (flag == "--stats") {
                const auto& dir = engine.directory();
                std::printf("directory: %zu services, %zu capabilities, "
                            "%zu DAGs, %llu matches performed\n",
                            dir.service_count(), dir.capability_count(),
                            dir.dag_count(),
                            static_cast<unsigned long long>(
                                dir.lifetime_stats().capability_matches));
            } else {
                return usage(argv[0]);
            }
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return all_satisfied ? 0 : 3;
}
