// sariadne_daemon — a networked S-Ariadne directory node. Hosts
// DiscoveryNetwork node 0 (appointed directory) on an EventLoopTransport:
// remote peers connect over TCP, speak the wire codec (u32-LE length
// prefix + ariadne/wire datagram), publish Amigo-S descriptions and issue
// requests; the daemon answers on the same connection. A second,
// optional listener serves the metrics registry in Prometheus text
// exposition.
//
// Usage:
//   sariadne_daemon [options]
//     --port P          TCP port to serve (default 0 = ephemeral; the
//                       bound port is printed on stdout either way)
//     --metrics-port P  serve GET /metrics in Prometheus text format
//                       (default: off)
//     --connections N   peer slots (default 64)
//     --universe N      ontologies in the synthetic universe (default 6)
//     --classes N       classes per ontology (default 24)
//     --seed S          universe generation seed (default 20060426);
//                       loadgen must use the same universe flags so its
//                       requests resolve against the daemon's ontologies
//     --drain-ms D      shutdown write-flush grace (default 500)
//
// Shutdown: SIGTERM or SIGINT triggers the transport's drain — the
// listener closes, pending write queues flush for at most --drain-ms,
// connections close, and the process exits 0 after printing a traffic
// summary. The signal handler only write(2)s one byte to the transport's
// stop fd (async-signal-safe); all real work happens on the loop thread.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <netinet/in.h>

#include "ariadne/protocol.hpp"
#include "reasoner/knowledge_base.hpp"
#include "net/event_loop.hpp"
#include "obs/metrics.hpp"
#include "support/errors.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

namespace {

using namespace sariadne;

// Written once before signals are installed, then only read from the
// handler. volatile sig_atomic_t is not needed for the fd value itself —
// it is constant by the time a signal can arrive — but keeps the intent
// obvious.
volatile int g_stop_fd = -1;

void on_signal(int) {
    const char byte = 'q';
    if (g_stop_fd >= 0) {
        // Best effort: a full pipe means a stop is already pending.
        (void)!write(g_stop_fd, &byte, 1);
    }
}

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--port P] [--metrics-port P] [--connections N] "
                 "[--universe N] [--classes N] [--seed S] [--drain-ms D]\n",
                 argv0);
    return 2;
}

/// Minimal blocking HTTP/1.0 responder for the metrics port: accepts,
/// ignores the request bytes, answers one Prometheus exposition, closes.
/// Runs on its own thread; MetricsRegistry::to_prometheus() locks
/// internally (rank kMetricsRegistry), so concurrent reads against the
/// loop thread's counter updates are safe.
class MetricsServer {
public:
    MetricsServer(std::uint16_t port, const obs::MetricsRegistry& registry)
        : registry_(registry) {
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (listen_fd_ < 0) throw Error("metrics: socket() failed");
        const int one = 1;
        ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(listen_fd_, 8) != 0) {
            ::close(listen_fd_);
            throw Error("metrics: cannot listen on port " +
                        std::to_string(port));
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
        port_ = ntohs(bound.sin_port);
        thread_ = std::thread([this] { serve(); });
    }

    ~MetricsServer() {
        stop_ = true;
        if (thread_.joinable()) thread_.join();
        if (listen_fd_ >= 0) ::close(listen_fd_);
    }

    std::uint16_t port() const noexcept { return port_; }

private:
    void serve() {
        while (!stop_) {
            pollfd pfd{listen_fd_, POLLIN, 0};
            const int ready = ::poll(&pfd, 1, 200);
            if (ready <= 0) continue;  // timeout -> re-check stop_
            const int client = ::accept(listen_fd_, nullptr, nullptr);
            if (client < 0) continue;
            char sink[1024];
            (void)!::recv(client, sink, sizeof(sink), MSG_DONTWAIT);
            const std::string body = registry_.to_prometheus();
            std::string reply =
                "HTTP/1.0 200 OK\r\n"
                "Content-Type: text/plain; version=0.0.4\r\n"
                "Content-Length: " +
                std::to_string(body.size()) + "\r\n\r\n" + body;
            std::size_t off = 0;
            while (off < reply.size()) {
                const ssize_t sent = ::send(client, reply.data() + off,
                                            reply.size() - off, MSG_NOSIGNAL);
                if (sent <= 0) break;
                off += static_cast<std::size_t>(sent);
            }
            ::close(client);
        }
    }

    const obs::MetricsRegistry& registry_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread thread_;
    // Plain bool: written by the destructor, read by the poll loop whose
    // 200 ms timeout bounds staleness; atomicity is irrelevant for a
    // monotone shutdown flag on this scale, and the join provides the
    // needed ordering for destruction.
    volatile bool stop_ = false;
};

}  // namespace

int main(int argc, char** argv) {
    std::uint16_t port = 0;
    std::uint16_t metrics_port = 0;
    bool serve_metrics = false;
    std::size_t connections = 64;
    std::size_t universe = 6;
    std::size_t classes = 24;
    std::uint64_t seed = 20060426;
    double drain_ms = 500;

    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag.c_str());
                std::exit(usage(argv[0]));
            }
            return argv[++i];
        };
        if (flag == "--port") {
            port = static_cast<std::uint16_t>(std::strtoul(next(), nullptr, 10));
        } else if (flag == "--metrics-port") {
            metrics_port =
                static_cast<std::uint16_t>(std::strtoul(next(), nullptr, 10));
            serve_metrics = true;
        } else if (flag == "--connections") {
            connections = std::strtoul(next(), nullptr, 10);
        } else if (flag == "--universe") {
            universe = std::strtoul(next(), nullptr, 10);
        } else if (flag == "--classes") {
            classes = std::strtoul(next(), nullptr, 10);
        } else if (flag == "--seed") {
            seed = std::strtoull(next(), nullptr, 10);
        } else if (flag == "--drain-ms") {
            drain_ms = std::strtod(next(), nullptr);
        } else {
            return usage(argv[0]);
        }
    }

    try {
        obs::MetricsRegistry registry;

        // The daemon's semantic universe mirrors the CLI's --simulate
        // scenario: a deterministic ontology set both sides can
        // regenerate from the seed, so a loadgen with matching flags
        // produces documents the directory resolves.
        workload::OntologyGenConfig onto_config;
        onto_config.class_count = classes;
        workload::ServiceWorkload workload(
            workload::generate_universe(universe, onto_config, seed));
        encoding::KnowledgeBase kb;
        for (const auto& ontology : workload.ontologies()) {
            kb.register_ontology(ontology);
        }

        net::EventLoopConfig loop_config;
        loop_config.port = port;
        loop_config.max_connections = connections;
        auto transport = std::make_unique<net::EventLoopTransport>(loop_config);
        net::EventLoopTransport& loop = *transport;

        // Directory behaviour only — elections, advertisement timeouts and
        // client-side retry machinery are the mesh deployment's concern
        // (network.start()), not the hosted star's: node 0 is appointed
        // once and every peer slot is a remote client.
        ariadne::ProtocolConfig config;
        ariadne::DiscoveryNetwork network(std::move(transport), config, kb,
                                          &registry);
        network.appoint_directory(0);

        g_stop_fd = loop.stop_fd();
        struct sigaction action {};
        action.sa_handler = on_signal;
        ::sigaction(SIGTERM, &action, nullptr);
        ::sigaction(SIGINT, &action, nullptr);
        // A peer resetting mid-write must surface as EPIPE, not kill us.
        ::signal(SIGPIPE, SIG_IGN);

        std::unique_ptr<MetricsServer> metrics_server;
        if (serve_metrics) {
            metrics_server =
                std::make_unique<MetricsServer>(metrics_port, registry);
        }

        std::printf("sariadne_daemon: listening on 127.0.0.1:%u "
                    "(%zu peer slots, %zu ontologies)\n",
                    loop.local_port(), connections, universe);
        if (metrics_server) {
            std::printf("sariadne_daemon: metrics on 127.0.0.1:%u\n",
                        metrics_server->port());
        }
        std::fflush(stdout);

        loop.run_until_stopped(drain_ms);
        metrics_server.reset();

        const auto& stats = network.traffic();
        std::printf(
            "sariadne_daemon: stopped; %llu deliveries, %llu unicasts, "
            "%llu bytes on the wire\n",
            static_cast<unsigned long long>(stats.deliveries),
            static_cast<unsigned long long>(stats.unicasts),
            static_cast<unsigned long long>(stats.bytes_transmitted));
        return 0;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "sariadne_daemon: %s\n", error.what());
        return 1;
    }
}
