// sariadne_loadgen — multi-threaded publish/query load generator for
// sariadne_daemon. Workers run on the support::ThreadPool, each holding
// its own TCP connection and speaking the wire codec directly (u32-LE
// length prefix + ariadne/wire datagram — no DiscoveryNetwork on the
// client side, so the daemon's framing and codec are exercised by an
// independent implementation). Per-operation latency is measured from
// frame write to matching pub-ack / response, reduced to p50/p99 and
// throughput via bench_util, and upserted into BENCH_daemon.json.
//
// Usage:
//   sariadne_loadgen --port P [options]
//     --host H            daemon address (default 127.0.0.1)
//     --threads N         worker connections (default 2)
//     --duration-ms D     measured window per worker (default 10000)
//     --window W          pipelined in-flight ops per worker (default 128)
//     --publish-ratio R   fraction of ops that are publishes (default 0.05)
//     --publish-batch B   docs per pub-batch frame (default 1 = plain pub)
//     --services N        distinct services/request templates (default 8)
//     --universe N        ontologies (default 6 — must match the daemon)
//     --classes N         classes per ontology (default 24 — must match)
//     --seed S            universe seed (default 20060426 — must match)
//     --out FILE          bench report (default BENCH_daemon.json)
//     --name KEY          report entry name (default daemon_loopback)
//
// The universe flags must mirror the daemon's: both sides regenerate the
// same deterministic ontology set, so the loadgen's requests are
// guaranteed-match (§5 workload) against the services it pre-publishes.
// Exit code 0 iff at least one query came back satisfied.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <unordered_map>
#include <vector>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include "ariadne/wire.hpp"
#include "bench/bench_util.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

namespace {

using namespace sariadne;
using Clock = std::chrono::steady_clock;

struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::size_t threads = 2;
    double duration_ms = 10000;
    std::size_t window = 128;
    double publish_ratio = 0.05;
    std::size_t publish_batch = 1;
    std::size_t services = 8;
    std::size_t universe = 6;
    std::size_t classes = 24;
    std::uint64_t seed = 20060426;
    std::string out = "BENCH_daemon.json";
    std::string name = "daemon_loopback";
};

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s --port P [--host H] [--threads N] "
                 "[--duration-ms D] [--window W] [--publish-ratio R] "
                 "[--publish-batch B] [--services N] [--universe N] "
                 "[--classes N] [--seed S] [--out FILE] [--name KEY]\n",
                 argv0);
    return 2;
}

/// One worker's blocking wire-codec connection with buffered frame reads.
class WireClient {
public:
    WireClient(const std::string& host, std::uint16_t port) {
        fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd_ < 0) throw Error("loadgen: socket() failed");
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
            ::close(fd_);
            throw Error("loadgen: bad host '" + host + "'");
        }
        if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd_);
            throw Error("loadgen: cannot connect to " + host + ":" +
                        std::to_string(port));
        }
        const int one = 1;
        ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }

    ~WireClient() {
        if (fd_ >= 0) ::close(fd_);
    }

    WireClient(const WireClient&) = delete;
    WireClient& operator=(const WireClient&) = delete;

    /// Appends one length-prefixed datagram to the send batch.
    void stage(const ariadne::wire::WireMessage& message) {
        const std::vector<std::uint8_t> body = ariadne::wire::encode(message);
        const std::uint32_t len = static_cast<std::uint32_t>(body.size());
        out_.push_back(static_cast<std::uint8_t>(len & 0xFF));
        out_.push_back(static_cast<std::uint8_t>((len >> 8) & 0xFF));
        out_.push_back(static_cast<std::uint8_t>((len >> 16) & 0xFF));
        out_.push_back(static_cast<std::uint8_t>((len >> 24) & 0xFF));
        out_.insert(out_.end(), body.begin(), body.end());
    }

    /// Writes the staged batch (one send(2) per window fill, not per op).
    void flush() {
        std::size_t off = 0;
        while (off < out_.size()) {
            const ssize_t sent = ::send(fd_, out_.data() + off,
                                        out_.size() - off, MSG_NOSIGNAL);
            if (sent < 0) {
                if (errno == EINTR) continue;
                throw Error("loadgen: send() failed: " +
                            std::string(std::strerror(errno)));
            }
            off += static_cast<std::size_t>(sent);
        }
        out_.clear();
    }

    /// Blocks until one complete frame is available and decodes it.
    ariadne::wire::WireMessage read_frame() {
        for (;;) {
            if (in_.size() - pos_ >= 4) {
                const std::uint32_t len =
                    static_cast<std::uint32_t>(in_[pos_]) |
                    (static_cast<std::uint32_t>(in_[pos_ + 1]) << 8) |
                    (static_cast<std::uint32_t>(in_[pos_ + 2]) << 16) |
                    (static_cast<std::uint32_t>(in_[pos_ + 3]) << 24);
                if (in_.size() - pos_ - 4 >= len) {
                    auto decoded = ariadne::wire::try_decode(
                        {in_.data() + pos_ + 4, len});
                    pos_ += 4 + len;
                    if (pos_ == in_.size()) {
                        in_.clear();
                        pos_ = 0;
                    }
                    if (!decoded) {
                        throw Error("loadgen: daemon sent a malformed "
                                    "frame: " +
                                    decoded.error().message);
                    }
                    return std::move(decoded).value();
                }
            }
            if (pos_ > 0 && pos_ == in_.size()) {
                in_.clear();
                pos_ = 0;
            }
            std::uint8_t chunk[65536];
            const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (got == 0) throw Error("loadgen: daemon closed the connection");
            if (got < 0) {
                if (errno == EINTR) continue;
                throw Error("loadgen: recv() failed: " +
                            std::string(std::strerror(errno)));
            }
            in_.insert(in_.end(), chunk, chunk + got);
        }
    }

private:
    int fd_ = -1;
    std::vector<std::uint8_t> out_;
    std::vector<std::uint8_t> in_;
    std::size_t pos_ = 0;
};

struct WorkerResult {
    std::vector<double> latencies_us;
    std::uint64_t publishes = 0;
    std::uint64_t queries = 0;
    std::uint64_t acked = 0;
    std::uint64_t satisfied = 0;
};

/// Shared read-only workload documents, precomputed so worker threads
/// never touch the generator concurrently.
struct Documents {
    std::vector<std::string> services;
    std::vector<std::string> requests;
};

WorkerResult run_worker(const Options& options, const Documents& docs,
                        std::size_t worker_index) {
    WireClient client(options.host, options.port);
    WorkerResult result;
    // Ids are partitioned per worker: the daemon's pending-request map is
    // keyed by the client-supplied request id, so collisions across
    // connections would cross-wire responses.
    const std::uint64_t id_base = (static_cast<std::uint64_t>(worker_index) + 1)
                                  << 40;
    std::uint64_t seq = 0;
    SplitMix64 rng(options.seed ^ (0x10ADULL + worker_index));

    std::unordered_map<std::uint64_t, Clock::time_point> inflight;
    inflight.reserve(options.window * 2);

    const auto started = Clock::now();
    const auto deadline =
        started + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          options.duration_ms));
    const auto publish_cut = static_cast<std::uint64_t>(
        options.publish_ratio * 1000.0);

    for (;;) {
        const auto now = Clock::now();
        const bool sending = now < deadline;
        if (!sending && inflight.empty()) break;

        // Refill with hysteresis: top up only once half the window has
        // completed, so each flush() carries a burst of frames (one
        // send(2) per ~window/2 ops, and correspondingly larger reads on
        // the daemon side) instead of one syscall per completion.
        if (sending && inflight.size() <= options.window / 2) {
            while (inflight.size() < options.window) {
                const std::uint64_t id = id_base | ++seq;
                const std::size_t doc = rng.next() % docs.services.size();
                ariadne::wire::WireMessage message;
                if (rng.next() % 1000 < publish_cut) {
                    if (options.publish_batch > 1) {
                        // Batched publish: one pub-batch frame carries up
                        // to B documents, each with its own pub_id so the
                        // per-doc acks settle individual inflight entries.
                        const std::size_t room =
                            options.window - inflight.size();
                        const std::size_t count =
                            std::min(options.publish_batch, room);
                        ariadne::wire::PublishBatch payload;
                        payload.docs.reserve(count);
                        const auto staged_at = Clock::now();
                        for (std::size_t k = 0; k < count; ++k) {
                            const std::uint64_t doc_id =
                                k == 0 ? id : id_base | ++seq;
                            const std::size_t pick =
                                rng.next() % docs.services.size();
                            payload.docs.push_back(ariadne::wire::PublishDoc{
                                docs.services[pick], doc_id});
                            inflight.emplace(doc_id, staged_at);
                            ++result.publishes;
                        }
                        message.type = ariadne::wire::MsgType::kPublishBatch;
                        message.payload = std::move(payload);
                        client.stage(message);
                        continue;
                    }
                    message.type = ariadne::wire::MsgType::kPublish;
                    message.payload =
                        ariadne::wire::PublishDoc{docs.services[doc], id};
                    ++result.publishes;
                } else {
                    // `client` is a placeholder: the daemon's transport
                    // rewrites it to the connection's NodeId (ingress
                    // trust boundary), so the response returns here.
                    message.type = ariadne::wire::MsgType::kRequest;
                    message.payload =
                        ariadne::wire::Request{id, 0, docs.requests[doc]};
                    ++result.queries;
                }
                client.stage(message);
                inflight.emplace(id, Clock::now());
            }
            client.flush();
        }

        const ariadne::wire::WireMessage reply = client.read_frame();
        std::uint64_t id = 0;
        if (reply.type == ariadne::wire::MsgType::kPubAck) {
            id = std::get<ariadne::wire::PubAck>(reply.payload).pub_id;
            ++result.acked;
        } else if (reply.type == ariadne::wire::MsgType::kResponse) {
            const auto& response =
                std::get<ariadne::wire::Response>(reply.payload);
            id = response.request_id;
            if (response.satisfied) ++result.satisfied;
        } else {
            continue;  // dir-adv / summary traffic is not an op completion
        }
        const auto it = inflight.find(id);
        if (it == inflight.end()) continue;  // duplicate or stray ack
        result.latencies_us.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() -
                                                      it->second)
                .count());
        inflight.erase(it);
    }
    return result;
}

/// Publishes every service once, acknowledged, over a dedicated
/// connection — the measured phase then queries a warm directory.
void warm_directory(const Options& options, const Documents& docs) {
    WireClient client(options.host, options.port);
    if (options.publish_batch > 1) {
        ariadne::wire::PublishBatch payload;
        for (std::size_t i = 0; i < docs.services.size(); ++i) {
            payload.docs.push_back(ariadne::wire::PublishDoc{
                docs.services[i], static_cast<std::uint64_t>(i) + 1});
            if (payload.docs.size() == options.publish_batch ||
                i + 1 == docs.services.size()) {
                ariadne::wire::WireMessage message;
                message.type = ariadne::wire::MsgType::kPublishBatch;
                message.payload = std::move(payload);
                client.stage(message);
                payload = {};
            }
        }
    } else {
        for (std::size_t i = 0; i < docs.services.size(); ++i) {
            ariadne::wire::WireMessage message;
            message.type = ariadne::wire::MsgType::kPublish;
            message.payload = ariadne::wire::PublishDoc{
                docs.services[i], static_cast<std::uint64_t>(i) + 1};
            client.stage(message);
        }
    }
    client.flush();
    std::size_t acked = 0;
    while (acked < docs.services.size()) {
        const auto reply = client.read_frame();
        if (reply.type == ariadne::wire::MsgType::kPubAck) ++acked;
    }
}

}  // namespace

int main(int argc, char** argv) {
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag.c_str());
                std::exit(usage(argv[0]));
            }
            return argv[++i];
        };
        if (flag == "--host") {
            options.host = next();
        } else if (flag == "--port") {
            options.port =
                static_cast<std::uint16_t>(std::strtoul(next(), nullptr, 10));
        } else if (flag == "--threads") {
            options.threads = std::strtoul(next(), nullptr, 10);
        } else if (flag == "--duration-ms") {
            options.duration_ms = std::strtod(next(), nullptr);
        } else if (flag == "--window") {
            options.window = std::strtoul(next(), nullptr, 10);
        } else if (flag == "--publish-ratio") {
            options.publish_ratio = std::strtod(next(), nullptr);
        } else if (flag == "--publish-batch") {
            options.publish_batch = std::strtoul(next(), nullptr, 10);
        } else if (flag == "--services") {
            options.services = std::strtoul(next(), nullptr, 10);
        } else if (flag == "--universe") {
            options.universe = std::strtoul(next(), nullptr, 10);
        } else if (flag == "--classes") {
            options.classes = std::strtoul(next(), nullptr, 10);
        } else if (flag == "--seed") {
            options.seed = std::strtoull(next(), nullptr, 10);
        } else if (flag == "--out") {
            options.out = next();
        } else if (flag == "--name") {
            options.name = next();
        } else {
            return usage(argv[0]);
        }
    }
    if (options.port == 0) return usage(argv[0]);
    if (options.threads == 0) options.threads = 1;
    if (options.window == 0) options.window = 1;

    try {
        workload::OntologyGenConfig onto_config;
        onto_config.class_count = options.classes;
        workload::ServiceWorkload workload(workload::generate_universe(
            options.universe, onto_config, options.seed));
        Documents docs;
        docs.services.reserve(options.services);
        docs.requests.reserve(options.services);
        for (std::size_t i = 0; i < options.services; ++i) {
            docs.services.push_back(workload.service_xml(i));
            docs.requests.push_back(workload.matching_request_xml(i));
        }

        warm_directory(options, docs);

        support::ThreadPool pool(options.threads);
        std::vector<std::future<WorkerResult>> futures;
        futures.reserve(options.threads);
        const auto wall_start = Clock::now();
        for (std::size_t worker = 0; worker < options.threads; ++worker) {
            futures.push_back(pool.submit(
                [&options, &docs, worker] {
                    return run_worker(options, docs, worker);
                }));
        }

        WorkerResult total;
        for (auto& future : futures) {
            WorkerResult partial = future.get();
            total.publishes += partial.publishes;
            total.queries += partial.queries;
            total.acked += partial.acked;
            total.satisfied += partial.satisfied;
            total.latencies_us.insert(total.latencies_us.end(),
                                      partial.latencies_us.begin(),
                                      partial.latencies_us.end());
        }
        const double wall_ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      wall_start)
                .count();

        const bench::LatencyStats latency =
            bench::summarize_us(total.latencies_us);
        // Throughput is completions over the whole measured wall clock —
        // all workers run concurrently, so this is the daemon's sustained
        // rate, not a per-sample inverse like the kernel benches use.
        const double ops_per_sec =
            wall_ms > 0
                ? 1000.0 * static_cast<double>(total.latencies_us.size()) /
                      wall_ms
                : 0;

        std::printf(
            "loadgen: %zu threads x window %zu for %.0f ms\n"
            "loadgen: %llu completions (%llu publishes sent / %llu acked, "
            "%llu queries sent / %llu satisfied)\n"
            "loadgen: %.0f ops/s, p50 %.1f us, p99 %.1f us\n",
            options.threads, options.window, options.duration_ms,
            static_cast<unsigned long long>(total.latencies_us.size()),
            static_cast<unsigned long long>(total.publishes),
            static_cast<unsigned long long>(total.acked),
            static_cast<unsigned long long>(total.queries),
            static_cast<unsigned long long>(total.satisfied),
            ops_per_sec, latency.p50_us, latency.p99_us);

        char value[256];
        std::snprintf(
            value, sizeof(value),
            "{\"ops_per_sec\": %.0f, \"p50_us\": %.3f, \"p99_us\": %.3f, "
            "\"samples\": %llu, \"threads\": %zu, \"window\": %zu, "
            "\"publish_batch\": %zu, \"satisfied\": %llu}",
            ops_per_sec, latency.p50_us, latency.p99_us,
            static_cast<unsigned long long>(latency.samples), options.threads,
            options.window, options.publish_batch,
            static_cast<unsigned long long>(total.satisfied));
        bench::upsert_bench_json(options.out, options.name, value);
        std::printf("loadgen: wrote %s[%s]\n", options.out.c_str(),
                    options.name.c_str());

        return total.satisfied > 0 ? 0 : 1;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "sariadne_loadgen: %s\n", error.what());
        return 1;
    }
}
