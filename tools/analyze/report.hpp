// analyze/report — finding presentation: the per-pass summary table, the
// SARIF-shaped JSON artifact, and the committed baseline filter.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analyze/model.hpp"

namespace sariadne::analyze {

struct PassResult {
    std::string name;
    std::vector<Finding> findings;
    double ms = 0.0;
};

/// Loads `file:rule` entries (one per line, '#' comments) from a baseline
/// file. Entries are matched against findings by file and rule so line
/// churn does not invalidate them. The committed baseline is empty at
/// HEAD; the mechanism exists for incremental bring-up on branches.
std::vector<std::string> load_baseline(const fs::path& path);

/// Removes findings matched by the baseline; returns how many were
/// filtered out.
std::size_t apply_baseline(const std::vector<std::string>& baseline,
                           std::vector<Finding>& findings);

/// Human-readable findings + per-pass summary table.
void print_report(std::ostream& out, const std::vector<PassResult>& passes,
                  std::size_t files_scanned, std::size_t functions_indexed,
                  std::size_t baselined, double total_ms);

/// SARIF-shaped JSON (version 2.1.0, one run, one result per finding).
std::string to_sarif_json(const std::vector<PassResult>& passes);

}  // namespace sariadne::analyze
