// Layer-DAG enforcement: the intended architecture is a total order over
// the src/ subsystems; any `#include` from a lower layer into a higher
// one (or into tests/tools/bench/fuzz/examples) is an upward edge and a
// finding. File-level include cycles and duplicate includes are flagged
// too. Suppress a justified exception with `lint:allow-layer(<reason>)`
// on the include line or the two lines above it.
#include <algorithm>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "analyze/passes.hpp"

namespace sariadne::analyze {

const std::vector<std::string>& layer_order() {
    static const std::vector<std::string> kOrder = {
        "support",  "obs",      "xml",     "ontology", "encoding",
        "reasoner", "matching", "bloom",   "summary",  "description",
        "directory", "core",    "ariadne", "net",      "workload",
    };
    return kOrder;
}

namespace {

constexpr int kTopRank = 1000;  // tests/tools/bench/fuzz/examples

int rank_of_layer(const std::string& layer) {
    const auto& order = layer_order();
    const auto it = std::find(order.begin(), order.end(), layer);
    return it == order.end() ? -1
                             : static_cast<int>(it - order.begin());
}

struct IncludeEdge {
    std::size_t file;      // includer index
    std::size_t line;      // 1-based
    std::string target;    // include path as written
    std::string first;     // first path component ("" when no '/')
};

std::vector<IncludeEdge> collect_includes(const Repo& repo) {
    static const std::regex include_re(
        R"(^\s*#\s*include\s*\"([^\"]+)\")");
    std::vector<IncludeEdge> edges;
    for (std::size_t fi = 0; fi < repo.files.size(); ++fi) {
        const SourceFile& file = repo.files[fi];
        // Include paths are string literals, so scan the stripped view
        // that keeps string contents (comments still removed).
        const std::vector<std::string> lines =
            split_lines(file.code_with_strings);
        for (std::size_t li = 0; li < lines.size(); ++li) {
            std::smatch match;
            if (!std::regex_search(lines[li], match, include_re)) {
                continue;
            }
            IncludeEdge edge;
            edge.file = fi;
            edge.line = li + 1;
            edge.target = match[1].str();
            const std::size_t slash = edge.target.find('/');
            if (slash != std::string::npos) {
                edge.first = edge.target.substr(0, slash);
            }
            edges.push_back(std::move(edge));
        }
    }
    return edges;
}

/// Resolves an include path to a repo file index, or npos. src/ headers
/// are included relative to src/; tests/tools/bench include their own
/// helpers relative to the repo root or their own directory.
std::size_t resolve_include(const Repo& repo, const SourceFile& from,
                            const std::string& target) {
    const auto try_rel = [&](const std::string& rel) -> std::size_t {
        const auto it = repo.by_rel.find(rel);
        return it == repo.by_rel.end() ? static_cast<std::size_t>(-1)
                                       : it->second;
    };
    std::size_t hit = try_rel("src/" + target);
    if (hit != static_cast<std::size_t>(-1)) return hit;
    hit = try_rel(target);
    if (hit != static_cast<std::size_t>(-1)) return hit;
    // Same-directory include ("bench_util.hpp").
    const std::size_t slash = from.rel.rfind('/');
    if (slash != std::string::npos) {
        hit = try_rel(from.rel.substr(0, slash + 1) + target);
        if (hit != static_cast<std::size_t>(-1)) return hit;
    }
    return static_cast<std::size_t>(-1);
}

}  // namespace

std::vector<Finding> run_layer_pass(const Repo& repo) {
    std::vector<Finding> findings;
    const std::set<std::string> known_tops = {"tests", "bench", "tools",
                                              "fuzz", "examples"};
    const std::vector<IncludeEdge> edges = collect_includes(repo);

    // Upward / unknown-layer includes.
    for (const IncludeEdge& edge : edges) {
        const SourceFile& from = repo.files[edge.file];
        if (edge.first.empty()) continue;
        const int to_rank = rank_of_layer(edge.first);
        const int from_rank =
            from.top == "src" ? rank_of_layer(from.layer) : kTopRank;
        if (to_rank < 0) {
            if (known_tops.count(edge.first) != 0) {
                // Including tests/tools/bench from anywhere in src/ is
                // upward by definition; between the top pseudo-layers it
                // is allowed (they are one shared rank).
                if (from.top == "src" &&
                    !from.suppressed(edge.line, "lint:allow-layer")) {
                    findings.push_back(
                        {from.rel, edge.line, "layer-order",
                         "src/" + from.layer + " includes \"" + edge.target +
                             "\" from the " + edge.first +
                             " pseudo-layer above every src layer"});
                }
                continue;
            }
            // An unknown first component only matters when it names a
            // real src/ subsystem that is missing from the layer table.
            const bool is_src_dir =
                repo.by_rel.lower_bound("src/" + edge.first + "/") !=
                    repo.by_rel.end() &&
                repo.by_rel.lower_bound("src/" + edge.first + "/")
                        ->first.rfind("src/" + edge.first + "/", 0) == 0;
            if (is_src_dir &&
                !from.suppressed(edge.line, "lint:allow-layer")) {
                findings.push_back(
                    {from.rel, edge.line, "layer-unknown",
                     "include \"" + edge.target + "\" names src/" +
                         edge.first +
                         ", which is not in the layer table in "
                         "tools/analyze/pass_layers.cpp — add it at the "
                         "right rank"});
            }
            continue;
        }
        if (from.top != "src") continue;  // top pseudo-layers see all
        if (from_rank < 0) {
            if (!from.suppressed(edge.line, "lint:allow-layer")) {
                findings.push_back(
                    {from.rel, edge.line, "layer-unknown",
                     "file lives in src/" + from.layer +
                         ", which is not in the layer table in "
                         "tools/analyze/pass_layers.cpp — add it at the "
                         "right rank"});
            }
            continue;
        }
        if (to_rank > from_rank &&
            !from.suppressed(edge.line, "lint:allow-layer")) {
            findings.push_back(
                {from.rel, edge.line, "layer-order",
                 "upward include: src/" + from.layer + " (rank " +
                     std::to_string(from_rank) + ") includes \"" +
                     edge.target + "\" from layer " + edge.first +
                     " (rank " + std::to_string(to_rank) +
                     ") — invert the dependency or add "
                     "lint:allow-layer(<reason>)"});
        }
    }

    // Duplicate includes of the same path within one file.
    {
        std::map<std::pair<std::size_t, std::string>, std::size_t> seen;
        for (const IncludeEdge& edge : edges) {
            const auto key = std::make_pair(edge.file, edge.target);
            const auto it = seen.find(key);
            if (it == seen.end()) {
                seen.emplace(key, edge.line);
            } else {
                findings.push_back(
                    {repo.files[edge.file].rel, edge.line,
                     "include-duplicate",
                     "duplicate include of \"" + edge.target +
                         "\" (first at line " + std::to_string(it->second) +
                         ")"});
            }
        }
    }

    // File-level include cycles (resolved repo-internal edges only).
    {
        std::map<std::size_t, std::vector<std::pair<std::size_t, std::size_t>>>
            graph;  // file -> [(target file, line)]
        for (const IncludeEdge& edge : edges) {
            const std::size_t to =
                resolve_include(repo, repo.files[edge.file], edge.target);
            if (to != static_cast<std::size_t>(-1) && to != edge.file) {
                graph[edge.file].emplace_back(to, edge.line);
            }
        }
        // Iterative DFS with colors; report each back edge once.
        std::map<std::size_t, int> color;  // 0 white, 1 grey, 2 black
        std::set<std::pair<std::size_t, std::size_t>> reported;
        for (const auto& [start, unused] : graph) {
            (void)unused;
            if (color[start] != 0) continue;
            std::vector<std::pair<std::size_t, std::size_t>> stack;
            stack.emplace_back(start, 0);
            color[start] = 1;
            while (!stack.empty()) {
                auto& [node, next] = stack.back();
                const auto& out = graph[node];
                if (next >= out.size()) {
                    color[node] = 2;
                    stack.pop_back();
                    continue;
                }
                const auto [to, line] = out[next++];
                if (color[to] == 1) {
                    if (reported.emplace(node, to).second &&
                        !repo.files[node].suppressed(line,
                                                     "lint:allow-layer")) {
                        findings.push_back(
                            {repo.files[node].rel, line, "include-cycle",
                             "include cycle: " + repo.files[node].rel +
                                 " -> " + repo.files[to].rel +
                                 " closes a loop back to an includer"});
                    }
                } else if (color[to] == 0) {
                    color[to] = 1;
                    stack.emplace_back(to, 0);
                }
            }
        }
    }

    return findings;
}

}  // namespace sariadne::analyze
