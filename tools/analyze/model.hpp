// analyze/model — source model shared by every sariadne-analyze pass.
//
// The analyzer is deliberately dependency-free (stdlib only) so it can be
// built with a bare `g++ -std=c++20` in CI before any project library
// exists. Each scanned file is loaded once and stripped once; passes work
// on the stripped views so token scans never trip on prose in comments or
// string literals.
//
// Line-number contract: `strip_comments` emits *every* newline of its
// input, whatever lexer state it is in (comment, string literal,
// backslash-spliced string, raw string). Offsets into the stripped text
// therefore map to raw line numbers exactly — see stripper_notes.md in
// DESIGN.md §15 for the historical bug this replaces.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sariadne::analyze {

namespace fs = std::filesystem;

struct Finding {
    std::string file;   // repo-relative path, '/'-separated
    std::size_t line;   // 1-based
    std::string rule;   // stable rule id, e.g. "layer-order"
    std::string message;
};

/// Strips // and /* */ comments (each replaced by a single space so token
/// adjacency is preserved) and the contents of string/char literals
/// (keeping the quotes). When `keep_strings` is set, string contents are
/// kept (the metric-name rule needs to see them). Every '\n' of the input
/// is emitted regardless of state, so line structure is always preserved —
/// including across multi-line block comments and backslash-newline
/// splices inside string literals.
std::string strip_comments(const std::string& text, bool keep_strings);

std::vector<std::string> split_lines(const std::string& text);

struct SourceFile {
    fs::path path;          // absolute
    std::string rel;        // repo-relative, '/'-separated
    std::string top;        // first path component: src, tests, tools, ...
    std::string layer;      // second component under src/ ("" otherwise)
    std::string stem;       // filename without extension, for .hpp/.cpp pairing
    std::string raw;
    std::string code;               // stripped, string contents removed
    std::string code_with_strings;  // stripped, string contents kept
    std::vector<std::string> raw_lines;
    std::vector<std::string> code_lines;
    std::vector<std::size_t> line_starts;  // offset of each line start in `code`

    /// 1-based line of a char offset into `code`.
    std::size_t line_of(std::size_t offset) const;

    /// True when `marker(` appears on the raw line `line` or the two raw
    /// lines above it — the shared `lint:allow-*(<reason>)` style.
    bool suppressed(std::size_t line, std::string_view marker) const;

    bool marked(std::string_view marker) const;  // e.g. "lint:hot-path"
};

struct Repo {
    fs::path root;
    std::vector<SourceFile> files;
    std::map<std::string, std::size_t> by_rel;  // rel path -> index

    const SourceFile* find(std::string_view rel) const;
};

/// Loads every .cpp/.hpp/.h/.cc under the standard tops (src, tests,
/// bench, tools, fuzz, examples), skipping any directory named "fixtures"
/// so committed seeded-violation trees never count against the real repo.
Repo load_repo(const fs::path& root);

bool is_ident_char(char c);

}  // namespace sariadne::analyze
