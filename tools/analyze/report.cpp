#include "analyze/report.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <set>
#include <sstream>

namespace sariadne::analyze {

std::vector<std::string> load_baseline(const fs::path& path) {
    std::vector<std::string> entries;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        const auto first = line.find_first_not_of(" \t");
        if (first == std::string::npos) continue;
        const auto last = line.find_last_not_of(" \t\r");
        line = line.substr(first, last - first + 1);
        if (line.empty() || line[0] == '#') continue;
        entries.push_back(line);
    }
    return entries;
}

std::size_t apply_baseline(const std::vector<std::string>& baseline,
                           std::vector<Finding>& findings) {
    if (baseline.empty()) return 0;
    const std::set<std::string> entries(baseline.begin(), baseline.end());
    const std::size_t before = findings.size();
    findings.erase(
        std::remove_if(findings.begin(), findings.end(),
                       [&](const Finding& f) {
                           return entries.count(f.file + ":" + f.rule) != 0;
                       }),
        findings.end());
    return before - findings.size();
}

void print_report(std::ostream& out, const std::vector<PassResult>& passes,
                  std::size_t files_scanned, std::size_t functions_indexed,
                  std::size_t baselined, double total_ms) {
    std::size_t total = 0;
    for (const PassResult& pass : passes) {
        for (const Finding& f : pass.findings) {
            out << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
        }
        total += pass.findings.size();
    }
    out << "\n  pass        findings      time\n"
        << "  ----------  --------  --------\n";
    for (const PassResult& pass : passes) {
        out << "  " << std::left << std::setw(10) << pass.name << std::right
            << "  " << std::setw(8) << pass.findings.size() << "  "
            << std::setw(6) << std::fixed << std::setprecision(0) << pass.ms
            << "ms\n";
    }
    out << "\nsariadne-analyze: " << files_scanned << " files, "
        << functions_indexed << " functions, " << std::fixed
        << std::setprecision(0) << total_ms << "ms total — ";
    if (total == 0) {
        out << "clean";
        if (baselined > 0) out << " (" << baselined << " baselined)";
        out << "\n";
    } else {
        out << total << " finding(s)\n";
    }
}

namespace {

std::string json_escape(const std::string& text) {
    std::string out;
    out.reserve(text.size() + 8);
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    std::ostringstream hex;
                    hex << "\\u" << std::hex << std::setw(4)
                        << std::setfill('0') << static_cast<int>(c);
                    out += hex.str();
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

std::string to_sarif_json(const std::vector<PassResult>& passes) {
    std::set<std::string> rules;
    for (const PassResult& pass : passes) {
        for (const Finding& f : pass.findings) rules.insert(f.rule);
    }
    std::ostringstream out;
    out << "{\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        << "  \"runs\": [\n"
        << "    {\n"
        << "      \"tool\": {\n"
        << "        \"driver\": {\n"
        << "          \"name\": \"sariadne-analyze\",\n"
        << "          \"rules\": [";
    bool first = true;
    for (const std::string& rule : rules) {
        out << (first ? "" : ",") << "\n            {\"id\": \""
            << json_escape(rule) << "\"}";
        first = false;
    }
    out << (rules.empty() ? "" : "\n          ") << "]\n"
        << "        }\n"
        << "      },\n"
        << "      \"results\": [";
    first = true;
    for (const PassResult& pass : passes) {
        for (const Finding& f : pass.findings) {
            out << (first ? "" : ",") << "\n        {\n"
                << "          \"ruleId\": \"" << json_escape(f.rule)
                << "\",\n"
                << "          \"level\": \"error\",\n"
                << "          \"message\": {\"text\": \""
                << json_escape(f.message) << "\"},\n"
                << "          \"properties\": {\"pass\": \""
                << json_escape(pass.name) << "\"},\n"
                << "          \"locations\": [\n"
                << "            {\n"
                << "              \"physicalLocation\": {\n"
                << "                \"artifactLocation\": {\"uri\": \""
                << json_escape(f.file) << "\"},\n"
                << "                \"region\": {\"startLine\": " << f.line
                << "}\n"
                << "              }\n"
                << "            }\n"
                << "          ]\n"
                << "        }";
            first = false;
        }
    }
    out << (first ? "" : "\n      ") << "]\n"
        << "    }\n"
        << "  ]\n"
        << "}\n";
    return out.str();
}

}  // namespace sariadne::analyze
