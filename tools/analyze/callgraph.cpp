#include "analyze/callgraph.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace sariadne::analyze {

namespace {

bool is_ident_start(char c) {
    return (std::isalpha(static_cast<unsigned char>(c)) != 0) || c == '_';
}

bool is_upper(char c) { return std::isupper(static_cast<unsigned char>(c)) != 0; }

std::size_t skip_ws(const std::string& s, std::size_t i) {
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i])) != 0) {
        ++i;
    }
    return i;
}

std::size_t rskip_ws(const std::string& s, std::size_t i) {
    // Returns the index of the last non-ws char at or before i, or npos.
    while (i != static_cast<std::size_t>(-1) &&
           std::isspace(static_cast<unsigned char>(s[i])) != 0) {
        --i;
    }
    return i;
}

std::size_t word_end(const std::string& s, std::size_t i) {
    while (i < s.size() && is_ident_char(s[i])) ++i;
    return i;
}

std::size_t word_begin(const std::string& s, std::size_t i) {
    // i points at the last char of the word; returns its first index.
    while (i > 0 && is_ident_char(s[i - 1])) --i;
    return i;
}

/// Matches the paren/brace group opening at `open`; returns the index of
/// the closing char, or npos when unbalanced.
std::size_t match_group(const std::string& s, std::size_t open, char oc,
                        char cc) {
    int depth = 0;
    for (std::size_t i = open; i < s.size(); ++i) {
        if (s[i] == oc) {
            ++depth;
        } else if (s[i] == cc) {
            if (--depth == 0) return i;
        }
    }
    return std::string::npos;
}

/// Consumes a template argument list starting at '<', bailing out (returns
/// `i` unchanged) if the brackets do not close before a ';', '{' or '}' —
/// which means the '<' was a comparison, not template args.
std::size_t consume_angles(const std::string& s, std::size_t i) {
    if (i >= s.size() || s[i] != '<') return i;
    int depth = 0;
    for (std::size_t j = i; j < s.size(); ++j) {
        const char c = s[j];
        if (c == '<') {
            ++depth;
        } else if (c == '>') {
            if (--depth == 0) return j + 1;
        } else if (c == ';' || c == '{' || c == '}') {
            return i;
        }
    }
    return i;
}

const std::set<std::string>& rejected_names() {
    static const std::set<std::string> kSet = {
        "if",       "for",      "while",    "switch",   "return",
        "catch",    "sizeof",   "alignof",  "decltype", "new",
        "delete",   "throw",    "else",     "do",       "case",
        "operator", "constexpr", "requires", "noexcept", "alignas",
        "static_assert", "defined", "assert", "typedef", "using",
        "int",      "char",     "bool",     "double",   "float",
        "long",     "short",    "unsigned", "signed",   "void",
        "auto",     "template", "typename", "namespace", "static_cast",
        "dynamic_cast", "reinterpret_cast", "const_cast", "co_await",
        "co_return", "co_yield",
    };
    return kSet;
}

const std::set<std::string>& guard_types() {
    static const std::set<std::string> kSet = {"lock_guard", "unique_lock",
                                              "shared_lock", "scoped_lock"};
    return kSet;
}

struct ClassRegion {
    std::string name;
    std::size_t begin;
    std::size_t end;
};

std::vector<ClassRegion> find_class_regions(const std::string& s) {
    std::vector<ClassRegion> regions;
    for (std::size_t i = 0; i + 5 < s.size(); ++i) {
        if (!is_ident_start(s[i]) || (i > 0 && is_ident_char(s[i - 1]))) {
            continue;
        }
        const std::size_t e = word_end(s, i);
        const std::string w = s.substr(i, e - i);
        if (w != "class" && w != "struct") {
            i = e - 1;
            continue;
        }
        // `enum class` is not a class region.
        const std::size_t p = rskip_ws(s, i == 0 ? std::string::npos : i - 1);
        if (p != std::string::npos && is_ident_char(s[p])) {
            const std::size_t wb = word_begin(s, p);
            if (s.substr(wb, p + 1 - wb) == "enum") {
                i = e - 1;
                continue;
            }
        }
        std::size_t j = skip_ws(s, e);
        if (j >= s.size() || !is_ident_start(s[j])) {
            i = e - 1;
            continue;  // anonymous struct / template-parameter `class`
        }
        const std::size_t name_end = word_end(s, j);
        const std::string name = s.substr(j, name_end - j);
        // Scan to the region opener, rejecting forward declarations and
        // template parameters. ',' is allowed (base-class lists); '>' or
        // ')' or '=' or ';' first means this was not a definition.
        std::size_t k = name_end;
        int angle = 0;
        bool is_def = false;
        for (; k < s.size(); ++k) {
            const char c = s[k];
            if (c == '<') ++angle;
            if (c == '>' && angle > 0) {
                --angle;
                continue;
            }
            if (angle > 0) continue;
            if (c == '{') {
                is_def = true;
                break;
            }
            if (c == ';' || c == '>' || c == ')' || c == '=') break;
        }
        if (!is_def) {
            i = e - 1;
            continue;
        }
        const std::size_t close = match_group(s, k, '{', '}');
        if (close == std::string::npos) {
            i = e - 1;
            continue;
        }
        regions.push_back({name, k, close + 1});
        i = name_end - 1;
    }
    return regions;
}

/// After the parameter list's ')': consume trailing qualifiers
/// (const/noexcept(...)/&/&&/override/final/-> ret) and an optional
/// constructor initialiser list. Returns the offset of the body '{', or
/// npos when this is not a definition.
std::size_t find_body_brace(const std::string& s, std::size_t after_paren) {
    std::size_t j = after_paren;
    for (;;) {
        j = skip_ws(s, j);
        if (j >= s.size()) return std::string::npos;
        if (is_ident_start(s[j])) {
            const std::size_t e = word_end(s, j);
            const std::string w = s.substr(j, e - j);
            if (w == "const" || w == "noexcept" || w == "override" ||
                w == "final" || w == "mutable" || w == "requires") {
                j = skip_ws(s, e);
                if (j < s.size() && s[j] == '(') {
                    const std::size_t close = match_group(s, j, '(', ')');
                    if (close == std::string::npos) return std::string::npos;
                    j = close + 1;
                }
                continue;
            }
            return std::string::npos;  // `Foo bar(x) baz` — not a def
        }
        if (s[j] == '&') {
            ++j;
            if (j < s.size() && s[j] == '&') ++j;
            continue;
        }
        if (s[j] == '-' && j + 1 < s.size() && s[j + 1] == '>') {
            // Trailing return type: consume to the body '{' or a ';'.
            j += 2;
            int angle = 0;
            while (j < s.size()) {
                const char c = s[j];
                if (c == '<') ++angle;
                if (c == '>' && angle > 0) --angle;
                if (angle == 0 && (c == '{' || c == ';')) break;
                ++j;
            }
            continue;
        }
        break;
    }
    if (s[j] == '{') return j;
    if (s[j] == ':' && (j + 1 >= s.size() || s[j + 1] != ':')) {
        // Constructor initialiser list: `: member_(...), other_{...} {`.
        ++j;
        for (;;) {
            j = skip_ws(s, j);
            if (j < s.size() && s[j] == '{') return j;  // defensive
            if (j >= s.size() || !is_ident_start(s[j])) {
                return std::string::npos;
            }
            j = word_end(s, j);
            while (j + 1 < s.size() && s[j] == ':' && s[j + 1] == ':') {
                j = word_end(s, j + 2);
            }
            j = consume_angles(s, skip_ws(s, j));
            j = skip_ws(s, j);
            if (j >= s.size()) return std::string::npos;
            std::size_t close;
            if (s[j] == '(') {
                close = match_group(s, j, '(', ')');
            } else if (s[j] == '{') {
                close = match_group(s, j, '{', '}');
            } else {
                return std::string::npos;
            }
            if (close == std::string::npos) return std::string::npos;
            j = skip_ws(s, close + 1);
            if (j < s.size() && s[j] == ',') {
                ++j;
                continue;
            }
            if (j < s.size() && s[j] == '{') return j;
            return std::string::npos;
        }
    }
    return std::string::npos;
}

/// Reads the `A::B::` qualifier chain ending just before `name_begin`;
/// returns the last segment ("" if none). `chain_begin` receives the
/// start offset of the whole chain (for '~' destructor detection).
std::string read_qualifier(const std::string& s, std::size_t name_begin,
                           std::size_t& chain_begin) {
    chain_begin = name_begin;
    std::string last;
    std::size_t p = name_begin;
    while (p >= 2 && s[p - 1] == ':' && s[p - 2] == ':') {
        std::size_t q = p - 2;
        if (q == 0 || !is_ident_char(s[q - 1])) break;
        const std::size_t wb = word_begin(s, q - 1);
        if (last.empty()) last = s.substr(wb, q - wb);
        chain_begin = wb;
        p = wb;
    }
    // Only the innermost segment matters; but for a chain like
    // `sariadne::DagIndex::insert`, `last` was set on the first (closest)
    // segment — which is what we want.
    return last;
}

struct MemberAccess {
    std::string receiver;   // "" when not a member access
    std::string qualifier;  // "" when not qualified
    bool accessed = false;  // true when preceded by '.' or '->'
};

MemberAccess read_access(const std::string& s, std::size_t name_begin) {
    MemberAccess access;
    if (name_begin == 0) return access;
    std::size_t p = rskip_ws(s, name_begin - 1);
    if (p == std::string::npos) return access;
    if (s[p] == '~') return access;  // destructor mention
    std::size_t recv_end = std::string::npos;
    if (s[p] == '.') {
        access.accessed = true;
        recv_end = p == 0 ? std::string::npos : p - 1;
    } else if (s[p] == '>' && p >= 1 && s[p - 1] == '-') {
        access.accessed = true;
        recv_end = p < 2 ? std::string::npos : p - 2;
    } else if (s[p] == ':' && p >= 1 && s[p - 1] == ':') {
        std::size_t q = p < 2 ? std::string::npos : rskip_ws(s, p - 2);
        if (q != std::string::npos && is_ident_char(s[q])) {
            const std::size_t wb = word_begin(s, q);
            access.qualifier = s.substr(wb, q + 1 - wb);
        }
        return access;
    } else {
        return access;
    }
    if (recv_end == std::string::npos) return access;
    std::size_t q = rskip_ws(s, recv_end);
    if (q == std::string::npos) return access;
    if (s[q] == ']') {
        // `shards_[s].mutex` — skip the subscript, name the array.
        int depth = 0;
        while (q != static_cast<std::size_t>(-1)) {
            if (s[q] == ']') ++depth;
            if (s[q] == '[' && --depth == 0) break;
            --q;
        }
        if (q == static_cast<std::size_t>(-1) || q == 0) return access;
        q = rskip_ws(s, q - 1);
        if (q == std::string::npos) return access;
    }
    if (!is_ident_char(s[q])) return access;  // chained call `f().g()`
    const std::size_t wb = word_begin(s, q);
    access.receiver = s.substr(wb, q + 1 - wb);
    if (access.receiver == "this") access.receiver = "this";
    return access;
}

std::string prev_word(const std::string& s, std::size_t i) {
    if (i == 0) return {};
    const std::size_t p = rskip_ws(s, i - 1);
    if (p == std::string::npos || !is_ident_char(s[p])) return {};
    const std::size_t wb = word_begin(s, p);
    return s.substr(wb, p + 1 - wb);
}

/// Trailing identifier of a mutex argument expression:
/// `shards_[s].mutex` -> "mutex"; `const_cast<M&>(post_mutex_)` ->
/// "post_mutex_"; `*ptr` -> "ptr".
std::string mutex_arg_name(std::string arg) {
    const auto first = arg.find_first_not_of(" \t\n");
    if (first == std::string::npos) return {};
    arg = arg.substr(first);
    if (arg.rfind("const_cast", 0) == 0) {
        const std::size_t open = arg.find('(');
        if (open != std::string::npos) {
            const std::size_t close = match_group(arg, open, '(', ')');
            if (close != std::string::npos) {
                return mutex_arg_name(arg.substr(open + 1, close - open - 1));
            }
        }
    }
    std::size_t i = arg.size();
    while (i > 0 && !is_ident_char(arg[i - 1])) --i;
    if (i == 0) return {};
    const std::size_t e = i;
    while (i > 0 && is_ident_char(arg[i - 1])) --i;
    return arg.substr(i, e - i);
}

std::vector<std::string> split_top_args(const std::string& args) {
    std::vector<std::string> out;
    int paren = 0;
    int angle = 0;
    int brace = 0;
    std::size_t start = 0;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const char c = args[i];
        if (c == '(') ++paren;
        if (c == ')') --paren;
        if (c == '<') ++angle;
        if (c == '>' && angle > 0) --angle;
        if (c == '{') ++brace;
        if (c == '}') --brace;
        if (c == ',' && paren == 0 && angle == 0 && brace == 0) {
            out.push_back(args.substr(start, i - start));
            start = i + 1;
        }
    }
    out.push_back(args.substr(start));
    return out;
}

bool is_lock_tag(const std::string& arg) {
    return arg.find("try_to_lock") != std::string::npos ||
           arg.find("adopt_lock") != std::string::npos ||
           arg.find("defer_lock") != std::string::npos;
}

void collect_body_events(const std::string& s, FunctionDef& def,
                         const std::vector<std::pair<std::size_t, std::size_t>>&
                             nested) {
    std::size_t j = def.body_begin + 1;
    const std::size_t stop = def.body_end > 0 ? def.body_end - 1 : 0;
    while (j < stop) {
        bool skipped = false;
        for (const auto& [nb, ne] : nested) {
            if (j >= nb && j < ne) {
                j = ne;
                skipped = true;
                break;
            }
        }
        if (skipped) continue;
        const char c = s[j];
        if (c == '{') {
            def.events.push_back({BodyEvent::Kind::kScopeOpen, j});
            ++j;
            continue;
        }
        if (c == '}') {
            def.events.push_back({BodyEvent::Kind::kScopeClose, j});
            ++j;
            continue;
        }
        if (!is_ident_start(c) || (j > 0 && is_ident_char(s[j - 1]))) {
            ++j;
            continue;
        }
        const std::size_t e = word_end(s, j);
        const std::string w = s.substr(j, e - j);
        if (guard_types().count(w) != 0) {
            std::size_t k = skip_ws(s, e);
            k = consume_angles(s, k);
            k = skip_ws(s, k);
            std::string var;
            if (k < s.size() && is_ident_start(s[k])) {
                const std::size_t ve = word_end(s, k);
                var = s.substr(k, ve - k);
                k = skip_ws(s, ve);
            }
            if (k < s.size() && (s[k] == '(' || s[k] == '{')) {
                const char oc = s[k];
                const char cc = oc == '(' ? ')' : '}';
                const std::size_t close = match_group(s, k, oc, cc);
                if (close != std::string::npos) {
                    BodyEvent ev{BodyEvent::Kind::kGuard, j};
                    ev.guard_type = w;
                    ev.guard_var = var;
                    for (const std::string& arg :
                         split_top_args(s.substr(k + 1, close - k - 1))) {
                        if (is_lock_tag(arg)) continue;
                        std::string name = mutex_arg_name(arg);
                        if (!name.empty()) {
                            ev.mutex_args.push_back(std::move(name));
                        }
                    }
                    if (!ev.mutex_args.empty()) def.events.push_back(ev);
                    j = close + 1;
                    continue;
                }
            }
            j = e;
            continue;
        }
        if (w == "new") {
            const std::string prev = prev_word(s, j);
            const std::size_t k = skip_ws(s, e);
            BodyEvent ev{BodyEvent::Kind::kAlloc, j};
            if (prev == "operator") {
                ev.what = "operator new";
                def.events.push_back(ev);
            } else if (k < s.size() && s[k] == '(') {
                // Placement new constructs into existing storage.
            } else {
                ev.what = "new";
                def.events.push_back(ev);
            }
            j = e;
            continue;
        }
        if (w == "make_unique" || w == "make_shared") {
            BodyEvent ev{BodyEvent::Kind::kAlloc, j};
            ev.what = "std::" + w;
            def.events.push_back(ev);
            j = e;
            continue;
        }
        if ((w == "vector" || w == "string") && j >= 2 && s[j - 1] == ':' &&
            s[j - 2] == ':') {
            const std::size_t k = skip_ws(s, e);
            if (w == "string" || (k < s.size() && s[k] == '<')) {
                BodyEvent ev{BodyEvent::Kind::kAlloc, j};
                ev.what = "std::" + w;
                def.events.push_back(ev);
            }
            j = e;
            continue;
        }
        if (w == "throw") {
            def.events.push_back({BodyEvent::Kind::kThrow, j});
            j = e;
            continue;
        }
        if (w == "unlock") {
            const MemberAccess access = read_access(s, j);
            if (access.accessed && !access.receiver.empty()) {
                BodyEvent ev{BodyEvent::Kind::kUnlock, j};
                ev.name = access.receiver;
                def.events.push_back(ev);
            }
            j = e;
            continue;
        }
        if (rejected_names().count(w) == 0) {
            const std::size_t k = skip_ws(s, e);
            if (k < s.size() && s[k] == '(') {
                const MemberAccess access = read_access(s, j);
                BodyEvent ev{BodyEvent::Kind::kCall, j};
                ev.name = w;
                ev.receiver = access.receiver;
                ev.qualifier = access.qualifier;
                def.events.push_back(ev);
            }
        }
        j = e;
    }
}

}  // namespace

FunctionIndex build_function_index(const Repo& repo) {
    FunctionIndex index;
    index.repo = &repo;

    // Header/source pair groups: same directory + stem.
    std::map<std::string, std::vector<std::size_t>> groups;
    for (std::size_t fi = 0; fi < repo.files.size(); ++fi) {
        if (repo.files[fi].top != "src") continue;
        const std::string& rel = repo.files[fi].rel;
        const std::size_t dot = rel.rfind('.');
        groups[rel.substr(0, dot)].push_back(fi);
    }
    for (const auto& [stem, members] : groups) {
        for (const std::size_t fi : members) index.file_group[fi] = members;
    }

    for (std::size_t fi = 0; fi < repo.files.size(); ++fi) {
        const SourceFile& file = repo.files[fi];
        if (file.top != "src") continue;
        const std::string& s = file.code;
        const std::vector<ClassRegion> regions = find_class_regions(s);
        for (const ClassRegion& region : regions) {
            index.classes.insert(region.name);
        }

        std::vector<FunctionDef> file_defs;
        for (std::size_t i = 0; i < s.size(); ++i) {
            if (!is_ident_start(s[i]) || (i > 0 && is_ident_char(s[i - 1]))) {
                continue;
            }
            const std::size_t e = word_end(s, i);
            const std::string w = s.substr(i, e - i);
            if (rejected_names().count(w) != 0 ||
                guard_types().count(w) != 0) {
                i = e - 1;
                continue;
            }
            const MemberAccess access = read_access(s, i);
            if (access.accessed) {
                i = e - 1;
                continue;  // member access, can't be a definition head
            }
            const std::size_t k = skip_ws(s, e);
            if (k >= s.size() || s[k] != '(') {
                i = e - 1;
                continue;
            }
            const std::size_t close = match_group(s, k, '(', ')');
            if (close == std::string::npos) {
                i = e - 1;
                continue;
            }
            const std::size_t body = find_body_brace(s, close + 1);
            if (body == std::string::npos) {
                i = e - 1;
                continue;
            }
            const std::size_t body_close = match_group(s, body, '{', '}');
            if (body_close == std::string::npos) {
                i = e - 1;
                continue;
            }
            FunctionDef def;
            def.name = w;
            std::size_t chain_begin = i;
            def.cls = read_qualifier(s, i, chain_begin);
            if (def.cls.empty()) {
                for (const ClassRegion& region : regions) {
                    if (i > region.begin && i < region.end) {
                        def.cls = region.name;  // innermost wins (last match)
                    }
                }
            }
            def.file = fi;
            def.head_offset = i;
            def.body_begin = body;
            def.body_end = body_close + 1;
            def.line = file.line_of(i);
            file_defs.push_back(std::move(def));
            i = e - 1;
        }

        for (FunctionDef& def : file_defs) {
            std::vector<std::pair<std::size_t, std::size_t>> nested;
            for (const FunctionDef& other : file_defs) {
                if (&other == &def) continue;
                if (other.head_offset > def.body_begin &&
                    other.body_end <= def.body_end) {
                    nested.emplace_back(other.head_offset, other.body_end);
                }
            }
            collect_body_events(s, def, nested);
            if (!def.cls.empty()) index.classes.insert(def.cls);
            index.by_name[def.name].push_back(index.defs.size());
            index.defs.push_back(std::move(def));
        }
    }
    return index;
}

namespace {

/// Classes that declare `recv` as a variable/member somewhere in the
/// caller's header/source pair — a cheap, CamelCase-gated type lookup.
std::set<std::string> receiver_classes(const FunctionIndex& index,
                                       const FunctionDef& caller,
                                       const std::string& recv) {
    std::set<std::string> out;
    const auto group_it = index.file_group.find(caller.file);
    if (group_it == index.file_group.end()) return out;
    for (const std::size_t fi : group_it->second) {
        const std::string& s = index.repo->files[fi].code;
        std::size_t pos = 0;
        while ((pos = s.find(recv, pos)) != std::string::npos) {
            const std::size_t occ = pos;
            pos += recv.size();
            if (occ > 0 && is_ident_char(s[occ - 1])) continue;
            if (pos < s.size() && is_ident_char(s[pos])) continue;
            if (occ == 0) continue;
            std::size_t p = rskip_ws(s, occ - 1);
            if (p == std::string::npos) continue;
            if (s[p] == '&' || s[p] == '*') {
                if (p == 0) continue;
                p = rskip_ws(s, p - 1);
                if (p == std::string::npos) continue;
            }
            if (s[p] == '>') {
                // `FlatSet<X>& recv` — rewind over the template args. A
                // smart-pointer wrapper forwards calls to its pointee, so
                // `unique_ptr<Transport> recv` harvests Transport; any
                // other template (a container) keeps only its own name.
                int depth = 0;
                const std::size_t args_end = p;
                while (p != static_cast<std::size_t>(-1)) {
                    if (s[p] == '>') ++depth;
                    if (s[p] == '<' && --depth == 0) break;
                    --p;
                }
                if (p == static_cast<std::size_t>(-1) || p == 0) continue;
                const std::size_t args_begin = p;
                p = rskip_ws(s, p - 1);
                if (p == std::string::npos || !is_ident_char(s[p])) continue;
                const std::size_t wb = word_begin(s, p);
                const std::string outer = s.substr(wb, p + 1 - wb);
                if (outer == "unique_ptr" || outer == "shared_ptr" ||
                    outer == "weak_ptr" || outer == "optional" ||
                    outer == "reference_wrapper") {
                    for (std::size_t a = args_begin + 1; a < args_end; ++a) {
                        if (!is_ident_char(s[a]) ||
                            (a > 0 && is_ident_char(s[a - 1]))) {
                            continue;
                        }
                        std::size_t ae = a;
                        while (ae < args_end && is_ident_char(s[ae])) ++ae;
                        const std::string arg = s.substr(a, ae - a);
                        if (!arg.empty() && is_upper(arg[0]) &&
                            index.classes.count(arg) != 0) {
                            out.insert(arg);
                        }
                        a = ae - 1;
                    }
                } else if (is_upper(outer[0]) &&
                           index.classes.count(outer) != 0) {
                    out.insert(outer);
                }
                continue;
            }
            if (!is_ident_char(s[p])) continue;
            const std::size_t wb = word_begin(s, p);
            const std::string type = s.substr(wb, p + 1 - wb);
            if (!type.empty() && is_upper(type[0]) &&
                index.classes.count(type) != 0) {
                out.insert(type);
            }
        }
    }
    return out;
}

}  // namespace

std::vector<std::size_t> FunctionIndex::resolve(const FunctionDef& caller,
                                                const BodyEvent& call) const {
    const auto it = by_name.find(call.name);
    if (it == by_name.end()) return {};
    const std::vector<std::size_t>& all = it->second;
    const auto with_cls = [&](const std::string& cls) {
        std::vector<std::size_t> out;
        for (const std::size_t d : all) {
            if (defs[d].cls == cls) out.push_back(d);
        }
        return out;
    };
    if (!call.qualifier.empty()) {
        if (classes.count(call.qualifier) != 0) {
            return with_cls(call.qualifier);
        }
        // Namespace qualifier (`support::foo`, `std::move`): free
        // functions of that name, possibly none.
        return with_cls("");
    }
    if (call.receiver == "this") return with_cls(caller.cls);
    if (!call.receiver.empty()) {
        const std::set<std::string> types =
            receiver_classes(*this, caller, call.receiver);
        if (types.empty()) {
            // Unknown receiver type: almost always a std container or an
            // `auto` local whose declaration the cheap lookup cannot see.
            // Dropping the edge keeps the passes free of false positives;
            // the cost (a missed edge) is documented in DESIGN.md §15.
            return {};
        }
        std::vector<std::size_t> v;
        for (const std::string& type : types) {
            for (const std::size_t d : with_cls(type)) v.push_back(d);
        }
        if (!v.empty()) return v;
        // A known repo class without a matching definition: a virtual
        // interface call (`Transport::unicast`). Dispatch could land on
        // any override, so take every definition of the name.
        return all;
    }
    // Unqualified: the caller's own members plus free functions (ADL).
    std::vector<std::size_t> v = with_cls(caller.cls);
    if (!caller.cls.empty()) {
        for (const std::size_t d : with_cls("")) v.push_back(d);
    }
    return v;
}

}  // namespace sariadne::analyze
