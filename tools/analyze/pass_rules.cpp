// Per-file repo rules, carried over from the original lint_sariadne:
//
//   1. naked-mutex:   no std::mutex / std::shared_mutex outside
//                     support/lock_rank.hpp — product mutexes are
//                     rank-annotated. `lint:allow-naked-mutex(<reason>)`.
//   2. metric-name:   no quoted metric-name literal passed to
//                     counter(/gauge(/histogram(/span( under src/.
//   3. wire-decode:   a `lint:wire-decode` file must not contain `throw`.
//   4. hot-path:      a `lint:hot-path` file must not name std::vector /
//                     std::string. `lint:allow-hot-path-alloc(<reason>)`.
//   5. fuzz-coverage: every try_decode* under src/ lives in a marked file
//                     and is exercised by a fuzz/*.cpp harness.
//   6. fuzz-corpus:   every fuzz target ships non-empty seeds.
//   7. wire-decode-noexcept (new): every Result-returning
//                     try_decode*/try_parse*/try_deserialize* declaration
//                     or definition under src/ is marked noexcept — the
//                     decode surface promises "malformed bytes never
//                     unwind", and noexcept makes the promise a contract.
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "analyze/passes.hpp"

namespace sariadne::analyze {

namespace {

bool is_ident_start(char c) {
    return (std::isalpha(static_cast<unsigned char>(c)) != 0) || c == '_';
}

/// The analyzer's own sources (and its test) spell the lint markers and
/// rule tokens in literals, exactly like the old linter did — exempt them
/// by path rather than contorting every pattern.
bool is_analyzer_source(const SourceFile& file) {
    return file.rel.rfind("tools/analyze/", 0) == 0 ||
           file.rel == "tools/sariadne_analyze.cpp" ||
           file.rel == "tests/lint_test.cpp";
}

void check_naked_mutex(const SourceFile& file, std::vector<Finding>& out) {
    if (file.path.filename() == "lock_rank.hpp") return;  // the wrapper
    static const std::regex naked(
        R"(\bstd::(recursive_)?(timed_)?(shared_)?mutex\b)");
    for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
        if (!std::regex_search(file.code_lines[i], naked)) continue;
        if (file.suppressed(i + 1, "lint:allow-naked-mutex")) continue;
        out.push_back({file.rel, i + 1, "naked-mutex",
                       "std::mutex outside support/lock_rank.hpp — use "
                       "RankedMutex/RankedSharedMutex or add "
                       "lint:allow-naked-mutex(<reason>)"});
    }
}

void check_metric_names(const SourceFile& file, std::vector<Finding>& out) {
    if (file.path.filename() == "metric_names.hpp") return;  // the table
    static const std::regex literal(
        R"(\b(counter|gauge|histogram|span)\s*\(\s*")");
    const std::vector<std::string> lines =
        split_lines(file.code_with_strings);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (std::regex_search(lines[i], literal)) {
            out.push_back({file.rel, i + 1, "metric-name",
                           "metric-name literal bypasses "
                           "obs/metric_names.hpp — add the name to the "
                           "table and reference the constant"});
        }
    }
}

void check_wire_decode(const SourceFile& file, std::vector<Finding>& out) {
    if (!file.marked("lint:wire-decode")) return;
    static const std::regex throw_token(R"(\bthrow\b)");
    for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
        if (std::regex_search(file.code_lines[i], throw_token)) {
            out.push_back({file.rel, i + 1, "wire-decode",
                           "`throw` in a lint:wire-decode file — decode "
                           "paths report failures through Result"});
        }
    }
}

void check_hot_path(const SourceFile& file, std::vector<Finding>& out) {
    if (!file.marked("lint:hot-path")) return;
    static const std::regex allocating(
        R"(\bstd::vector\s*<|\bstd::string\b)");
    for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
        if (!std::regex_search(file.code_lines[i], allocating)) continue;
        if (file.suppressed(i + 1, "lint:allow-hot-path-alloc")) continue;
        out.push_back(
            {file.rel, i + 1, "hot-path",
             "std::vector/std::string in a lint:hot-path file — use the "
             "query Arena (ArenaVec/ArenaBitset) or add "
             "lint:allow-hot-path-alloc(<reason>)"});
    }
}

struct DecoderSite {
    std::string name;
    std::size_t file;
    std::size_t line;
    bool has_noexcept;
};

/// Finds `Result<...> [Class::]try_(decode|parse|deserialize)*(...)`
/// declarations and definitions on the flattened text, so multi-line
/// signatures are seen too. Call sites never carry the Result return
/// type, so this matches the decoder surface itself.
std::vector<DecoderSite> collect_decoder_sites(const Repo& repo,
                                               std::size_t fi) {
    const SourceFile& file = repo.files[fi];
    const std::string& s = file.code;
    std::vector<DecoderSite> sites;
    static const std::vector<std::string> kPrefixes = {
        "try_decode", "try_parse", "try_deserialize"};
    for (const std::string& prefix : kPrefixes) {
        std::size_t pos = 0;
        while ((pos = s.find(prefix, pos)) != std::string::npos) {
            const std::size_t name_begin = pos;
            pos += prefix.size();
            if (name_begin > 0 && is_ident_char(s[name_begin - 1])) continue;
            std::size_t name_end = name_begin;
            while (name_end < s.size() && is_ident_char(s[name_end])) {
                ++name_end;
            }
            std::size_t k = name_end;
            while (k < s.size() &&
                   std::isspace(static_cast<unsigned char>(s[k])) != 0) {
                ++k;
            }
            if (k >= s.size() || s[k] != '(') continue;
            // Walk backwards over an optional `Class::` qualifier chain,
            // then require a `Result<...>` return type.
            std::size_t p = name_begin;
            for (;;) {
                std::size_t q = p;
                while (q > 0 && std::isspace(
                                    static_cast<unsigned char>(s[q - 1])) != 0) {
                    --q;
                }
                if (q >= 2 && s[q - 1] == ':' && s[q - 2] == ':') {
                    std::size_t w = q - 2;
                    while (w > 0 && is_ident_char(s[w - 1])) --w;
                    if (w == q - 2) break;
                    p = w;
                    continue;
                }
                p = q;
                break;
            }
            if (p == 0 || s[p - 1] != '>') continue;
            int depth = 0;
            std::size_t lt = p - 1;
            while (lt != static_cast<std::size_t>(-1)) {
                if (s[lt] == '>') ++depth;
                if (s[lt] == '<' && --depth == 0) break;
                --lt;
            }
            if (lt == static_cast<std::size_t>(-1) || lt == 0) continue;
            std::size_t rt_end = lt;
            std::size_t rt_begin = rt_end;
            while (rt_begin > 0 && is_ident_char(s[rt_begin - 1])) --rt_begin;
            const std::string rt = s.substr(rt_begin, rt_end - rt_begin);
            // `Result<T>` is the canonical failure channel; Bloom's
            // try_deserialize predates Result and returns optional<T>.
            if (rt != "Result" && rt != "optional") continue;
            // Match the parameter list and look for `noexcept` before the
            // terminating '{' or ';'.
            int paren = 0;
            std::size_t close = std::string::npos;
            for (std::size_t j = k; j < s.size(); ++j) {
                if (s[j] == '(') ++paren;
                if (s[j] == ')' && --paren == 0) {
                    close = j;
                    break;
                }
            }
            if (close == std::string::npos) continue;
            bool has_noexcept = false;
            for (std::size_t j = close + 1; j < s.size(); ++j) {
                if (s[j] == '{' || s[j] == ';') break;
                if (is_ident_start(s[j]) &&
                    (j == 0 || !is_ident_char(s[j - 1]))) {
                    std::size_t e = j;
                    while (e < s.size() && is_ident_char(s[e])) ++e;
                    if (s.substr(j, e - j) == "noexcept") {
                        has_noexcept = true;
                        break;
                    }
                    j = e - 1;
                }
            }
            sites.push_back({s.substr(name_begin, name_end - name_begin), fi,
                             file.line_of(name_begin), has_noexcept});
        }
    }
    return sites;
}

}  // namespace

std::vector<Finding> run_rules_pass(const Repo& repo) {
    std::vector<Finding> findings;
    std::vector<DecoderSite> decoders;       // try_decode* in src .cpp files
    std::string fuzz_sources;                // concatenated fuzz/*.cpp

    for (std::size_t fi = 0; fi < repo.files.size(); ++fi) {
        const SourceFile& file = repo.files[fi];
        if (is_analyzer_source(file)) continue;
        check_naked_mutex(file, findings);
        if (file.top == "src") check_metric_names(file, findings);
        check_wire_decode(file, findings);
        check_hot_path(file, findings);
        if (file.top == "fuzz") {
            fuzz_sources += file.code;
            fuzz_sources += '\n';
        }
        if (file.top != "src") continue;

        const std::vector<DecoderSite> sites = collect_decoder_sites(repo, fi);
        const std::string ext = file.path.extension().string();
        const bool is_tu = ext == ".cpp" || ext == ".cc";
        bool defines_try_decode = false;
        for (const DecoderSite& site : sites) {
            // Rule 7: the whole decode surface (headers included) is
            // noexcept — decls and definitions both.
            if (!site.has_noexcept) {
                findings.push_back(
                    {file.rel, site.line, "wire-decode-noexcept",
                     "decoder `" + site.name +
                         "` is not marked noexcept — the try_* decode "
                         "surface returns Result and must not throw"});
            }
            if (is_tu && site.name.rfind("try_decode", 0) == 0) {
                defines_try_decode = true;
                decoders.push_back(site);
            }
        }
        if (defines_try_decode && !file.marked("lint:wire-decode")) {
            findings.push_back({file.rel, 1, "fuzz-coverage",
                                "file defines a try_decode* wire decoder "
                                "but lacks the lint:wire-decode marker"});
        }
    }

    // Rule 5: every src/ wire decoder must be named by a fuzz harness.
    for (const DecoderSite& decoder : decoders) {
        const std::regex named(R"(\b)" + decoder.name + R"(\b)");
        if (!std::regex_search(fuzz_sources, named)) {
            findings.push_back(
                {repo.files[decoder.file].rel, decoder.line, "fuzz-coverage",
                 "wire decoder `" + decoder.name +
                     "` is not exercised by any fuzz/*.cpp harness"});
        }
    }

    // Rule 6: every fuzz target ships committed seeds.
    const fs::path fuzz_dir = repo.root / "fuzz";
    if (fs::is_directory(fuzz_dir)) {
        for (const auto& entry : fs::directory_iterator(fuzz_dir)) {
            const std::string name = entry.path().filename().string();
            if (!entry.is_regular_file() || name.rfind("fuzz_", 0) != 0 ||
                entry.path().extension() != ".cpp") {
                continue;
            }
            const fs::path corpus = fuzz_dir / "corpus" / entry.path().stem();
            bool has_seed = false;
            if (fs::is_directory(corpus)) {
                for (const auto& seed : fs::directory_iterator(corpus)) {
                    if (seed.is_regular_file() && seed.file_size() > 0) {
                        has_seed = true;
                        break;
                    }
                }
            }
            if (!has_seed) {
                findings.push_back(
                    {"fuzz/" + name, 1, "fuzz-corpus",
                     "fuzz target has no non-empty seed corpus at fuzz/corpus/" +
                         entry.path().stem().string()});
            }
        }
    }

    return findings;
}

}  // namespace sariadne::analyze
