#include "analyze/model.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace sariadne::analyze {

bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string strip_comments(const std::string& text, bool keep_strings) {
    std::string out;
    out.reserve(text.size());
    enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
    State state = State::kCode;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        // Newlines are emitted unconditionally, before any state handling,
        // so no lexer state can ever swallow one. A line comment also ends
        // here; every other state persists across the line break.
        if (c == '\n') {
            if (state == State::kLineComment) state = State::kCode;
            out += '\n';
            continue;
        }
        switch (state) {
            case State::kCode:
                if (c == '/' && next == '/') {
                    state = State::kLineComment;
                    out += ' ';  // keep token adjacency: `a//x` != `ax`
                    ++i;
                } else if (c == '/' && next == '*') {
                    state = State::kBlockComment;
                    out += ' ';
                    ++i;
                } else if (c == 'R' && next == '"' &&
                           (i == 0 || !is_ident_char(text[i - 1]))) {
                    // R"delim( ... )delim" — find the opening '(' to learn
                    // the delimiter, then skip to the matching close,
                    // emitting every newline of the body.
                    const std::size_t open = text.find('(', i + 2);
                    if (open == std::string::npos) {
                        out += c;  // malformed; fall through as code
                        break;
                    }
                    const std::string closer =
                        ")" + text.substr(i + 2, open - (i + 2)) + "\"";
                    const std::size_t close = text.find(closer, open + 1);
                    const std::size_t end = close == std::string::npos
                                                ? text.size()
                                                : close + closer.size();
                    out += "R\"";
                    for (std::size_t j = open + 1;
                         j < (close == std::string::npos ? end : close); ++j) {
                        if (text[j] == '\n') {
                            out += '\n';
                        } else if (keep_strings) {
                            out += text[j];
                        }
                    }
                    out += '"';
                    i = end - 1;
                } else if (c == '"') {
                    state = State::kString;
                    out += c;
                } else if (c == '\'') {
                    state = State::kChar;
                    out += c;
                } else {
                    out += c;
                }
                break;
            case State::kLineComment:
                break;
            case State::kBlockComment:
                if (c == '*' && next == '/') {
                    state = State::kCode;
                    ++i;
                }
                break;
            case State::kString:
                if (c == '\\') {
                    // Consume the escape pair — unless the next char is a
                    // newline (a phase-2 line splice): leave it for the
                    // unconditional newline emission above, or the stripped
                    // text would report every later finding one line short.
                    if (keep_strings) {
                        out += c;
                        if (next != '\0' && next != '\n') out += next;
                    }
                    if (next != '\0' && next != '\n') ++i;
                } else if (c == '"') {
                    state = State::kCode;
                    out += c;
                } else if (keep_strings) {
                    out += c;
                }
                break;
            case State::kChar:
                if (c == '\\') {
                    if (next != '\0' && next != '\n') ++i;
                } else if (c == '\'') {
                    state = State::kCode;
                    out += c;
                }
                break;
        }
    }
    return out;
}

std::vector<std::string> split_lines(const std::string& text) {
    std::vector<std::string> lines;
    std::string line;
    std::istringstream in(text);
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
}

std::size_t SourceFile::line_of(std::size_t offset) const {
    const auto it = std::upper_bound(line_starts.begin(), line_starts.end(),
                                     offset);
    return static_cast<std::size_t>(it - line_starts.begin());
}

bool SourceFile::suppressed(std::size_t line, std::string_view marker) const {
    if (line == 0) return false;
    const std::size_t idx = line - 1;
    const std::string want = std::string(marker) + "(";
    for (std::size_t back = 0; back <= 2 && back <= idx; ++back) {
        if (idx - back >= raw_lines.size()) continue;
        if (raw_lines[idx - back].find(want) != std::string::npos) return true;
    }
    return false;
}

bool SourceFile::marked(std::string_view marker) const {
    return raw.find(marker) != std::string::npos;
}

const SourceFile* Repo::find(std::string_view rel) const {
    const auto it = by_rel.find(std::string(rel));
    return it == by_rel.end() ? nullptr : &files[it->second];
}

namespace {

bool has_source_extension(const fs::path& path) {
    const std::string ext = path.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

Repo load_repo(const fs::path& root) {
    Repo repo;
    repo.root = root;
    for (const std::string_view top :
         {"src", "tests", "bench", "tools", "fuzz", "examples"}) {
        const fs::path dir = root / top;
        if (!fs::is_directory(dir)) continue;
        auto it = fs::recursive_directory_iterator(dir);
        const auto end = fs::end(it);
        for (; it != end; ++it) {
            if (it->is_directory() && it->path().filename() == "fixtures") {
                it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file() || !has_source_extension(it->path())) {
                continue;
            }
            SourceFile file;
            file.path = it->path();
            file.rel = it->path().lexically_relative(root).generic_string();
            file.top = std::string(top);
            file.stem = it->path().stem().string();
            {
                const fs::path rel = it->path().lexically_relative(root);
                auto part = rel.begin();
                if (part != rel.end()) ++part;  // skip the top component
                if (file.top == "src" && part != rel.end() &&
                    std::next(part) != rel.end()) {
                    file.layer = part->string();
                }
            }
            std::ifstream in(file.path, std::ios::binary);
            std::stringstream buffer;
            buffer << in.rdbuf();
            file.raw = buffer.str();
            file.code = strip_comments(file.raw, false);
            file.code_with_strings = strip_comments(file.raw, true);
            file.raw_lines = split_lines(file.raw);
            file.code_lines = split_lines(file.code);
            file.line_starts.push_back(0);
            for (std::size_t i = 0; i < file.code.size(); ++i) {
                if (file.code[i] == '\n') file.line_starts.push_back(i + 1);
            }
            repo.files.push_back(std::move(file));
        }
    }
    std::sort(repo.files.begin(), repo.files.end(),
              [](const SourceFile& a, const SourceFile& b) {
                  return a.rel < b.rel;
              });
    for (std::size_t i = 0; i < repo.files.size(); ++i) {
        repo.by_rel[repo.files[i].rel] = i;
    }
    return repo;
}

}  // namespace sariadne::analyze
