// analyze/callgraph — token-level function index and call-graph
// approximation over src/, shared by the lock-order and hot-path passes.
//
// This is *not* a C++ parser. Function definitions are recognised by the
// `name(args...) <qualifiers> {` shape (constructor initialiser lists
// included), class membership by enclosing `class X { ... }` regions or a
// `X::name` qualifier, and calls by `name(` tokens inside a body. Call
// edges are resolved by name, narrowed by a cheap receiver-type lookup
// (`CapabilityDag& dag = ...; dag.insert(...)` restricts `insert` to
// CapabilityDag's definitions) so common method names do not weld the
// whole repo into one blob. Known blind spots — callbacks through
// std::function, virtual dispatch to out-of-repo overrides, calls inside
// constructor initialiser lists, macro-generated code — are documented in
// DESIGN.md §15; all make the approximation *miss* edges, never invent
// them, so the passes stay zero-false-positive at the cost of
// completeness, with the runtime lock-rank checker as the backstop.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/model.hpp"

namespace sariadne::analyze {

struct BodyEvent {
    enum class Kind {
        kScopeOpen,   // '{' inside a body
        kScopeClose,  // '}' inside a body
        kGuard,       // lock_guard/unique_lock/shared_lock/scoped_lock decl
        kUnlock,      // guard_var.unlock()
        kCall,        // name(...) call site
        kAlloc,       // new / make_unique / make_shared / std::vector / std::string
        kThrow,       // throw token
    };
    Kind kind;
    std::size_t offset = 0;  // into SourceFile::code
    // kGuard
    std::string guard_type;               // "shared_lock", "lock_guard", ...
    std::string guard_var;                // declared guard variable name
    std::vector<std::string> mutex_args;  // trailing identifier per mutex arg
    // kUnlock / kCall
    std::string name;       // callee or unlocked guard variable
    std::string receiver;   // identifier before '.'/'->' ("" if none)
    std::string qualifier;  // last segment before '::' ("" if none)
    // kAlloc
    std::string what;  // "new", "make_unique", "std::vector", ...
};

struct FunctionDef {
    std::string cls;   // enclosing/qualifying class ("" for free functions)
    std::string name;
    std::size_t file = 0;         // index into Repo::files
    std::size_t head_offset = 0;  // offset of the name token in code
    std::size_t body_begin = 0;   // offset of the body '{'
    std::size_t body_end = 0;     // offset one past the matching '}'
    std::size_t line = 0;         // 1-based line of the name token
    std::vector<BodyEvent> events;  // ordered by offset

    std::string display() const {
        return cls.empty() ? name : cls + "::" + name;
    }
};

struct FunctionIndex {
    const Repo* repo = nullptr;
    std::vector<FunctionDef> defs;
    std::map<std::string, std::vector<std::size_t>> by_name;
    std::set<std::string> classes;  // every class/struct name seen in src/
    // file index -> indices of its header/source pair group (same
    // directory + stem), used for receiver-type lookups.
    std::map<std::size_t, std::vector<std::size_t>> file_group;

    /// Candidate definitions a call event may reach, narrowed by
    /// qualifier, `this`, or a receiver-type declaration found in the
    /// caller's file group. Falls back to every definition of the name.
    std::vector<std::size_t> resolve(const FunctionDef& caller,
                                     const BodyEvent& call) const;
};

/// Indexes every function defined in a file of `top` "src". Fixture trees
/// loaded as their own Repo roots index their own src/ the same way.
FunctionIndex build_function_index(const Repo& repo);

}  // namespace sariadne::analyze
