// analyze/passes — the four analysis passes of sariadne-analyze.
//
//   rules    — per-file repo rules (naked-mutex, metric-name, wire-decode
//              throw/noexcept, hot-path tokens, fuzz coverage + corpus)
//   layers   — layer-DAG include enforcement + include cycles/duplicates
//   locks    — static lock-order analysis over the call-graph
//              approximation, cross-checked against the runtime
//              LockRank constants in src/support/lock_rank.hpp
//   hotpath  — flow-aware hot-path purity from lint:hot-path entry points
//
// Every pass returns findings only; the driver owns reporting, baselines
// and exit codes.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "analyze/callgraph.hpp"
#include "analyze/model.hpp"

namespace sariadne::analyze {

std::vector<Finding> run_rules_pass(const Repo& repo);
std::vector<Finding> run_layer_pass(const Repo& repo);
std::vector<Finding> run_lock_pass(const Repo& repo,
                                   const FunctionIndex& index);
std::vector<Finding> run_hotpath_pass(const Repo& repo,
                                      const FunctionIndex& index);

/// The intended layer order, lowest first. Pseudo-layers for the
/// non-src tops (tests, tools, bench, fuzz, examples) sit above all of
/// them and are not listed here.
const std::vector<std::string>& layer_order();

/// The analyzer's own copy of the lock hierarchy. Must stay identical to
/// `enum class LockRank` in src/support/lock_rank.hpp — the lock pass
/// emits a `lock-rank-drift` finding (and tests/lint_test.cpp asserts
/// equality) whenever the two disagree.
const std::vector<std::pair<std::string, int>>& static_lock_ranks();

/// Parses the runtime `enum class LockRank` constants out of
/// src/support/lock_rank.hpp of the scanned repo. Empty when the repo
/// has no such file (fixture trees).
std::vector<std::pair<std::string, int>> parse_runtime_lock_ranks(
    const Repo& repo);

}  // namespace sariadne::analyze
