// Flow-aware hot-path purity. Every function defined in a file marked
// `lint:hot-path` is an entry point; the pass walks the call-graph
// approximation and flags reachable heap allocation (new, make_unique/
// make_shared, std::vector, std::string), `throw`, and mutex acquisition
// outside the allowed reader set (shared_lock) — wherever they live, so a
// helper in an unmarked file cannot reintroduce per-query allocations
// invisibly. Cold-path exceptions are suppressed at the offending site:
// `lint:allow-hot-path-alloc(<reason>)`, `lint:allow-hot-path-throw(...)`
// or `lint:allow-hot-path-lock(...)` on or above the line.
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/passes.hpp"

namespace sariadne::analyze {

std::vector<Finding> run_hotpath_pass(const Repo& repo,
                                      const FunctionIndex& index) {
    std::vector<Finding> findings;

    // Entry points: every function defined in a lint:hot-path file.
    std::vector<std::size_t> entries;
    for (std::size_t di = 0; di < index.defs.size(); ++di) {
        if (repo.files[index.defs[di].file].marked("lint:hot-path")) {
            entries.push_back(di);
        }
    }
    if (entries.empty()) return findings;

    // BFS with parent pointers for chain reporting. The first entry to
    // reach a def owns its chain; findings are deduped per site.
    std::map<std::size_t, std::size_t> parent;  // def -> caller def
    std::map<std::size_t, std::size_t> root;    // def -> entry def
    std::deque<std::size_t> queue;
    for (const std::size_t entry : entries) {
        if (root.count(entry) != 0) continue;
        root[entry] = entry;
        queue.push_back(entry);
    }
    while (!queue.empty()) {
        const std::size_t di = queue.front();
        queue.pop_front();
        const FunctionDef& def = index.defs[di];
        for (const BodyEvent& ev : def.events) {
            if (ev.kind != BodyEvent::Kind::kCall) continue;
            for (const std::size_t callee : index.resolve(def, ev)) {
                if (root.count(callee) != 0) continue;
                root[callee] = root[di];
                parent[callee] = di;
                queue.push_back(callee);
            }
        }
    }

    const auto chain_string = [&](std::size_t di) {
        std::vector<std::string> names;
        for (std::size_t cur = di; names.size() < 16;) {
            names.push_back(index.defs[cur].display());
            const auto it = parent.find(cur);
            if (it == parent.end()) break;
            cur = it->second;
        }
        std::string out;
        for (auto it = names.rbegin(); it != names.rend(); ++it) {
            if (!out.empty()) out += " -> ";
            out += *it;
        }
        return out;
    };

    std::set<std::string> dedup;
    for (const auto& [di, entry] : root) {
        const FunctionDef& def = index.defs[di];
        const SourceFile& file = repo.files[def.file];
        for (const BodyEvent& ev : def.events) {
            const std::size_t line = file.line_of(ev.offset);
            std::string what;
            std::string marker;
            switch (ev.kind) {
                case BodyEvent::Kind::kAlloc:
                    what = "heap allocation (" + ev.what + ")";
                    marker = "lint:allow-hot-path-alloc";
                    break;
                case BodyEvent::Kind::kThrow:
                    what = "`throw`";
                    marker = "lint:allow-hot-path-throw";
                    break;
                case BodyEvent::Kind::kGuard:
                    if (ev.guard_type == "shared_lock") continue;  // reader
                    what = "mutex acquisition (" + ev.guard_type + ")";
                    marker = "lint:allow-hot-path-lock";
                    break;
                default:
                    continue;
            }
            if (file.suppressed(line, marker)) continue;
            const std::string key =
                file.rel + ":" + std::to_string(line) + ":" + what;
            if (!dedup.insert(key).second) continue;
            std::string message = what + " reachable from lint:hot-path "
                                         "entry point " +
                                  index.defs[entry].display();
            if (di != entry) {
                message += " via " + chain_string(di);
            }
            message += " — hoist it off the hot path or add " + marker +
                       "(<reason>)";
            findings.push_back({file.rel, line, "hot-path-flow", message});
        }
    }

    return findings;
}

}  // namespace sariadne::analyze
