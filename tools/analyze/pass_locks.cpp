// Static lock-order analysis. Complements the runtime checker in
// src/support/lock_rank.hpp (which only sees executed interleavings):
// every RankedMutex/RankedSharedMutex declaration is mapped to its rank,
// every guard acquisition site is simulated per-function with brace-scope
// tracking, and a transitive acquired-rank fixpoint over the call-graph
// approximation flags any path whose static rank order is not strictly
// ascending. Suppress a proven-safe site with
// `lint:allow-lock-order(<reason>)` on or above the line.
#include <algorithm>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "analyze/passes.hpp"

namespace sariadne::analyze {

const std::vector<std::pair<std::string, int>>& static_lock_ranks() {
    static const std::vector<std::pair<std::string, int>> kRanks = {
        {"kEnginePool", 10},          {"kDirectorySummary", 20},
        {"kDirectoryServices", 30},   {"kDagShard", 40},
        {"kKnowledgeBaseTables", 50}, {"kTaxonomyCache", 60},
        {"kMetricsRegistry", 70},     {"kTransportQueue", 80},
    };
    return kRanks;
}

std::vector<std::pair<std::string, int>> parse_runtime_lock_ranks(
    const Repo& repo) {
    std::vector<std::pair<std::string, int>> ranks;
    const SourceFile* file = repo.find("src/support/lock_rank.hpp");
    if (file == nullptr) return ranks;
    const std::size_t begin = file->code.find("enum class LockRank");
    if (begin == std::string::npos) return ranks;
    const std::size_t open = file->code.find('{', begin);
    const std::size_t close = file->code.find('}', open);
    if (open == std::string::npos || close == std::string::npos) return ranks;
    const std::string body = file->code.substr(open, close - open);
    static const std::regex entry(R"((k\w+)\s*=\s*(\d+))");
    for (auto it = std::sregex_iterator(body.begin(), body.end(), entry);
         it != std::sregex_iterator(); ++it) {
        ranks.emplace_back((*it)[1].str(), std::stoi((*it)[2].str()));
    }
    return ranks;
}

namespace {

struct MutexDecl {
    std::string var;
    std::string rank_name;
    int rank;
    std::size_t file;
    std::size_t line;
};

std::vector<MutexDecl> collect_mutex_decls(const Repo& repo) {
    std::vector<MutexDecl> decls;
    std::map<std::string, int> rank_by_name;
    for (const auto& [name, value] : static_lock_ranks()) {
        rank_by_name[name] = value;
    }
    for (std::size_t fi = 0; fi < repo.files.size(); ++fi) {
        const SourceFile& file = repo.files[fi];
        if (file.top != "src") continue;
        if (file.path.filename() == "lock_rank.hpp") continue;
        const std::string& s = file.code;
        for (const std::string_view type :
             {"RankedMutex", "RankedSharedMutex"}) {
            std::size_t pos = 0;
            while ((pos = s.find(type.data(), pos, type.size())) !=
                   std::string::npos) {
                const std::size_t begin = pos;
                pos += type.size();
                if (begin > 0 && is_ident_char(s[begin - 1])) continue;
                if (pos < s.size() && is_ident_char(s[pos])) continue;
                std::size_t k = pos;
                while (k < s.size() &&
                       std::isspace(static_cast<unsigned char>(s[k])) != 0) {
                    ++k;
                }
                if (k >= s.size() || !is_ident_char(s[k])) continue;
                std::size_t ve = k;
                while (ve < s.size() && is_ident_char(s[ve])) ++ve;
                const std::string var = s.substr(k, ve - k);
                std::size_t b = ve;
                while (b < s.size() &&
                       std::isspace(static_cast<unsigned char>(s[b])) != 0) {
                    ++b;
                }
                if (b >= s.size() || s[b] != '{') continue;
                const std::size_t close = s.find('}', b);
                if (close == std::string::npos) continue;
                const std::string init = s.substr(b + 1, close - b - 1);
                const std::size_t tag = init.find("LockRank::");
                if (tag == std::string::npos) continue;
                std::size_t ne = tag + 10;
                while (ne < init.size() && is_ident_char(init[ne])) ++ne;
                const std::string rank_name = init.substr(tag + 10, ne - tag - 10);
                const auto rank_it = rank_by_name.find(rank_name);
                if (rank_it == rank_by_name.end()) continue;  // drift check
                decls.push_back({var, rank_name, rank_it->second, fi,
                                 file.line_of(begin)});
            }
        }
    }
    return decls;
}

struct Held {
    int rank;
    std::string rank_name;
    std::string mutex;
    std::string guard_var;
    int depth;
    std::size_t line;
};

struct AcquireSite {
    int rank;
    std::string rank_name;
    std::size_t file;
    std::size_t line;
    // Chain step for reporting: npos when this function acquires the
    // rank directly, else the def index the rank is reached through.
    std::size_t via_def = static_cast<std::size_t>(-1);
};

struct CallContext {
    std::size_t caller;
    const BodyEvent* call;
    std::vector<Held> held;
};

}  // namespace

std::vector<Finding> run_lock_pass(const Repo& repo,
                                   const FunctionIndex& index) {
    std::vector<Finding> findings;

    // Cross-check the static table against the runtime constants.
    {
        std::vector<std::pair<std::string, int>> runtime =
            parse_runtime_lock_ranks(repo);
        if (!runtime.empty()) {
            std::vector<std::pair<std::string, int>> expected =
                static_lock_ranks();
            std::sort(runtime.begin(), runtime.end());
            std::sort(expected.begin(), expected.end());
            if (runtime != expected) {
                findings.push_back(
                    {"src/support/lock_rank.hpp", 1, "lock-rank-drift",
                     "runtime LockRank constants differ from the static "
                     "table in tools/analyze/pass_locks.cpp — update both "
                     "together"});
            }
        }
    }

    const std::vector<MutexDecl> decls = collect_mutex_decls(repo);
    // var -> decls, for group-local then global-unique resolution.
    std::map<std::string, std::vector<const MutexDecl*>> by_var;
    for (const MutexDecl& decl : decls) by_var[decl.var].push_back(&decl);

    const auto rank_of = [&](std::size_t caller_file,
                             const std::string& var) -> const MutexDecl* {
        const auto it = by_var.find(var);
        if (it == by_var.end()) return nullptr;
        const auto group_it = index.file_group.find(caller_file);
        if (group_it != index.file_group.end()) {
            for (const MutexDecl* decl : it->second) {
                for (const std::size_t fi : group_it->second) {
                    if (decl->file == fi) return decl;
                }
            }
        }
        // Fall back to a globally unique rank for this variable name;
        // ambiguous names (e.g. two subsystems both naming a member
        // `mutex_`) resolve to nothing rather than to a guess.
        std::set<int> ranks;
        for (const MutexDecl* decl : it->second) ranks.insert(decl->rank);
        return ranks.size() == 1 ? it->second.front() : nullptr;
    };

    // Phase 1: per-function scope-aware simulation. Direct inversions are
    // reported here; acquire summaries and held-at-call contexts feed the
    // transitive phase.
    std::vector<std::vector<AcquireSite>> direct(index.defs.size());
    std::vector<CallContext> contexts;
    for (std::size_t di = 0; di < index.defs.size(); ++di) {
        const FunctionDef& def = index.defs[di];
        const SourceFile& file = repo.files[def.file];
        std::vector<Held> held;
        int depth = 1;
        for (const BodyEvent& ev : def.events) {
            switch (ev.kind) {
                case BodyEvent::Kind::kScopeOpen:
                    ++depth;
                    break;
                case BodyEvent::Kind::kScopeClose: {
                    --depth;
                    held.erase(std::remove_if(held.begin(), held.end(),
                                              [&](const Held& h) {
                                                  return h.depth > depth;
                                              }),
                               held.end());
                    break;
                }
                case BodyEvent::Kind::kUnlock: {
                    held.erase(std::remove_if(held.begin(), held.end(),
                                              [&](const Held& h) {
                                                  return h.guard_var ==
                                                         ev.name;
                                              }),
                               held.end());
                    break;
                }
                case BodyEvent::Kind::kGuard: {
                    const std::size_t line = file.line_of(ev.offset);
                    for (const std::string& var : ev.mutex_args) {
                        const MutexDecl* decl = rank_of(def.file, var);
                        if (decl == nullptr) continue;
                        for (const Held& h : held) {
                            if (decl->rank > h.rank) continue;
                            if (file.suppressed(line,
                                                "lint:allow-lock-order")) {
                                continue;
                            }
                            findings.push_back(
                                {file.rel, line, "lock-order",
                                 def.display() + " acquires " + var + " (" +
                                     decl->rank_name + ", rank " +
                                     std::to_string(decl->rank) +
                                     ") while holding " + h.mutex + " (" +
                                     h.rank_name + ", rank " +
                                     std::to_string(h.rank) +
                                     ") — ranks must be strictly "
                                     "ascending"});
                        }
                        direct[di].push_back({decl->rank, decl->rank_name,
                                              def.file, line});
                        held.push_back({decl->rank, decl->rank_name, var,
                                        ev.guard_var, depth, line});
                    }
                    break;
                }
                case BodyEvent::Kind::kCall: {
                    if (!held.empty()) {
                        contexts.push_back({di, &ev, held});
                    }
                    break;
                }
                default:
                    break;
            }
        }
    }

    // Phase 2: transitive acquired-rank fixpoint over the call graph.
    // trans[di] maps rank -> representative site (with the chain hop).
    std::vector<std::map<int, AcquireSite>> trans(index.defs.size());
    for (std::size_t di = 0; di < index.defs.size(); ++di) {
        for (const AcquireSite& site : direct[di]) {
            trans[di].emplace(site.rank, site);
        }
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t di = 0; di < index.defs.size(); ++di) {
            const FunctionDef& def = index.defs[di];
            for (const BodyEvent& ev : def.events) {
                if (ev.kind != BodyEvent::Kind::kCall) continue;
                for (const std::size_t callee : index.resolve(def, ev)) {
                    for (const auto& [rank, site] : trans[callee]) {
                        if (trans[di].count(rank) != 0) continue;
                        AcquireSite hop = site;
                        hop.via_def = callee;
                        trans[di].emplace(rank, hop);
                        changed = true;
                    }
                }
            }
        }
    }

    const auto chain_string = [&](std::size_t start_def, int rank) {
        std::string chain;
        std::size_t cur = start_def;
        for (int hops = 0; hops < 16; ++hops) {
            chain += index.defs[cur].display();
            const auto it = trans[cur].find(rank);
            if (it == trans[cur].end()) break;
            if (it->second.via_def == static_cast<std::size_t>(-1)) {
                chain += " [" + repo.files[it->second.file].rel + ":" +
                         std::to_string(it->second.line) + "]";
                break;
            }
            chain += " -> ";
            cur = it->second.via_def;
        }
        return chain;
    };

    // Phase 3: calls made while holding a lock, into functions that may
    // transitively acquire an equal-or-lower rank.
    std::set<std::string> dedup;
    for (const CallContext& ctx : contexts) {
        const FunctionDef& caller = index.defs[ctx.caller];
        const SourceFile& file = repo.files[caller.file];
        const std::size_t line = file.line_of(ctx.call->offset);
        int max_rank = 0;
        const Held* max_held = nullptr;
        for (const Held& h : ctx.held) {
            if (h.rank >= max_rank) {
                max_rank = h.rank;
                max_held = &h;
            }
        }
        for (const std::size_t callee : index.resolve(caller, *ctx.call)) {
            for (const auto& [rank, site] : trans[callee]) {
                if (rank > max_rank) continue;
                if (file.suppressed(line, "lint:allow-lock-order")) continue;
                const std::string key = file.rel + ":" +
                                        std::to_string(line) + ":" +
                                        std::to_string(rank);
                if (!dedup.insert(key).second) continue;
                findings.push_back(
                    {file.rel, line, "lock-order",
                     caller.display() + " calls " + chain_string(callee, rank) +
                         " which may acquire " + site.rank_name + " (rank " +
                         std::to_string(rank) + ") while holding " +
                         max_held->mutex + " (" + max_held->rank_name +
                         ", rank " + std::to_string(max_rank) +
                         ") — ranks must be strictly ascending"});
            }
        }
    }

    return findings;
}

}  // namespace sariadne::analyze
