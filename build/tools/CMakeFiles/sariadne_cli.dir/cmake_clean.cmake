file(REMOVE_RECURSE
  "CMakeFiles/sariadne_cli.dir/sariadne_cli.cpp.o"
  "CMakeFiles/sariadne_cli.dir/sariadne_cli.cpp.o.d"
  "sariadne_cli"
  "sariadne_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sariadne_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
