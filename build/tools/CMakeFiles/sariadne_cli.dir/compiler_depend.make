# Empty compiler generated dependencies file for sariadne_cli.
# This may be replaced when dependencies are built.
