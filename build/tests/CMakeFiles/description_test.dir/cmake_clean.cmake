file(REMOVE_RECURSE
  "CMakeFiles/description_test.dir/description_test.cpp.o"
  "CMakeFiles/description_test.dir/description_test.cpp.o.d"
  "description_test"
  "description_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/description_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
