# Empty compiler generated dependencies file for sariadne_ontology.
# This may be replaced when dependencies are built.
