file(REMOVE_RECURSE
  "libsariadne_ontology.a"
)
