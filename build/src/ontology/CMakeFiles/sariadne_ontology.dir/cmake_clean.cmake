file(REMOVE_RECURSE
  "CMakeFiles/sariadne_ontology.dir/loader.cpp.o"
  "CMakeFiles/sariadne_ontology.dir/loader.cpp.o.d"
  "CMakeFiles/sariadne_ontology.dir/ontology.cpp.o"
  "CMakeFiles/sariadne_ontology.dir/ontology.cpp.o.d"
  "CMakeFiles/sariadne_ontology.dir/registry.cpp.o"
  "CMakeFiles/sariadne_ontology.dir/registry.cpp.o.d"
  "libsariadne_ontology.a"
  "libsariadne_ontology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sariadne_ontology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
