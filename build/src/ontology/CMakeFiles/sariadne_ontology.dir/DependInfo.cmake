
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ontology/loader.cpp" "src/ontology/CMakeFiles/sariadne_ontology.dir/loader.cpp.o" "gcc" "src/ontology/CMakeFiles/sariadne_ontology.dir/loader.cpp.o.d"
  "/root/repo/src/ontology/ontology.cpp" "src/ontology/CMakeFiles/sariadne_ontology.dir/ontology.cpp.o" "gcc" "src/ontology/CMakeFiles/sariadne_ontology.dir/ontology.cpp.o.d"
  "/root/repo/src/ontology/registry.cpp" "src/ontology/CMakeFiles/sariadne_ontology.dir/registry.cpp.o" "gcc" "src/ontology/CMakeFiles/sariadne_ontology.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sariadne_support.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/sariadne_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
