file(REMOVE_RECURSE
  "libsariadne_support.a"
)
