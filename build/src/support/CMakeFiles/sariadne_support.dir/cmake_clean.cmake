file(REMOVE_RECURSE
  "CMakeFiles/sariadne_support.dir/hash.cpp.o"
  "CMakeFiles/sariadne_support.dir/hash.cpp.o.d"
  "CMakeFiles/sariadne_support.dir/rng.cpp.o"
  "CMakeFiles/sariadne_support.dir/rng.cpp.o.d"
  "libsariadne_support.a"
  "libsariadne_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sariadne_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
