# Empty dependencies file for sariadne_support.
# This may be replaced when dependencies are built.
