file(REMOVE_RECURSE
  "CMakeFiles/sariadne_ariadne.dir/protocol.cpp.o"
  "CMakeFiles/sariadne_ariadne.dir/protocol.cpp.o.d"
  "libsariadne_ariadne.a"
  "libsariadne_ariadne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sariadne_ariadne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
