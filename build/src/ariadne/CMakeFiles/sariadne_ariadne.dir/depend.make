# Empty dependencies file for sariadne_ariadne.
# This may be replaced when dependencies are built.
