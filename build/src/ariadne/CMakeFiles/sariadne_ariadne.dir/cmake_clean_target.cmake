file(REMOVE_RECURSE
  "libsariadne_ariadne.a"
)
