# Empty dependencies file for sariadne_net.
# This may be replaced when dependencies are built.
