file(REMOVE_RECURSE
  "libsariadne_net.a"
)
