file(REMOVE_RECURSE
  "CMakeFiles/sariadne_net.dir/mobility.cpp.o"
  "CMakeFiles/sariadne_net.dir/mobility.cpp.o.d"
  "CMakeFiles/sariadne_net.dir/simulator.cpp.o"
  "CMakeFiles/sariadne_net.dir/simulator.cpp.o.d"
  "CMakeFiles/sariadne_net.dir/topology.cpp.o"
  "CMakeFiles/sariadne_net.dir/topology.cpp.o.d"
  "libsariadne_net.a"
  "libsariadne_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sariadne_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
