# Empty compiler generated dependencies file for sariadne_reasoner.
# This may be replaced when dependencies are built.
