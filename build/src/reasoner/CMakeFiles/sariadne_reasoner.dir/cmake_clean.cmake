file(REMOVE_RECURSE
  "CMakeFiles/sariadne_reasoner.dir/naive_reasoner.cpp.o"
  "CMakeFiles/sariadne_reasoner.dir/naive_reasoner.cpp.o.d"
  "CMakeFiles/sariadne_reasoner.dir/profiles.cpp.o"
  "CMakeFiles/sariadne_reasoner.dir/profiles.cpp.o.d"
  "CMakeFiles/sariadne_reasoner.dir/rule_reasoner.cpp.o"
  "CMakeFiles/sariadne_reasoner.dir/rule_reasoner.cpp.o.d"
  "CMakeFiles/sariadne_reasoner.dir/tableau_reasoner.cpp.o"
  "CMakeFiles/sariadne_reasoner.dir/tableau_reasoner.cpp.o.d"
  "CMakeFiles/sariadne_reasoner.dir/taxonomy.cpp.o"
  "CMakeFiles/sariadne_reasoner.dir/taxonomy.cpp.o.d"
  "libsariadne_reasoner.a"
  "libsariadne_reasoner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sariadne_reasoner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
