file(REMOVE_RECURSE
  "libsariadne_reasoner.a"
)
