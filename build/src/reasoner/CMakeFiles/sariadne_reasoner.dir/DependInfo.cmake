
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reasoner/naive_reasoner.cpp" "src/reasoner/CMakeFiles/sariadne_reasoner.dir/naive_reasoner.cpp.o" "gcc" "src/reasoner/CMakeFiles/sariadne_reasoner.dir/naive_reasoner.cpp.o.d"
  "/root/repo/src/reasoner/profiles.cpp" "src/reasoner/CMakeFiles/sariadne_reasoner.dir/profiles.cpp.o" "gcc" "src/reasoner/CMakeFiles/sariadne_reasoner.dir/profiles.cpp.o.d"
  "/root/repo/src/reasoner/rule_reasoner.cpp" "src/reasoner/CMakeFiles/sariadne_reasoner.dir/rule_reasoner.cpp.o" "gcc" "src/reasoner/CMakeFiles/sariadne_reasoner.dir/rule_reasoner.cpp.o.d"
  "/root/repo/src/reasoner/tableau_reasoner.cpp" "src/reasoner/CMakeFiles/sariadne_reasoner.dir/tableau_reasoner.cpp.o" "gcc" "src/reasoner/CMakeFiles/sariadne_reasoner.dir/tableau_reasoner.cpp.o.d"
  "/root/repo/src/reasoner/taxonomy.cpp" "src/reasoner/CMakeFiles/sariadne_reasoner.dir/taxonomy.cpp.o" "gcc" "src/reasoner/CMakeFiles/sariadne_reasoner.dir/taxonomy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ontology/CMakeFiles/sariadne_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/sariadne_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sariadne_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
