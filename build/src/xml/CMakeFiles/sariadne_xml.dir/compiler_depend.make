# Empty compiler generated dependencies file for sariadne_xml.
# This may be replaced when dependencies are built.
