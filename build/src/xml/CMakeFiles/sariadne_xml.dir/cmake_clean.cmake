file(REMOVE_RECURSE
  "CMakeFiles/sariadne_xml.dir/node.cpp.o"
  "CMakeFiles/sariadne_xml.dir/node.cpp.o.d"
  "CMakeFiles/sariadne_xml.dir/parser.cpp.o"
  "CMakeFiles/sariadne_xml.dir/parser.cpp.o.d"
  "CMakeFiles/sariadne_xml.dir/writer.cpp.o"
  "CMakeFiles/sariadne_xml.dir/writer.cpp.o.d"
  "libsariadne_xml.a"
  "libsariadne_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sariadne_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
