file(REMOVE_RECURSE
  "libsariadne_xml.a"
)
