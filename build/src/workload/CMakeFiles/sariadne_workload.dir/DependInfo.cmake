
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/ontology_gen.cpp" "src/workload/CMakeFiles/sariadne_workload.dir/ontology_gen.cpp.o" "gcc" "src/workload/CMakeFiles/sariadne_workload.dir/ontology_gen.cpp.o.d"
  "/root/repo/src/workload/service_gen.cpp" "src/workload/CMakeFiles/sariadne_workload.dir/service_gen.cpp.o" "gcc" "src/workload/CMakeFiles/sariadne_workload.dir/service_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/description/CMakeFiles/sariadne_description.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/sariadne_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/sariadne_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sariadne_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
