# Empty compiler generated dependencies file for sariadne_workload.
# This may be replaced when dependencies are built.
