file(REMOVE_RECURSE
  "CMakeFiles/sariadne_workload.dir/ontology_gen.cpp.o"
  "CMakeFiles/sariadne_workload.dir/ontology_gen.cpp.o.d"
  "CMakeFiles/sariadne_workload.dir/service_gen.cpp.o"
  "CMakeFiles/sariadne_workload.dir/service_gen.cpp.o.d"
  "libsariadne_workload.a"
  "libsariadne_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sariadne_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
