file(REMOVE_RECURSE
  "libsariadne_workload.a"
)
