# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("xml")
subdirs("ontology")
subdirs("reasoner")
subdirs("encoding")
subdirs("description")
subdirs("matching")
subdirs("bloom")
subdirs("directory")
subdirs("net")
subdirs("workload")
subdirs("ariadne")
subdirs("core")
