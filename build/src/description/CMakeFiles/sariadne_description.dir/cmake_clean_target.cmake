file(REMOVE_RECURSE
  "libsariadne_description.a"
)
