file(REMOVE_RECURSE
  "CMakeFiles/sariadne_description.dir/amigos_io.cpp.o"
  "CMakeFiles/sariadne_description.dir/amigos_io.cpp.o.d"
  "CMakeFiles/sariadne_description.dir/conversation.cpp.o"
  "CMakeFiles/sariadne_description.dir/conversation.cpp.o.d"
  "CMakeFiles/sariadne_description.dir/process.cpp.o"
  "CMakeFiles/sariadne_description.dir/process.cpp.o.d"
  "CMakeFiles/sariadne_description.dir/resolved.cpp.o"
  "CMakeFiles/sariadne_description.dir/resolved.cpp.o.d"
  "CMakeFiles/sariadne_description.dir/service.cpp.o"
  "CMakeFiles/sariadne_description.dir/service.cpp.o.d"
  "CMakeFiles/sariadne_description.dir/wsdl.cpp.o"
  "CMakeFiles/sariadne_description.dir/wsdl.cpp.o.d"
  "libsariadne_description.a"
  "libsariadne_description.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sariadne_description.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
