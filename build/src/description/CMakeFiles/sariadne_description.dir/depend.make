# Empty dependencies file for sariadne_description.
# This may be replaced when dependencies are built.
