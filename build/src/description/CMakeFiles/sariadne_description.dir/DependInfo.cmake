
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/description/amigos_io.cpp" "src/description/CMakeFiles/sariadne_description.dir/amigos_io.cpp.o" "gcc" "src/description/CMakeFiles/sariadne_description.dir/amigos_io.cpp.o.d"
  "/root/repo/src/description/conversation.cpp" "src/description/CMakeFiles/sariadne_description.dir/conversation.cpp.o" "gcc" "src/description/CMakeFiles/sariadne_description.dir/conversation.cpp.o.d"
  "/root/repo/src/description/process.cpp" "src/description/CMakeFiles/sariadne_description.dir/process.cpp.o" "gcc" "src/description/CMakeFiles/sariadne_description.dir/process.cpp.o.d"
  "/root/repo/src/description/resolved.cpp" "src/description/CMakeFiles/sariadne_description.dir/resolved.cpp.o" "gcc" "src/description/CMakeFiles/sariadne_description.dir/resolved.cpp.o.d"
  "/root/repo/src/description/service.cpp" "src/description/CMakeFiles/sariadne_description.dir/service.cpp.o" "gcc" "src/description/CMakeFiles/sariadne_description.dir/service.cpp.o.d"
  "/root/repo/src/description/wsdl.cpp" "src/description/CMakeFiles/sariadne_description.dir/wsdl.cpp.o" "gcc" "src/description/CMakeFiles/sariadne_description.dir/wsdl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ontology/CMakeFiles/sariadne_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/sariadne_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sariadne_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
