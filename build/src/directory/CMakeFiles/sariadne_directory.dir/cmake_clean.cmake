file(REMOVE_RECURSE
  "CMakeFiles/sariadne_directory.dir/dag.cpp.o"
  "CMakeFiles/sariadne_directory.dir/dag.cpp.o.d"
  "CMakeFiles/sariadne_directory.dir/dag_index.cpp.o"
  "CMakeFiles/sariadne_directory.dir/dag_index.cpp.o.d"
  "CMakeFiles/sariadne_directory.dir/flat_directory.cpp.o"
  "CMakeFiles/sariadne_directory.dir/flat_directory.cpp.o.d"
  "CMakeFiles/sariadne_directory.dir/semantic_directory.cpp.o"
  "CMakeFiles/sariadne_directory.dir/semantic_directory.cpp.o.d"
  "CMakeFiles/sariadne_directory.dir/state_transfer.cpp.o"
  "CMakeFiles/sariadne_directory.dir/state_transfer.cpp.o.d"
  "CMakeFiles/sariadne_directory.dir/syntactic_directory.cpp.o"
  "CMakeFiles/sariadne_directory.dir/syntactic_directory.cpp.o.d"
  "CMakeFiles/sariadne_directory.dir/taxonomy_directory.cpp.o"
  "CMakeFiles/sariadne_directory.dir/taxonomy_directory.cpp.o.d"
  "libsariadne_directory.a"
  "libsariadne_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sariadne_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
