
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/directory/dag.cpp" "src/directory/CMakeFiles/sariadne_directory.dir/dag.cpp.o" "gcc" "src/directory/CMakeFiles/sariadne_directory.dir/dag.cpp.o.d"
  "/root/repo/src/directory/dag_index.cpp" "src/directory/CMakeFiles/sariadne_directory.dir/dag_index.cpp.o" "gcc" "src/directory/CMakeFiles/sariadne_directory.dir/dag_index.cpp.o.d"
  "/root/repo/src/directory/flat_directory.cpp" "src/directory/CMakeFiles/sariadne_directory.dir/flat_directory.cpp.o" "gcc" "src/directory/CMakeFiles/sariadne_directory.dir/flat_directory.cpp.o.d"
  "/root/repo/src/directory/semantic_directory.cpp" "src/directory/CMakeFiles/sariadne_directory.dir/semantic_directory.cpp.o" "gcc" "src/directory/CMakeFiles/sariadne_directory.dir/semantic_directory.cpp.o.d"
  "/root/repo/src/directory/state_transfer.cpp" "src/directory/CMakeFiles/sariadne_directory.dir/state_transfer.cpp.o" "gcc" "src/directory/CMakeFiles/sariadne_directory.dir/state_transfer.cpp.o.d"
  "/root/repo/src/directory/syntactic_directory.cpp" "src/directory/CMakeFiles/sariadne_directory.dir/syntactic_directory.cpp.o" "gcc" "src/directory/CMakeFiles/sariadne_directory.dir/syntactic_directory.cpp.o.d"
  "/root/repo/src/directory/taxonomy_directory.cpp" "src/directory/CMakeFiles/sariadne_directory.dir/taxonomy_directory.cpp.o" "gcc" "src/directory/CMakeFiles/sariadne_directory.dir/taxonomy_directory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matching/CMakeFiles/sariadne_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/sariadne_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/description/CMakeFiles/sariadne_description.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/sariadne_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/reasoner/CMakeFiles/sariadne_reasoner.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/sariadne_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/sariadne_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sariadne_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
