file(REMOVE_RECURSE
  "libsariadne_directory.a"
)
