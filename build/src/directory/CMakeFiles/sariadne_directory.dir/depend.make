# Empty dependencies file for sariadne_directory.
# This may be replaced when dependencies are built.
