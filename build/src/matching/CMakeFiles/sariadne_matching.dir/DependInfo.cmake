
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/match.cpp" "src/matching/CMakeFiles/sariadne_matching.dir/match.cpp.o" "gcc" "src/matching/CMakeFiles/sariadne_matching.dir/match.cpp.o.d"
  "/root/repo/src/matching/online_matcher.cpp" "src/matching/CMakeFiles/sariadne_matching.dir/online_matcher.cpp.o" "gcc" "src/matching/CMakeFiles/sariadne_matching.dir/online_matcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/description/CMakeFiles/sariadne_description.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/sariadne_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/reasoner/CMakeFiles/sariadne_reasoner.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/sariadne_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/sariadne_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sariadne_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
