# Empty compiler generated dependencies file for sariadne_matching.
# This may be replaced when dependencies are built.
