file(REMOVE_RECURSE
  "CMakeFiles/sariadne_matching.dir/match.cpp.o"
  "CMakeFiles/sariadne_matching.dir/match.cpp.o.d"
  "CMakeFiles/sariadne_matching.dir/online_matcher.cpp.o"
  "CMakeFiles/sariadne_matching.dir/online_matcher.cpp.o.d"
  "libsariadne_matching.a"
  "libsariadne_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sariadne_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
