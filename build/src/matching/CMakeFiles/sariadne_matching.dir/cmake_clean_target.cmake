file(REMOVE_RECURSE
  "libsariadne_matching.a"
)
