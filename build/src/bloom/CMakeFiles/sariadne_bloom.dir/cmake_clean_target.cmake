file(REMOVE_RECURSE
  "libsariadne_bloom.a"
)
