file(REMOVE_RECURSE
  "CMakeFiles/sariadne_bloom.dir/bloom_filter.cpp.o"
  "CMakeFiles/sariadne_bloom.dir/bloom_filter.cpp.o.d"
  "libsariadne_bloom.a"
  "libsariadne_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sariadne_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
