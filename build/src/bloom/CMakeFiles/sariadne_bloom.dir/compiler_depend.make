# Empty compiler generated dependencies file for sariadne_bloom.
# This may be replaced when dependencies are built.
