file(REMOVE_RECURSE
  "libsariadne_core.a"
)
