# Empty compiler generated dependencies file for sariadne_core.
# This may be replaced when dependencies are built.
