file(REMOVE_RECURSE
  "CMakeFiles/sariadne_core.dir/composition.cpp.o"
  "CMakeFiles/sariadne_core.dir/composition.cpp.o.d"
  "libsariadne_core.a"
  "libsariadne_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sariadne_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
