file(REMOVE_RECURSE
  "CMakeFiles/sariadne_encoding.dir/code_table.cpp.o"
  "CMakeFiles/sariadne_encoding.dir/code_table.cpp.o.d"
  "CMakeFiles/sariadne_encoding.dir/knowledge_base.cpp.o"
  "CMakeFiles/sariadne_encoding.dir/knowledge_base.cpp.o.d"
  "CMakeFiles/sariadne_encoding.dir/lin_encoding.cpp.o"
  "CMakeFiles/sariadne_encoding.dir/lin_encoding.cpp.o.d"
  "libsariadne_encoding.a"
  "libsariadne_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sariadne_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
