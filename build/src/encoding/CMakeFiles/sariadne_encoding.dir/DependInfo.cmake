
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/encoding/code_table.cpp" "src/encoding/CMakeFiles/sariadne_encoding.dir/code_table.cpp.o" "gcc" "src/encoding/CMakeFiles/sariadne_encoding.dir/code_table.cpp.o.d"
  "/root/repo/src/encoding/knowledge_base.cpp" "src/encoding/CMakeFiles/sariadne_encoding.dir/knowledge_base.cpp.o" "gcc" "src/encoding/CMakeFiles/sariadne_encoding.dir/knowledge_base.cpp.o.d"
  "/root/repo/src/encoding/lin_encoding.cpp" "src/encoding/CMakeFiles/sariadne_encoding.dir/lin_encoding.cpp.o" "gcc" "src/encoding/CMakeFiles/sariadne_encoding.dir/lin_encoding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/reasoner/CMakeFiles/sariadne_reasoner.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/sariadne_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/sariadne_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sariadne_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
