file(REMOVE_RECURSE
  "libsariadne_encoding.a"
)
