# Empty compiler generated dependencies file for sariadne_encoding.
# This may be replaced when dependencies are built.
