file(REMOVE_RECURSE
  "CMakeFiles/ablation_churn.dir/ablation_churn.cpp.o"
  "CMakeFiles/ablation_churn.dir/ablation_churn.cpp.o.d"
  "ablation_churn"
  "ablation_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
