file(REMOVE_RECURSE
  "CMakeFiles/ablation_reasoners.dir/ablation_reasoners.cpp.o"
  "CMakeFiles/ablation_reasoners.dir/ablation_reasoners.cpp.o.d"
  "ablation_reasoners"
  "ablation_reasoners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reasoners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
