# Empty compiler generated dependencies file for ablation_reasoners.
# This may be replaced when dependencies are built.
