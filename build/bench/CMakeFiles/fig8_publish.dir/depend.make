# Empty dependencies file for fig8_publish.
# This may be replaced when dependencies are built.
