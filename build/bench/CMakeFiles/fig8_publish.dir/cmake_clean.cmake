file(REMOVE_RECURSE
  "CMakeFiles/fig8_publish.dir/fig8_publish.cpp.o"
  "CMakeFiles/fig8_publish.dir/fig8_publish.cpp.o.d"
  "fig8_publish"
  "fig8_publish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_publish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
