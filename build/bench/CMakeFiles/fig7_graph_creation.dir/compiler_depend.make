# Empty compiler generated dependencies file for fig7_graph_creation.
# This may be replaced when dependencies are built.
