file(REMOVE_RECURSE
  "CMakeFiles/fig7_graph_creation.dir/fig7_graph_creation.cpp.o"
  "CMakeFiles/fig7_graph_creation.dir/fig7_graph_creation.cpp.o.d"
  "fig7_graph_creation"
  "fig7_graph_creation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_graph_creation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
