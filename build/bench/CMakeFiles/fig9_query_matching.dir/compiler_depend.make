# Empty compiler generated dependencies file for fig9_query_matching.
# This may be replaced when dependencies are built.
