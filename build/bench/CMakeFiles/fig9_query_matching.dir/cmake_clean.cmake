file(REMOVE_RECURSE
  "CMakeFiles/fig9_query_matching.dir/fig9_query_matching.cpp.o"
  "CMakeFiles/fig9_query_matching.dir/fig9_query_matching.cpp.o.d"
  "fig9_query_matching"
  "fig9_query_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_query_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
