file(REMOVE_RECURSE
  "CMakeFiles/fig10_ariadne_vs_sariadne.dir/fig10_ariadne_vs_sariadne.cpp.o"
  "CMakeFiles/fig10_ariadne_vs_sariadne.dir/fig10_ariadne_vs_sariadne.cpp.o.d"
  "fig10_ariadne_vs_sariadne"
  "fig10_ariadne_vs_sariadne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ariadne_vs_sariadne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
