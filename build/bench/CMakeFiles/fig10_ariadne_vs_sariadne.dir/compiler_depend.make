# Empty compiler generated dependencies file for fig10_ariadne_vs_sariadne.
# This may be replaced when dependencies are built.
