# Empty dependencies file for scale_distributed.
# This may be replaced when dependencies are built.
