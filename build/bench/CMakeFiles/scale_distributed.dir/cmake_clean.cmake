file(REMOVE_RECURSE
  "CMakeFiles/scale_distributed.dir/scale_distributed.cpp.o"
  "CMakeFiles/scale_distributed.dir/scale_distributed.cpp.o.d"
  "scale_distributed"
  "scale_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
