
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_dag.cpp" "bench/CMakeFiles/ablation_dag.dir/ablation_dag.cpp.o" "gcc" "bench/CMakeFiles/ablation_dag.dir/ablation_dag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sariadne_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ariadne/CMakeFiles/sariadne_ariadne.dir/DependInfo.cmake"
  "/root/repo/build/src/directory/CMakeFiles/sariadne_directory.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/sariadne_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sariadne_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sariadne_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/sariadne_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/description/CMakeFiles/sariadne_description.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/sariadne_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/reasoner/CMakeFiles/sariadne_reasoner.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/sariadne_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/sariadne_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sariadne_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
