# Empty compiler generated dependencies file for ablation_dag.
# This may be replaced when dependencies are built.
