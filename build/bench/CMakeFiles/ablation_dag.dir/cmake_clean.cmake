file(REMOVE_RECURSE
  "CMakeFiles/ablation_dag.dir/ablation_dag.cpp.o"
  "CMakeFiles/ablation_dag.dir/ablation_dag.cpp.o.d"
  "ablation_dag"
  "ablation_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
