# Empty dependencies file for fig2_reasoner_cost.
# This may be replaced when dependencies are built.
