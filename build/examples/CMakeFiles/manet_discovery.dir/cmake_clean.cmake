file(REMOVE_RECURSE
  "CMakeFiles/manet_discovery.dir/manet_discovery.cpp.o"
  "CMakeFiles/manet_discovery.dir/manet_discovery.cpp.o.d"
  "manet_discovery"
  "manet_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manet_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
