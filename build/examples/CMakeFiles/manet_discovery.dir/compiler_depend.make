# Empty compiler generated dependencies file for manet_discovery.
# This may be replaced when dependencies are built.
