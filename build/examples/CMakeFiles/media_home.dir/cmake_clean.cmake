file(REMOVE_RECURSE
  "CMakeFiles/media_home.dir/media_home.cpp.o"
  "CMakeFiles/media_home.dir/media_home.cpp.o.d"
  "media_home"
  "media_home.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_home.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
