# Empty dependencies file for media_home.
# This may be replaced when dependencies are built.
