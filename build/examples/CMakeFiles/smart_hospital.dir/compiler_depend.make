# Empty compiler generated dependencies file for smart_hospital.
# This may be replaced when dependencies are built.
