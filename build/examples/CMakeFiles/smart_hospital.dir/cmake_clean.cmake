file(REMOVE_RECURSE
  "CMakeFiles/smart_hospital.dir/smart_hospital.cpp.o"
  "CMakeFiles/smart_hospital.dir/smart_hospital.cpp.o.d"
  "smart_hospital"
  "smart_hospital.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_hospital.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
