// ResolvedCapability — a capability whose qualified concept names have been
// resolved against an ontology registry into ConceptRefs, with the set of
// ontologies it draws from precomputed. This is the form the matchers and
// directory DAGs operate on: resolution happens once at publish (or
// request-build) time, never during matching.
//
// Only the data types live here, in the encoding layer, so matching and
// summary code can consume resolved capabilities without depending on the
// description layer. The resolve_*/attach_code_signature* functions that
// *produce* them from Amigo-S documents stay in description/resolved.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "encoding/capability_kind.hpp"
#include "encoding/interval.hpp"
#include "ontology/registry.hpp"
#include "support/flat_set.hpp"

namespace sariadne::desc {

using onto::ConceptRef;
using onto::OntologyIndex;

/// One concept of a CodeSignature role: its ontology, its canonical
/// (representative) concept id, and the span of its packed interval
/// occurrences inside CodeSignature::intervals.
struct CodedConceptSpan {
    OntologyIndex ontology = 0;
    onto::ConceptId canonical = 0;
    std::uint32_t begin = 0;  ///< index into CodeSignature::intervals
    std::uint32_t count = 0;  ///< number of occurrences (sorted by lo)
};

/// Precomputed flat-layout codes of a resolved capability: per-role arrays
/// of (ontology, canonical concept, interval span), with every referenced
/// interval occurrence copied into one contiguous array. Built once at
/// resolve time; self-contained (owns its interval copies), so it stays
/// valid even if knowledge-base tables are rebuilt. `environment_tag`
/// records the combined code-table versions of the ontologies the
/// capability references (the precise per-set wire tag, compared against
/// Capability::code_version at publish); `global_tag` records the whole
/// knowledge-base environment and is what the batched matching kernel
/// checks per call — one integer compare against the oracle's current
/// global tag, falling back to the oracle path on mismatch.
struct CodeSignature {
    std::vector<CodedConceptSpan> inputs;
    std::vector<CodedConceptSpan> outputs;
    std::vector<CodedConceptSpan> properties;
    std::vector<encoding::CodedInterval> intervals;
    std::uint64_t environment_tag = 0;
    std::uint64_t global_tag = 0;
    bool valid = false;
};

struct ResolvedCapability {
    std::string name;           ///< capability name (diagnostics)
    std::string service_name;   ///< owning service (empty for requests)
    CapabilityKind kind = CapabilityKind::kProvided;

    std::vector<ConceptRef> inputs;
    std::vector<ConceptRef> outputs;
    /// Properties with the category folded in (paper §2.3: the category is
    /// matched as one of the required/provided properties).
    std::vector<ConceptRef> properties;

    /// Ontologies referenced by any concept above — the DAG index key and
    /// the Bloom-filter summary unit (§3.3, §4).
    FlatSet<OntologyIndex> ontologies;

    std::uint64_t code_version = 0;

    /// Flat-layout fast-path codes (empty/invalid unless attached via
    /// attach_code_signature or a KnowledgeBase-taking resolve overload).
    CodeSignature signature;
};

}  // namespace sariadne::desc
