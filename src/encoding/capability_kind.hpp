// CapabilityKind — provided vs required, split out of
// description/capability.hpp as a micro-header so the encoding layer's
// resolved-capability data types (encoding/resolved.hpp) can name the
// enum without reaching up into the description layer. Stays in
// namespace sariadne::desc: it is vocabulary of the Amigo-S capability
// model, wherever the layer DAG makes it live.
#pragma once

#include <cstdint>

namespace sariadne::desc {

enum class CapabilityKind : std::uint8_t {
    kProvided,  ///< offered by the service
    kRequired,  ///< sought from other networked services
};

}  // namespace sariadne::desc
