// Numeric interval used to encode classified concept hierarchies (§3.2 of
// the paper, after Constantinescu & Faltings). Intervals are half-open
// [lo, hi) sub-ranges of the unit interval; by construction they are either
// nested or disjoint, never partially overlapping, so subsumption checking
// reduces to containment — "a numeric comparison of codes".
#pragma once

namespace sariadne::encoding {

struct Interval {
    double lo = 0.0;
    double hi = 0.0;

    /// Width of the interval; zero width means encoding precision ran out.
    double width() const noexcept { return hi - lo; }

    bool empty() const noexcept { return hi <= lo; }

    /// True iff `inner` is fully contained in (or equal to) this interval.
    bool contains(const Interval& inner) const noexcept {
        return lo <= inner.lo && inner.hi <= hi;
    }

    bool contains_point(double x) const noexcept { return lo <= x && x < hi; }

    /// True iff the two intervals share at least one point.
    bool overlaps(const Interval& other) const noexcept {
        return lo < other.hi && other.lo < hi;
    }

    /// Maps `inner` (given in unit-interval coordinates) into this
    /// interval's coordinate frame.
    Interval project(const Interval& inner) const noexcept {
        const double w = width();
        return Interval{lo + inner.lo * w, lo + inner.hi * w};
    }

    friend bool operator==(const Interval&, const Interval&) noexcept = default;
};

}  // namespace sariadne::encoding
