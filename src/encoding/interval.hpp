// lint:hot-path — numeric interval used to encode classified concept
// hierarchies (§3.2 of the paper, after Constantinescu & Faltings).
// Intervals are half-open [lo, hi) sub-ranges of the unit interval; by
// construction they are either nested or disjoint, never partially
// overlapping, so subsumption checking reduces to containment — "a numeric
// comparison of codes".
#pragma once

#include <cstddef>
#include <cstdint>

namespace sariadne::encoding {

struct Interval {
    double lo = 0.0;
    double hi = 0.0;

    /// Width of the interval; zero width means encoding precision ran out.
    double width() const noexcept { return hi - lo; }

    bool empty() const noexcept { return hi <= lo; }

    /// True iff `inner` is fully contained in (or equal to) this interval.
    bool contains(const Interval& inner) const noexcept {
        return lo <= inner.lo && inner.hi <= hi;
    }

    bool contains_point(double x) const noexcept { return lo <= x && x < hi; }

    /// True iff the two intervals share at least one point.
    bool overlaps(const Interval& other) const noexcept {
        return lo < other.hi && other.lo < hi;
    }

    /// Maps `inner` (given in unit-interval coordinates) into this
    /// interval's coordinate frame.
    Interval project(const Interval& inner) const noexcept {
        const double w = width();
        return Interval{lo + inner.lo * w, lo + inner.hi * w};
    }

    friend bool operator==(const Interval&, const Interval&) noexcept = default;
};

/// One interval occurrence of a concept, tagged with its tree depth in the
/// spanning-tree unfolding of the classified DAG.
struct CodedInterval {
    Interval interval;
    std::int32_t depth = 0;
};

// ---------------------------------------------------------------------------
// Packed-occurrence kernels.
//
// Both kernels take two occurrence lists that are (a) sorted by `lo` and
// (b) pairwise disjoint. Disjointness holds by construction: occurrences of
// one concept sit at distinct positions of the spanning-tree unfolding, and
// a concept never appears inside its own subtree (the classified taxonomy is
// acyclic), so no occurrence of a concept can nest inside another occurrence
// of the same concept. Under those two facts a single forward merge over
// (outer, inner) finds every containment pair: each inner interval is
// contained in at most one outer (outers are disjoint), and once
// inner.lo >= outer.hi that outer can never contain a later inner.
// ---------------------------------------------------------------------------

/// True iff some `inner` occurrence is geometrically contained in some
/// `outer` occurrence. O(na + nb) two-pointer merge, early exit on first hit.
/// Single-occurrence concepts (the overwhelmingly common case for
/// tree-shaped ontologies) take branch-light fast paths whose conditions
/// replicate the merge decisions exactly — including the empty-interval
/// edge (lo == hi encodes exhausted precision), where plain containment
/// (`olo <= ilo && ihi <= ohi`) would diverge from the merge.
///
/// This is the linear baseline; packed_contains below gallops the skip
/// phases when one list dwarfs the other, and the differential tests pin
/// the two to identical results.
inline bool packed_contains_linear(const CodedInterval* outer, std::size_t na,
                                   const CodedInterval* inner,
                                   std::size_t nb) noexcept {
    if (na == 1) {
        const double olo = outer[0].interval.lo;
        const double ohi = outer[0].interval.hi;
        if (nb == 1) {
            const double ilo = inner[0].interval.lo;
            return ilo >= olo && ilo < ohi && inner[0].interval.hi <= ohi;
        }
        // The merge decides the sole outer at the first inner that does
        // not start strictly before it; inner occurrences are sorted by lo.
        for (std::size_t j = 0; j < nb; ++j) {
            const double ilo = inner[j].interval.lo;
            if (ilo < olo) continue;
            return ilo < ohi && inner[j].interval.hi <= ohi;
        }
        return false;
    }
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < na && j < nb) {
        if (inner[j].interval.lo < outer[i].interval.lo) {
            ++j;  // inner starts before this outer: disjoint or contains it
        } else if (inner[j].interval.lo >= outer[i].interval.hi) {
            ++i;  // inner starts after this outer ends: outer is done
        } else if (inner[j].interval.hi <= outer[i].interval.hi) {
            return true;  // nested-or-disjoint + start inside ⇒ containment
        } else {
            ++i;  // inner strictly contains outer[i]; try the next outer
        }
    }
    return false;
}

/// Minimum depth(inner) − depth(outer) over containing pairs, or −1 when no
/// `inner` occurrence nests inside an `outer` occurrence. Early exit at the
/// minimum possible nested distance (1). Linear baseline of packed_distance.
inline int packed_distance_linear(const CodedInterval* outer, std::size_t na,
                                  const CodedInterval* inner,
                                  std::size_t nb) noexcept {
    if (na == 1) {
        // Same single-outer specialization as packed_contains: a contained
        // inner records its depth delta and scanning continues; an inner
        // that starts at/after the outer's end, or strictly contains it,
        // exhausts the sole outer (merge case 2 / case 4 ⇒ ++i ⇒ done).
        const double olo = outer[0].interval.lo;
        const double ohi = outer[0].interval.hi;
        const int odepth = outer[0].depth;
        int single_best = -1;
        for (std::size_t j = 0; j < nb; ++j) {
            const double ilo = inner[j].interval.lo;
            if (ilo < olo) continue;
            if (ilo >= ohi || inner[j].interval.hi > ohi) break;
            const int d = inner[j].depth - odepth;
            if (d > 0 && (single_best < 0 || d < single_best)) {
                if (d == 1) return 1;
                single_best = d;
            }
        }
        return single_best;
    }
    int best = -1;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < na && j < nb) {
        if (inner[j].interval.lo < outer[i].interval.lo) {
            ++j;
        } else if (inner[j].interval.lo >= outer[i].interval.hi) {
            ++i;
        } else if (inner[j].interval.hi <= outer[i].interval.hi) {
            const int d = inner[j].depth - outer[i].depth;
            if (d > 0 && (best < 0 || d < best)) {
                if (d == 1) return 1;
                best = d;
            }
            ++j;
        } else {
            ++i;
        }
    }
    return best;
}

// ---------------------------------------------------------------------------
// Galloped variants.
//
// When one occurrence list dwarfs the other, the linear merge spends almost
// all its iterations in the two skip cases (++j while inner starts before
// the current outer, ++i while the current inner starts at/after an outer's
// end). Both skips advance a pointer to the first element crossing a bound
// in a sorted sequence, so they can be replaced by exponential + binary
// search without changing which (outer, inner) pairs reach the containment
// test: skipped inners start before every remaining outer (outers are
// sorted and disjoint, so their lo never decreases), and skipped outers end
// at/before every remaining inner's start (disjoint sorted intervals also
// have non-decreasing hi). The galloped merge therefore returns exactly the
// linear answer in O(min · log max) worst case — and the exponential probe
// keeps short skips at a couple of comparisons, so it never loses more than
// a constant factor on balanced inputs either.
// ---------------------------------------------------------------------------

namespace interval_detail {

/// First k in [from+1, n) with v[k].interval.lo >= bound; n when none.
/// Precondition: v[from].interval.lo < bound (the skip condition held).
inline std::size_t gallop_first_lo_ge(const CodedInterval* v, std::size_t from,
                                      std::size_t n, double bound) noexcept {
    std::size_t step = 1;
    std::size_t prev = from;                // known < bound
    std::size_t probe = from + step;
    while (probe < n && v[probe].interval.lo < bound) {
        prev = probe;
        step <<= 1;
        probe = from + step;
    }
    std::size_t lo = prev + 1;
    std::size_t hi = probe < n ? probe : n;  // v[hi] >= bound or hi == n
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (v[mid].interval.lo < bound) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    return lo;
}

/// First k in [from+1, n) with v[k].interval.hi > bound; n when none.
/// Precondition: v[from].interval.hi <= bound. Valid because disjoint
/// sorted intervals have non-decreasing hi (v[k].hi <= v[k+1].lo < v[k+1].hi).
inline std::size_t gallop_first_hi_gt(const CodedInterval* v, std::size_t from,
                                      std::size_t n, double bound) noexcept {
    std::size_t step = 1;
    std::size_t prev = from;                // known <= bound
    std::size_t probe = from + step;
    while (probe < n && v[probe].interval.hi <= bound) {
        prev = probe;
        step <<= 1;
        probe = from + step;
    }
    std::size_t lo = prev + 1;
    std::size_t hi = probe < n ? probe : n;
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (v[mid].interval.hi <= bound) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    return lo;
}

}  // namespace interval_detail

/// packed_contains_linear with galloped skip phases; identical results.
inline bool packed_contains_galloped(const CodedInterval* outer,
                                     std::size_t na,
                                     const CodedInterval* inner,
                                     std::size_t nb) noexcept {
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < na && j < nb) {
        const double ilo = inner[j].interval.lo;
        if (ilo < outer[i].interval.lo) {
            j = interval_detail::gallop_first_lo_ge(inner, j, nb,
                                                    outer[i].interval.lo);
        } else if (ilo >= outer[i].interval.hi) {
            i = interval_detail::gallop_first_hi_gt(outer, i, na, ilo);
        } else if (inner[j].interval.hi <= outer[i].interval.hi) {
            return true;
        } else {
            ++i;  // inner strictly contains outer[i]; rare, step linearly
        }
    }
    return false;
}

/// packed_distance_linear with galloped skip phases; identical results.
inline int packed_distance_galloped(const CodedInterval* outer, std::size_t na,
                                    const CodedInterval* inner,
                                    std::size_t nb) noexcept {
    int best = -1;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < na && j < nb) {
        const double ilo = inner[j].interval.lo;
        if (ilo < outer[i].interval.lo) {
            j = interval_detail::gallop_first_lo_ge(inner, j, nb,
                                                    outer[i].interval.lo);
        } else if (ilo >= outer[i].interval.hi) {
            i = interval_detail::gallop_first_hi_gt(outer, i, na, ilo);
        } else if (inner[j].interval.hi <= outer[i].interval.hi) {
            const int d = inner[j].depth - outer[i].depth;
            if (d > 0 && (best < 0 || d < best)) {
                if (d == 1) return 1;
                best = d;
            }
            ++j;
        } else {
            ++i;
        }
    }
    return best;
}

/// Galloping pays for its binary searches only when the skips are long:
/// one side must be at least this many times the other ...
inline constexpr std::size_t kGallopRatio = 8;
/// ... and the longer side at least this long (tiny lists fit in a couple
/// of cache lines; the linear merge wins on constants there).
inline constexpr std::size_t kGallopMinLength = 16;

inline bool gallop_worthwhile(std::size_t na, std::size_t nb) noexcept {
    const std::size_t longer = na > nb ? na : nb;
    const std::size_t shorter = na > nb ? nb : na;
    return longer >= kGallopMinLength && longer >= kGallopRatio * shorter;
}

/// Dispatching entry points — the names the match kernel calls. Skewed
/// list pairs take the galloped merge, everything else the linear one
/// (including its single-occurrence fast paths).
inline bool packed_contains(const CodedInterval* outer, std::size_t na,
                            const CodedInterval* inner,
                            std::size_t nb) noexcept {
    if (gallop_worthwhile(na, nb)) {
        return packed_contains_galloped(outer, na, inner, nb);
    }
    return packed_contains_linear(outer, na, inner, nb);
}

inline int packed_distance(const CodedInterval* outer, std::size_t na,
                           const CodedInterval* inner,
                           std::size_t nb) noexcept {
    if (gallop_worthwhile(na, nb)) {
        return packed_distance_galloped(outer, na, inner, nb);
    }
    return packed_distance_linear(outer, na, inner, nb);
}

}  // namespace sariadne::encoding
