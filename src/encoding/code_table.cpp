#include "encoding/code_table.hpp"

#include <algorithm>

#include "support/contracts.hpp"
#include "support/errors.hpp"
#include "support/hash.hpp"

namespace sariadne::encoding {

namespace {

struct Builder {
    const reasoner::Taxonomy& taxonomy;
    const EncodingParams& params;
    std::vector<std::vector<CodedInterval>>& scratch;
    std::size_t total = 0;

    void place(ConceptId rep, const Interval& slot, std::int32_t depth) {
        if (slot.empty()) {
            throw Error("interval encoding precision exhausted at depth " +
                        std::to_string(depth) +
                        " — hierarchy too deep for p=" + std::to_string(params.p) +
                        ", k=" + std::to_string(params.k));
        }
        if (++total > CodeTable::kMaxTotalOccurrences) {
            throw Error("interval replication budget exhausted — the classified "
                        "hierarchy has too many multi-parent unfoldings");
        }
        scratch[rep].push_back(CodedInterval{slot, depth});
        const auto& kids = taxonomy.direct_children(rep);
        for (std::size_t i = 0; i < kids.size(); ++i) {
            place(kids[i], slot.project(sibling_slot(i, params)), depth + 1);
        }
    }
};

}  // namespace

CodeTable CodeTable::build(const onto::Ontology& ontology,
                           const reasoner::Taxonomy& taxonomy,
                           const EncodingParams& params) {
    SARIADNE_EXPECTS(taxonomy.class_count() == ontology.class_count());

    CodeTable table;
    table.ontology_uri_ = ontology.uri();
    table.ontology_version_ = ontology.version();
    table.params_ = params;
    table.version_tag_ = mix64(fnv1a64(ontology.uri()) ^
                               (std::uint64_t{ontology.version()} << 32) ^
                               (std::uint64_t{params.p} << 8) ^ params.k);

    const std::size_t n = taxonomy.class_count();
    table.canonical_.resize(n);
    for (ConceptId c = 0; c < n; ++c) table.canonical_[c] = taxonomy.canonical(c);

    std::vector<std::vector<CodedInterval>> scratch(n);
    Builder builder{taxonomy, params, scratch, 0};
    const auto& roots = taxonomy.roots();
    const Interval unit{0.0, 1.0};
    for (std::size_t i = 0; i < roots.size(); ++i) {
        builder.place(roots[i], unit.project(sibling_slot(i, params)), 0);
    }

    // Pack into CSR: one flat occurrence array + per-representative offsets,
    // each slice sorted by interval start (the merge kernels' precondition).
    table.offsets_.assign(n + 1, 0);
    table.packed_.reserve(builder.total);
    for (ConceptId rep = 0; rep < n; ++rep) {
        auto& occurrences = scratch[rep];
        std::sort(occurrences.begin(), occurrences.end(),
                  [](const CodedInterval& a, const CodedInterval& b) {
                      return a.interval.lo < b.interval.lo;
                  });
        table.offsets_[rep] = static_cast<std::uint32_t>(table.packed_.size());
        table.packed_.insert(table.packed_.end(), occurrences.begin(),
                             occurrences.end());
    }
    table.offsets_[n] = static_cast<std::uint32_t>(table.packed_.size());
    return table;
}

ConceptCode CodeTable::code(ConceptId id) const {
    SARIADNE_EXPECTS(id < canonical_.size());
    return ConceptCode{occurrences_of(id)};
}

bool CodeTable::subsumes(ConceptId subsumer, ConceptId subsumee) const {
    SARIADNE_EXPECTS(subsumer < canonical_.size() && subsumee < canonical_.size());
    const ConceptId a = canonical_[subsumer];
    const ConceptId b = canonical_[subsumee];
    if (a == b) return true;
    const std::span<const CodedInterval> outer = occurrences_of(a);
    const std::span<const CodedInterval> inner = occurrences_of(b);
    return packed_contains(outer.data(), outer.size(), inner.data(),
                           inner.size());
}

std::optional<int> CodeTable::distance(ConceptId subsumer,
                                       ConceptId subsumee) const {
    SARIADNE_EXPECTS(subsumer < canonical_.size() && subsumee < canonical_.size());
    const ConceptId a = canonical_[subsumer];
    const ConceptId b = canonical_[subsumee];
    if (a == b) return 0;
    const std::span<const CodedInterval> outer = occurrences_of(a);
    const std::span<const CodedInterval> inner = occurrences_of(b);
    const int best = packed_distance(outer.data(), outer.size(), inner.data(),
                                     inner.size());
    if (best < 0) return std::nullopt;
    return best;
}

}  // namespace sariadne::encoding
