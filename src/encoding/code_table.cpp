#include "encoding/code_table.hpp"

#include <algorithm>
#include <limits>

#include "support/contracts.hpp"
#include "support/errors.hpp"
#include "support/hash.hpp"

namespace sariadne::encoding {

namespace {

struct Builder {
    const reasoner::Taxonomy& taxonomy;
    const EncodingParams& params;
    std::vector<ConceptCode>& codes;
    std::size_t total = 0;

    void place(ConceptId rep, const Interval& slot, std::int32_t depth) {
        if (slot.empty()) {
            throw Error("interval encoding precision exhausted at depth " +
                        std::to_string(depth) +
                        " — hierarchy too deep for p=" + std::to_string(params.p) +
                        ", k=" + std::to_string(params.k));
        }
        if (++total > CodeTable::kMaxTotalOccurrences) {
            throw Error("interval replication budget exhausted — the classified "
                        "hierarchy has too many multi-parent unfoldings");
        }
        codes[rep].occurrences.push_back(CodedInterval{slot, depth});
        const auto& kids = taxonomy.direct_children(rep);
        for (std::size_t i = 0; i < kids.size(); ++i) {
            place(kids[i], slot.project(sibling_slot(i, params)), depth + 1);
        }
    }
};

}  // namespace

CodeTable CodeTable::build(const onto::Ontology& ontology,
                           const reasoner::Taxonomy& taxonomy,
                           const EncodingParams& params) {
    SARIADNE_EXPECTS(taxonomy.class_count() == ontology.class_count());

    CodeTable table;
    table.ontology_uri_ = ontology.uri();
    table.ontology_version_ = ontology.version();
    table.params_ = params;
    table.version_tag_ = mix64(fnv1a64(ontology.uri()) ^
                               (std::uint64_t{ontology.version()} << 32) ^
                               (std::uint64_t{params.p} << 8) ^ params.k);

    const std::size_t n = taxonomy.class_count();
    table.canonical_.resize(n);
    for (ConceptId c = 0; c < n; ++c) table.canonical_[c] = taxonomy.canonical(c);

    table.codes_.assign(n, {});
    Builder builder{taxonomy, params, table.codes_, 0};
    const auto& roots = taxonomy.roots();
    const Interval unit{0.0, 1.0};
    for (std::size_t i = 0; i < roots.size(); ++i) {
        builder.place(roots[i], unit.project(sibling_slot(i, params)), 0);
    }
    table.total_occurrences_ = builder.total;

    // Keep occurrence lists sorted by depth so distance() can early-exit.
    for (auto& code : table.codes_) {
        std::sort(code.occurrences.begin(), code.occurrences.end(),
                  [](const CodedInterval& a, const CodedInterval& b) {
                      return a.depth < b.depth;
                  });
    }
    return table;
}

const ConceptCode& CodeTable::code(ConceptId id) const {
    SARIADNE_EXPECTS(id < canonical_.size());
    return codes_[canonical_[id]];
}

bool CodeTable::subsumes(ConceptId subsumer, ConceptId subsumee) const {
    SARIADNE_EXPECTS(subsumer < canonical_.size() && subsumee < canonical_.size());
    const ConceptId a = canonical_[subsumer];
    const ConceptId b = canonical_[subsumee];
    if (a == b) return true;
    for (const CodedInterval& outer : codes_[a].occurrences) {
        for (const CodedInterval& inner : codes_[b].occurrences) {
            if (outer.interval.contains(inner.interval)) return true;
        }
    }
    return false;
}

std::optional<int> CodeTable::distance(ConceptId subsumer,
                                       ConceptId subsumee) const {
    SARIADNE_EXPECTS(subsumer < canonical_.size() && subsumee < canonical_.size());
    const ConceptId a = canonical_[subsumer];
    const ConceptId b = canonical_[subsumee];
    if (a == b) return 0;
    int best = std::numeric_limits<int>::max();
    for (const CodedInterval& outer : codes_[a].occurrences) {
        for (const CodedInterval& inner : codes_[b].occurrences) {
            if (inner.depth <= outer.depth) continue;  // can't be nested below
            if (outer.interval.contains(inner.interval)) {
                best = std::min(best, inner.depth - outer.depth);
            }
        }
    }
    if (best == std::numeric_limits<int>::max()) return std::nullopt;
    return best;
}

}  // namespace sariadne::encoding
