// The paper's linear inverse exponential slot function (§3.2):
//
//   linKinvexpP(x) = 1/p^⌊x/k⌋ + (x mod k) · (1/k) · (1/p^⌊x/k⌋)
//
// With p = 2, k = 5 the sequence enumerates, for x = 0, 1, 2, …, the left
// edges (scaled by 2) of an unbounded family of pairwise-disjoint slots
// packed into the unit interval: block j = ⌊x/k⌋ tiles [1/(2·p^j), 1/p^j)
// into k equal slots. A hierarchy node with sibling index x takes slot(x)
// projected into its parent's interval, so arbitrarily many siblings fit
// at every level without re-encoding existing nodes — the property the
// paper needs for incremental service advertisement.
#pragma once

#include <cstdint>

#include "encoding/interval.hpp"

namespace sariadne::encoding {

/// Encoding parameters. The paper evaluates p = 2, k = 5.
struct EncodingParams {
    std::uint32_t p = 2;  ///< per-block exponential decay base (>= 2)
    std::uint32_t k = 5;  ///< slots per block (>= 1)

    friend bool operator==(const EncodingParams&, const EncodingParams&) noexcept =
        default;
};

/// The paper's linKinvexpP(x) value, in (0, 2].
double lin_k_invexp_p(std::uint64_t x, const EncodingParams& params = {}) noexcept;

/// Slot of sibling index x within the unit interval: half-open, pairwise
/// disjoint across all x, and of width (1/k)·(1/p^⌊x/k⌋)/2. Returns an
/// empty interval once double precision is exhausted.
Interval sibling_slot(std::uint64_t x, const EncodingParams& params = {}) noexcept;

/// Capacity analysis (§3.2): how many sibling slots are representable at
/// one level before slots collapse to zero width or stop being
/// distinguishable from their neighbours.
std::uint64_t max_entries_per_level(const EncodingParams& params = {}) noexcept;

/// Capacity analysis (§3.2): how deep a chain of first-entry children can
/// nest before the innermost interval collapses. The paper reports 462
/// levels for p = 2, k = 5 with 64-bit doubles.
std::uint64_t max_nesting_depth(const EncodingParams& params = {}) noexcept;

}  // namespace sariadne::encoding
