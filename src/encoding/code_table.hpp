// CodeTable — the offline-computed numeric codes of one classified
// ontology (§3.2). Every concept owns a set of nested intervals: one per
// occurrence in the spanning-tree unfolding of the classified DAG (a pure
// tree yields exactly one interval per concept; a concept with multiple
// direct subsumers is replicated under each, the standard treatment in
// Constantinescu & Faltings). At discovery time:
//
//   subsumes(A, B)  ⇔  some interval of B lies inside some interval of A
//   distance(A, B)  =   min depth(B-occurrence) − depth(A-occurrence)
//                       over containing pairs (equals the taxonomy's
//                       min-path level distance)
//
// Code tables carry a version tag derived from (ontology URI, ontology
// version, encoding parameters); advertisements and requests embed the tag
// so stale codes are detected after ontology evolution, per the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "encoding/interval.hpp"
#include "encoding/lin_encoding.hpp"
#include "ontology/ontology.hpp"
#include "reasoner/taxonomy.hpp"

namespace sariadne::encoding {

using onto::ConceptId;

/// One interval occurrence of a concept, tagged with its tree depth.
struct CodedInterval {
    Interval interval;
    std::int32_t depth = 0;
};

/// All interval occurrences of one concept. Equivalent concepts share the
/// same occurrence list (their representative's).
struct ConceptCode {
    std::vector<CodedInterval> occurrences;
};

class CodeTable {
public:
    CodeTable() = default;

    /// Encodes a classified ontology. Throws sariadne::Error when interval
    /// precision or the replication budget is exhausted (pathological DAGs).
    static CodeTable build(const onto::Ontology& ontology,
                           const reasoner::Taxonomy& taxonomy,
                           const EncodingParams& params = {});

    /// True iff `subsumer` subsumes `subsumee` (reflexive).
    bool subsumes(ConceptId subsumer, ConceptId subsumee) const;

    /// The paper's d() computed from codes: 0 when equivalent, minimum
    /// level distance when subsumption holds, std::nullopt otherwise.
    std::optional<int> distance(ConceptId subsumer, ConceptId subsumee) const;

    const ConceptCode& code(ConceptId id) const;

    std::size_t class_count() const noexcept { return codes_.size(); }

    /// Total interval occurrences across all concepts (replication metric).
    std::size_t total_occurrences() const noexcept { return total_occurrences_; }

    /// Version tag embedded in advertisements/requests (§3.2 consistency).
    std::uint64_t version_tag() const noexcept { return version_tag_; }

    const std::string& ontology_uri() const noexcept { return ontology_uri_; }
    std::uint32_t ontology_version() const noexcept { return ontology_version_; }
    const EncodingParams& params() const noexcept { return params_; }

    /// Replication budget: maximum interval occurrences per table.
    static constexpr std::size_t kMaxTotalOccurrences = 1u << 20;

private:
    std::vector<ConceptId> canonical_;  // concept -> representative
    std::vector<ConceptCode> codes_;    // indexed by representative id
    std::size_t total_occurrences_ = 0;
    std::uint64_t version_tag_ = 0;
    std::string ontology_uri_;
    std::uint32_t ontology_version_ = 0;
    EncodingParams params_;
};

}  // namespace sariadne::encoding
