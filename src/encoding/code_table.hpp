// CodeTable — the offline-computed numeric codes of one classified
// ontology (§3.2). Every concept owns a set of nested intervals: one per
// occurrence in the spanning-tree unfolding of the classified DAG (a pure
// tree yields exactly one interval per concept; a concept with multiple
// direct subsumers is replicated under each, the standard treatment in
// Constantinescu & Faltings). At discovery time:
//
//   subsumes(A, B)  ⇔  some interval of B lies inside some interval of A
//   distance(A, B)  =   min depth(B-occurrence) − depth(A-occurrence)
//                       over containing pairs (equals the taxonomy's
//                       min-path level distance)
//
// Storage is a CSR-packed flat layout: one contiguous CodedInterval array
// for the whole table plus a per-representative offset array, with each
// concept's occurrence slice sorted by interval start. Occurrences of one
// concept are pairwise disjoint (a concept never recurs inside its own
// unfolded subtree), so subsumes()/distance() run as O(na + nb) two-pointer
// merges over adjacent memory (see packed_contains / packed_distance in
// interval.hpp) instead of nested O(na × nb) loops.
//
// Code tables carry a version tag derived from (ontology URI, ontology
// version, encoding parameters); advertisements and requests embed the tag
// so stale codes are detected after ontology evolution, per the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "encoding/interval.hpp"
#include "encoding/lin_encoding.hpp"
#include "ontology/ontology.hpp"
#include "ontology/taxonomy.hpp"

namespace sariadne::encoding {

using onto::ConceptId;

/// All interval occurrences of one concept, viewed into the packed table.
/// Equivalent concepts share the same occurrence slice (their
/// representative's). The view stays valid as long as the table lives.
struct ConceptCode {
    std::span<const CodedInterval> occurrences;
};

class CodeTable {
public:
    CodeTable() = default;

    /// Encodes a classified ontology. Throws sariadne::Error when interval
    /// precision or the replication budget is exhausted (pathological DAGs).
    static CodeTable build(const onto::Ontology& ontology,
                           const reasoner::Taxonomy& taxonomy,
                           const EncodingParams& params = {});

    /// True iff `subsumer` subsumes `subsumee` (reflexive).
    bool subsumes(ConceptId subsumer, ConceptId subsumee) const;

    /// The paper's d() computed from codes: 0 when equivalent, minimum
    /// level distance when subsumption holds, std::nullopt otherwise.
    std::optional<int> distance(ConceptId subsumer, ConceptId subsumee) const;

    ConceptCode code(ConceptId id) const;

    /// Representative of `id`'s equivalence class (the concept whose packed
    /// slice `id` shares).
    ConceptId canonical(ConceptId id) const;

    /// The packed occurrence slice of `id`'s equivalence class, sorted by
    /// interval start. Valid while the table lives.
    std::span<const CodedInterval> occurrences_of(ConceptId id) const;

    std::size_t class_count() const noexcept { return canonical_.size(); }

    /// Total interval occurrences across all concepts (replication metric).
    std::size_t total_occurrences() const noexcept { return packed_.size(); }

    /// Version tag embedded in advertisements/requests (§3.2 consistency).
    std::uint64_t version_tag() const noexcept { return version_tag_; }

    const std::string& ontology_uri() const noexcept { return ontology_uri_; }
    std::uint32_t ontology_version() const noexcept { return ontology_version_; }
    const EncodingParams& params() const noexcept { return params_; }

    /// Replication budget: maximum interval occurrences per table.
    static constexpr std::size_t kMaxTotalOccurrences = 1u << 20;

private:
    std::vector<ConceptId> canonical_;      // concept -> representative
    std::vector<std::uint32_t> offsets_;    // representative -> packed_ range
    std::vector<CodedInterval> packed_;     // all occurrences, CSR layout
    std::uint64_t version_tag_ = 0;
    std::string ontology_uri_;
    std::uint32_t ontology_version_ = 0;
    EncodingParams params_;
};

inline ConceptId CodeTable::canonical(ConceptId id) const {
    return canonical_[id];
}

inline std::span<const CodedInterval> CodeTable::occurrences_of(
    ConceptId id) const {
    const ConceptId rep = canonical_[id];
    return std::span<const CodedInterval>(packed_.data() + offsets_[rep],
                                          offsets_[rep + 1] - offsets_[rep]);
}

}  // namespace sariadne::encoding
