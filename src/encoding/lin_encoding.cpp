#include "encoding/lin_encoding.hpp"

#include <cmath>

namespace sariadne::encoding {

namespace {

/// 1 / p^j computed by repeated division so the value degrades gracefully
/// into the subnormal range instead of calling pow() (which may flush).
double inv_pow(std::uint32_t p, std::uint64_t j) noexcept {
    double value = 1.0;
    const double base = static_cast<double>(p);
    for (std::uint64_t i = 0; i < j && value > 0.0; ++i) value /= base;
    return value;
}

}  // namespace

double lin_k_invexp_p(std::uint64_t x, const EncodingParams& params) noexcept {
    const std::uint64_t j = x / params.k;
    const std::uint64_t r = x % params.k;
    const double scale = inv_pow(params.p, j);
    return scale + static_cast<double>(r) *
                       (1.0 / static_cast<double>(params.k)) * scale;
}

Interval sibling_slot(std::uint64_t x, const EncodingParams& params) noexcept {
    const std::uint64_t j = x / params.k;
    const std::uint64_t r = x % params.k;
    const double lo = lin_k_invexp_p(x, params) / 2.0;
    // The high edge must be bit-identical to the next sibling's low edge or
    // rounding (for p other than 2) makes adjacent slots overlap by one
    // ulp. Within a block that is lin(x+1)/2 by construction; the last slot
    // of block j ends exactly at the block top 1/p^j.
    const double hi = (r + 1 == params.k) ? inv_pow(params.p, j)
                                          : lin_k_invexp_p(x + 1, params) / 2.0;
    return Interval{lo, hi};
}

std::uint64_t max_entries_per_level(const EncodingParams& params) noexcept {
    // Walk x upward until the slot collapses (zero width) or stops being
    // distinguishable from its successor (equal left edges).
    std::uint64_t x = 0;
    for (;;) {
        const Interval slot = sibling_slot(x, params);
        if (slot.empty()) return x;
        // Within a block slots ascend by `step`; precision loss shows up as
        // a successor in the same block landing on the same left edge.
        const bool same_block = (x + 1) / params.k == x / params.k;
        if (same_block && sibling_slot(x + 1, params).lo == slot.lo) return x + 1;
        ++x;
        if (x > 1u << 20) return x;  // defensive cap; never hit with sane params
    }
}

std::uint64_t max_nesting_depth(const EncodingParams& params) noexcept {
    // Chain of first-entry children: each level projects slot(0) into the
    // previous interval. Stop when the interval collapses.
    Interval current{0.0, 1.0};
    const Interval first = sibling_slot(0, params);
    std::uint64_t depth = 0;
    for (;;) {
        const Interval next = current.project(first);
        if (next.empty() || next.width() <= 0.0) return depth;
        // Also require the interval to remain distinguishable from its
        // parent (strictly smaller), else containment tests degenerate.
        if (next.lo == current.lo && next.hi == current.hi) return depth;
        current = next;
        ++depth;
        if (depth > 1u << 20) return depth;  // defensive cap
    }
}

}  // namespace sariadne::encoding
