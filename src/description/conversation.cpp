#include "description/conversation.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "support/contracts.hpp"

namespace sariadne::desc {

namespace {

/// ε-NFA with symbols interned as indices into a shared alphabet.
struct Nfa {
    struct State {
        std::vector<std::pair<std::uint32_t, std::uint32_t>> moves;  // (symbol, to)
        std::vector<std::uint32_t> epsilon;
    };

    std::vector<State> states;
    std::uint32_t start = 0;
    std::uint32_t accept = 0;

    std::uint32_t add_state() {
        states.push_back({});
        return static_cast<std::uint32_t>(states.size() - 1);
    }
};

std::uint32_t intern(std::vector<std::string>& alphabet,
                     const std::string& symbol) {
    const auto it = std::find(alphabet.begin(), alphabet.end(), symbol);
    if (it != alphabet.end()) {
        return static_cast<std::uint32_t>(it - alphabet.begin());
    }
    alphabet.push_back(symbol);
    return static_cast<std::uint32_t>(alphabet.size() - 1);
}

/// Thompson construction. Returns (start, accept) fragment in `nfa`.
std::pair<std::uint32_t, std::uint32_t> build(const Process& process, Nfa& nfa,
                                              std::vector<std::string>& alphabet) {
    switch (process.kind) {
        case ProcessKind::kAtomic: {
            const auto from = nfa.add_state();
            const auto to = nfa.add_state();
            nfa.states[from].moves.emplace_back(intern(alphabet, process.operation),
                                                to);
            return {from, to};
        }
        case ProcessKind::kSequence: {
            const auto from = nfa.add_state();
            std::uint32_t current = from;
            for (const auto& child : process.children) {
                const auto [s, a] = build(*child, nfa, alphabet);
                nfa.states[current].epsilon.push_back(s);
                current = a;
            }
            return {from, current};
        }
        case ProcessKind::kChoice: {
            const auto from = nfa.add_state();
            const auto to = nfa.add_state();
            for (const auto& child : process.children) {
                const auto [s, a] = build(*child, nfa, alphabet);
                nfa.states[from].epsilon.push_back(s);
                nfa.states[a].epsilon.push_back(to);
            }
            return {from, to};
        }
        case ProcessKind::kRepeat: {
            const auto from = nfa.add_state();
            const auto to = nfa.add_state();
            SARIADNE_ASSERT(process.children.size() == 1);
            const auto [s, a] = build(*process.children.front(), nfa, alphabet);
            nfa.states[from].epsilon.push_back(s);
            nfa.states[from].epsilon.push_back(to);
            nfa.states[a].epsilon.push_back(s);
            nfa.states[a].epsilon.push_back(to);
            return {from, to};
        }
    }
    SARIADNE_ASSERT(false);
    return {0, 0};
}

using StateSet = std::set<std::uint32_t>;

StateSet epsilon_closure(const Nfa& nfa, StateSet seed) {
    std::queue<std::uint32_t> frontier;
    for (const auto s : seed) frontier.push(s);
    while (!frontier.empty()) {
        const auto s = frontier.front();
        frontier.pop();
        for (const auto t : nfa.states[s].epsilon) {
            if (seed.insert(t).second) frontier.push(t);
        }
    }
    return seed;
}

StateSet step(const Nfa& nfa, const StateSet& from, std::uint32_t symbol) {
    StateSet out;
    for (const auto s : from) {
        for (const auto& [sym, to] : nfa.states[s].moves) {
            if (sym == symbol) out.insert(to);
        }
    }
    return epsilon_closure(nfa, std::move(out));
}

/// Searches for a client-acceptable trace the provider cannot accept.
/// Product of (client ε-closed state set, provider ε-closed state set);
/// BFS over the joint alphabet; accepting-client × non-accepting-provider
/// is a witness. Symbols outside the provider's alphabet lead the provider
/// to the dead set (∅), which is never accepting.
std::vector<std::string> search_witness(const Process& client,
                                        const Process& provider) {
    std::vector<std::string> alphabet;
    Nfa client_nfa;
    Nfa provider_nfa;
    std::tie(client_nfa.start, client_nfa.accept) =
        build(client, client_nfa, alphabet);
    std::tie(provider_nfa.start, provider_nfa.accept) =
        build(provider, provider_nfa, alphabet);

    using Product = std::pair<StateSet, StateSet>;
    std::map<Product, std::vector<std::string>> visited;
    std::queue<Product> frontier;

    const Product initial{
        epsilon_closure(client_nfa, {client_nfa.start}),
        epsilon_closure(provider_nfa, {provider_nfa.start})};
    visited.emplace(initial, std::vector<std::string>{});
    frontier.push(initial);

    while (!frontier.empty()) {
        const Product current = frontier.front();
        frontier.pop();
        const auto& trace = visited.at(current);

        const bool client_accepts = current.first.count(client_nfa.accept) > 0;
        const bool provider_accepts =
            current.second.count(provider_nfa.accept) > 0;
        if (client_accepts && !provider_accepts) {
            if (trace.empty()) return {"<empty>"};
            return trace;
        }

        for (std::uint32_t sym = 0; sym < alphabet.size(); ++sym) {
            StateSet next_client = step(client_nfa, current.first, sym);
            if (next_client.empty()) continue;  // client never drives this
            StateSet next_provider = step(provider_nfa, current.second, sym);
            Product next{std::move(next_client), std::move(next_provider)};
            if (visited.count(next)) continue;
            auto next_trace = trace;
            next_trace.push_back(alphabet[sym]);
            frontier.push(next);
            visited.emplace(std::move(next), std::move(next_trace));
        }
    }
    return {};  // contained
}

}  // namespace

bool conversation_compatible(const Process& client, const Process& provider) {
    return search_witness(client, provider).empty();
}

std::vector<std::string> incompatibility_witness(const Process& client,
                                                 const Process& provider) {
    return search_witness(client, provider);
}

}  // namespace sariadne::desc
