#include "description/wsdl.hpp"

#include <algorithm>

#include "support/errors.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace sariadne::desc {

namespace {

WsdlPart parse_part(const xml::XmlNode& node) {
    return WsdlPart{std::string(node.required_attribute("name")),
                    std::string(node.required_attribute("type"))};
}

}  // namespace

WsdlDescription parse_wsdl(const xml::XmlNode& root) {
    if (root.name() != "wsdl") {
        throw ParseError("expected <wsdl> root element, got <" + root.name() + ">");
    }
    WsdlDescription wsdl;
    wsdl.service_name = root.required_attribute("name");
    for (const auto& node : root.children()) {
        if (node.name() != "operation") {
            throw ParseError("unexpected element <" + node.name() +
                             "> inside <wsdl>");
        }
        WsdlOperation op;
        op.name = node.required_attribute("name");
        for (const auto& part : node.children()) {
            if (part.name() == "input") {
                op.inputs.push_back(parse_part(part));
            } else if (part.name() == "output") {
                op.outputs.push_back(parse_part(part));
            } else {
                throw ParseError("unexpected element <" + part.name() +
                                 "> inside <operation>");
            }
        }
        wsdl.operations.push_back(std::move(op));
    }
    return wsdl;
}

WsdlDescription parse_wsdl(std::string_view xml_text) {
    return parse_wsdl(xml::parse(xml_text).root);
}

std::string serialize_wsdl(const WsdlDescription& wsdl) {
    xml::XmlNode root("wsdl");
    root.set_attribute("name", wsdl.service_name);
    for (const auto& op : wsdl.operations) {
        xml::XmlNode node("operation");
        node.set_attribute("name", op.name);
        for (const auto& part : op.inputs) {
            xml::XmlNode input("input");
            input.set_attribute("name", part.name);
            input.set_attribute("type", part.type);
            node.add_child(std::move(input));
        }
        for (const auto& part : op.outputs) {
            xml::XmlNode output("output");
            output.set_attribute("name", part.name);
            output.set_attribute("type", part.type);
            node.add_child(std::move(output));
        }
        root.add_child(std::move(node));
    }
    return xml::write(root);
}

bool operation_conforms(const WsdlOperation& provided,
                        const WsdlOperation& required) {
    if (provided.name != required.name) return false;
    const auto has_part = [](const std::vector<WsdlPart>& parts,
                             const WsdlPart& wanted) {
        return std::find(parts.begin(), parts.end(), wanted) != parts.end();
    };
    for (const auto& part : required.inputs) {
        if (!has_part(provided.inputs, part)) return false;
    }
    for (const auto& part : required.outputs) {
        if (!has_part(provided.outputs, part)) return false;
    }
    return true;
}

bool wsdl_conforms(const WsdlDescription& provided,
                   const WsdlDescription& required) {
    for (const auto& wanted : required.operations) {
        const bool found =
            std::any_of(provided.operations.begin(), provided.operations.end(),
                        [&](const WsdlOperation& op) {
                            return operation_conforms(op, wanted);
                        });
        if (!found) return false;
    }
    return true;
}

}  // namespace sariadne::desc
