// Service process models (§2.1: the OWL-S "process model is a
// representation of the service conversation, i.e., the interaction
// protocol between a service and its client"). A process is a tree over
//   atomic(op)   — one operation invocation
//   sequence     — children in order
//   choice       — exactly one child
//   repeat       — child zero or more times
// which denotes a regular language over operation names. XML shape
// (child of <service> or <request>):
//
//   <process>
//     <sequence>
//       <atomic op="browse"/>
//       <repeat><atomic op="addItem"/></repeat>
//       <choice><atomic op="checkout"/><atomic op="cancel"/></choice>
//     </sequence>
//   </process>
//
// conversation.hpp decides whether every conversation a client may drive
// is realizable by a provider's process (regular-language containment).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "xml/node.hpp"

namespace sariadne::desc {

enum class ProcessKind : std::uint8_t {
    kAtomic,
    kSequence,
    kChoice,
    kRepeat,
};

/// Immutable process tree node. Root-owned via unique_ptr; value-like
/// deep copy provided because descriptions are copied around directories.
struct Process {
    ProcessKind kind = ProcessKind::kAtomic;
    std::string operation;                    ///< kAtomic only
    std::vector<std::unique_ptr<Process>> children;

    Process() = default;
    Process(const Process& other) { *this = other; }
    Process& operator=(const Process& other);
    Process(Process&&) noexcept = default;
    Process& operator=(Process&&) noexcept = default;

    static Process atomic(std::string op);
    static Process sequence(std::vector<Process> parts);
    static Process choice(std::vector<Process> alternatives);
    static Process repeat(Process body);

    /// All operation names appearing in the tree (the alphabet).
    std::vector<std::string> alphabet() const;
};

/// Parses a <process> element. Throws ParseError on malformed trees.
Process parse_process(const xml::XmlNode& node);

/// Serializes to a <process> element.
xml::XmlNode serialize_process(const Process& process);

}  // namespace sariadne::desc
