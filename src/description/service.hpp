// Amigo-S service descriptions and service requests. A description couples
// the service profile (identity + capabilities + QoS/context attributes)
// with a grounding (how to invoke it) and the middleware the service runs
// on — the pervasive-environment specifics Amigo-S adds over OWL-S. A
// request is the client-side mirror: the set of capabilities sought.
#pragma once

#include <string>
#include <vector>

#include <optional>

#include "description/capability.hpp"
#include "description/process.hpp"

namespace sariadne::desc {

/// Numeric quality-of-service attribute (latency budget, battery draw...).
struct QosAttribute {
    std::string name;
    double value = 0.0;
};

/// Free-form context attribute (location, user, modality...).
struct ContextAttribute {
    std::string name;
    std::string value;
};

/// Invocation information (the OWL-S grounding role). Enough structure for
/// examples and protocol payloads; invocation itself is out of scope.
struct Grounding {
    std::string protocol;  ///< e.g. "SOAP", "UPnP"
    std::string address;   ///< endpoint URL
};

struct ServiceProfile {
    std::string service_name;
    std::string provider;
    std::vector<Capability> capabilities;  ///< provided and required mixed

    std::vector<QosAttribute> qos;
    std::vector<ContextAttribute> context;

    /// Capabilities of the given kind, in declaration order.
    std::vector<const Capability*> capabilities_of(CapabilityKind kind) const {
        std::vector<const Capability*> result;
        for (const auto& cap : capabilities) {
            if (cap.kind == kind) result.push_back(&cap);
        }
        return result;
    }
};

struct ServiceDescription {
    ServiceProfile profile;
    Grounding grounding;
    std::string middleware;  ///< underlying platform (e.g. "WS", "UPnP", "RMI")
    /// Interaction protocol of the service (the OWL-S process model role).
    std::optional<Process> process;
};

/// Numeric QoS constraint on candidate services: the advertised attribute
/// `name` must exist and lie within [min_value, max_value]. Part of the
/// QoS-awareness Amigo-S adds over OWL-S (§2.2 of the paper).
struct QosConstraint {
    std::string name;
    double min_value = -1e300;
    double max_value = 1e300;

    bool admits(double value) const noexcept {
        return value >= min_value && value <= max_value;
    }
};

/// Context constraint: the advertised context attribute `name` must equal
/// `value` exactly (e.g. location = livingRoom).
struct ContextConstraint {
    std::string name;
    std::string value;
};

/// A discovery request: the capabilities a client seeks, plus optional
/// QoS/context constraints every candidate service must satisfy. Matching
/// treats each capability as the paper's C2 (required capability).
struct ServiceRequest {
    std::string requester;
    std::vector<Capability> capabilities;
    std::vector<QosConstraint> qos_constraints;
    std::vector<ContextConstraint> context_constraints;
    /// The conversation the client intends to drive; a provider is
    /// conversation-compatible when its process can realize it (see
    /// conversation.hpp).
    std::optional<Process> process;
};

/// True iff `profile` satisfies every constraint in `request`: each QoS
/// constraint admits the advertised numeric value, each context constraint
/// matches the advertised string value; an absent attribute fails its
/// constraint.
bool satisfies_constraints(const ServiceProfile& profile,
                           const ServiceRequest& request);

}  // namespace sariadne::desc
