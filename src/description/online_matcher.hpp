// OnlineMatcher — the unoptimized matching pipeline the paper's §2.4 cost
// analysis measures (Figure 2). Every match of two capabilities performs
// the full three-step process *online*:
//
//   1. parse the ontology documents the capabilities reference,
//   2. load and classify them with a semantic reasoner,
//   3. query subsumption relationships between the paired concepts.
//
// Nothing is cached between matches, exactly like a discovery protocol
// that ships raw OWL to a DL reasoner per request. The timing split it
// reports (load+classify vs query) is what motivates the paper's offline
// encoding: the published measurements attribute 76-78 % of 4-5 s matches
// to step 2.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "description/capability.hpp"
#include "matching/match.hpp"
#include "reasoner/reasoner.hpp"

namespace sariadne::matching {

/// Wall-clock breakdown of the most recent online match.
struct OnlineMatchTiming {
    double parse_ms = 0;          ///< step 1
    double load_classify_ms = 0;  ///< step 2
    double query_ms = 0;          ///< step 3
    std::uint64_t subsumption_queries = 0;

    double total_ms() const noexcept {
        return parse_ms + load_classify_ms + query_ms;
    }
};

class OnlineMatcher {
public:
    /// `ontology_documents`: the raw XML of every ontology the capabilities
    /// may reference. `engine`: the reasoner to classify with (owned).
    OnlineMatcher(std::vector<std::string> ontology_documents,
                  std::unique_ptr<reasoner::Reasoner> engine);

    ~OnlineMatcher();
    OnlineMatcher(OnlineMatcher&&) noexcept;
    OnlineMatcher& operator=(OnlineMatcher&&) noexcept;

    /// Matches a provided against a required capability *described by
    /// qualified names*, running the full parse/classify/query pipeline.
    /// Capabilities are given unresolved because resolution requires the
    /// registry this call builds — that is the point of the exercise.
    MatchOutcome match(const desc::Capability& provided,
                       const desc::Capability& required);

    const OnlineMatchTiming& last_timing() const noexcept { return timing_; }

    reasoner::Reasoner& engine() noexcept { return *engine_; }

private:
    std::vector<std::string> documents_;
    std::unique_ptr<reasoner::Reasoner> engine_;
    OnlineMatchTiming timing_;
};

}  // namespace sariadne::matching
