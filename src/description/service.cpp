#include "description/service.hpp"

namespace sariadne::desc {

bool satisfies_constraints(const ServiceProfile& profile,
                           const ServiceRequest& request) {
    for (const QosConstraint& constraint : request.qos_constraints) {
        bool admitted = false;
        for (const QosAttribute& attr : profile.qos) {
            if (attr.name == constraint.name) {
                admitted = constraint.admits(attr.value);
                break;
            }
        }
        if (!admitted) return false;
    }
    for (const ContextConstraint& constraint : request.context_constraints) {
        bool admitted = false;
        for (const ContextAttribute& attr : profile.context) {
            if (attr.name == constraint.name) {
                admitted = attr.value == constraint.value;
                break;
            }
        }
        if (!admitted) return false;
    }
    return true;
}

}  // namespace sariadne::desc
