#include "description/resolved.hpp"

#include "reasoner/knowledge_base.hpp"

namespace sariadne::desc {

ResolvedCapability resolve_capability(const Capability& capability,
                                      const onto::OntologyRegistry& registry,
                                      std::string service_name) {
    ResolvedCapability resolved;
    resolved.name = capability.name;
    resolved.service_name = std::move(service_name);
    resolved.kind = capability.kind;
    resolved.code_version = capability.code_version;

    const auto resolve_into = [&](const std::string& qname,
                                  std::vector<ConceptRef>& out) {
        const ConceptRef ref = registry.resolve(qname);
        out.push_back(ref);
        resolved.ontologies.insert(ref.ontology);
    };

    for (const auto& param : capability.inputs) {
        resolve_into(param.concept_qname, resolved.inputs);
    }
    for (const auto& param : capability.outputs) {
        resolve_into(param.concept_qname, resolved.outputs);
    }
    if (!capability.category_qname.empty()) {
        resolve_into(capability.category_qname, resolved.properties);
    }
    for (const auto& prop : capability.property_qnames) {
        resolve_into(prop, resolved.properties);
    }
    return resolved;
}

std::vector<ResolvedCapability> resolve_provided(
    const ServiceDescription& service, const onto::OntologyRegistry& registry) {
    std::vector<ResolvedCapability> result;
    for (const auto& cap : service.profile.capabilities) {
        if (cap.kind != CapabilityKind::kProvided) continue;
        result.push_back(
            resolve_capability(cap, registry, service.profile.service_name));
    }
    return result;
}

std::vector<ResolvedCapability> resolve_request(
    const ServiceRequest& request, const onto::OntologyRegistry& registry) {
    std::vector<ResolvedCapability> result;
    result.reserve(request.capabilities.size());
    for (const auto& cap : request.capabilities) {
        result.push_back(resolve_capability(cap, registry, request.requester));
    }
    return result;
}

std::vector<std::string> ontology_uris(const ResolvedCapability& capability,
                                       const onto::OntologyRegistry& registry) {
    std::vector<std::string> uris;
    uris.reserve(capability.ontologies.size());
    for (const OntologyIndex index : capability.ontologies) {
        uris.push_back(registry.at(index).uri());
    }
    return uris;
}

void attach_code_signature(ResolvedCapability& capability,
                           encoding::KnowledgeBase& kb) {
    CodeSignature signature;
    std::size_t total = 0;
    for (const auto* role :
         {&capability.inputs, &capability.outputs, &capability.properties}) {
        for (const ConceptRef ref : *role) {
            total += kb.code_table(ref.ontology).occurrences_of(ref.concept_id)
                         .size();
        }
    }
    signature.intervals.reserve(total);

    const auto pack_role = [&](const std::vector<ConceptRef>& role,
                               std::vector<CodedConceptSpan>& out) {
        out.reserve(role.size());
        for (const ConceptRef ref : role) {
            const encoding::CodeTable& table = kb.code_table(ref.ontology);
            const auto occurrences = table.occurrences_of(ref.concept_id);
            CodedConceptSpan span;
            span.ontology = ref.ontology;
            span.canonical = table.canonical(ref.concept_id);
            span.begin = static_cast<std::uint32_t>(signature.intervals.size());
            span.count = static_cast<std::uint32_t>(occurrences.size());
            signature.intervals.insert(signature.intervals.end(),
                                       occurrences.begin(), occurrences.end());
            out.push_back(span);
        }
    };
    pack_role(capability.inputs, signature.inputs);
    pack_role(capability.outputs, signature.outputs);
    pack_role(capability.properties, signature.properties);

    signature.environment_tag = kb.environment_tag(capability.ontologies);
    signature.global_tag = kb.environment_tag();
    signature.valid = true;
    capability.signature = std::move(signature);
}

void attach_code_signatures(std::vector<ResolvedCapability>& capabilities,
                            encoding::KnowledgeBase& kb) {
    for (auto& capability : capabilities) attach_code_signature(capability, kb);
}

std::vector<ResolvedCapability> resolve_provided(
    const ServiceDescription& service, encoding::KnowledgeBase& kb) {
    auto resolved = resolve_provided(service, kb.registry());
    attach_code_signatures(resolved, kb);
    return resolved;
}

std::vector<ResolvedCapability> resolve_request(const ServiceRequest& request,
                                                encoding::KnowledgeBase& kb) {
    auto resolved = resolve_request(request, kb.registry());
    attach_code_signatures(resolved, kb);
    return resolved;
}

}  // namespace sariadne::desc
