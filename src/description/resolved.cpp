#include "description/resolved.hpp"

namespace sariadne::desc {

ResolvedCapability resolve_capability(const Capability& capability,
                                      const onto::OntologyRegistry& registry,
                                      std::string service_name) {
    ResolvedCapability resolved;
    resolved.name = capability.name;
    resolved.service_name = std::move(service_name);
    resolved.kind = capability.kind;
    resolved.code_version = capability.code_version;

    const auto resolve_into = [&](const std::string& qname,
                                  std::vector<ConceptRef>& out) {
        const ConceptRef ref = registry.resolve(qname);
        out.push_back(ref);
        resolved.ontologies.insert(ref.ontology);
    };

    for (const auto& param : capability.inputs) {
        resolve_into(param.concept_qname, resolved.inputs);
    }
    for (const auto& param : capability.outputs) {
        resolve_into(param.concept_qname, resolved.outputs);
    }
    if (!capability.category_qname.empty()) {
        resolve_into(capability.category_qname, resolved.properties);
    }
    for (const auto& prop : capability.property_qnames) {
        resolve_into(prop, resolved.properties);
    }
    return resolved;
}

std::vector<ResolvedCapability> resolve_provided(
    const ServiceDescription& service, const onto::OntologyRegistry& registry) {
    std::vector<ResolvedCapability> result;
    for (const auto& cap : service.profile.capabilities) {
        if (cap.kind != CapabilityKind::kProvided) continue;
        result.push_back(
            resolve_capability(cap, registry, service.profile.service_name));
    }
    return result;
}

std::vector<ResolvedCapability> resolve_request(
    const ServiceRequest& request, const onto::OntologyRegistry& registry) {
    std::vector<ResolvedCapability> result;
    result.reserve(request.capabilities.size());
    for (const auto& cap : request.capabilities) {
        result.push_back(resolve_capability(cap, registry, request.requester));
    }
    return result;
}

std::vector<std::string> ontology_uris(const ResolvedCapability& capability,
                                       const onto::OntologyRegistry& registry) {
    std::vector<std::string> uris;
    uris.reserve(capability.ontologies.size());
    for (const OntologyIndex index : capability.ontologies) {
        uris.push_back(registry.at(index).uri());
    }
    return uris;
}

}  // namespace sariadne::desc
