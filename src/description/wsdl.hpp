// WSDL subset for the syntactic baseline (original Ariadne). A service is
// a set of operations whose message parts are typed by *strings*; two
// descriptions match only by exact syntactic conformance of operation
// signatures — precisely the limitation the paper's semantic matching
// removes. Document shape:
//
//   <wsdl name="MediaServer">
//     <operation name="getVideoStream">
//       <input  name="title"  type="xs:string"/>
//       <output name="stream" type="tns:mediaStream"/>
//     </operation>
//   </wsdl>
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/result.hpp"
#include "xml/node.hpp"

namespace sariadne::desc {

struct WsdlPart {
    std::string name;
    std::string type;

    friend bool operator==(const WsdlPart&, const WsdlPart&) = default;
};

struct WsdlOperation {
    std::string name;
    std::vector<WsdlPart> inputs;
    std::vector<WsdlPart> outputs;
};

struct WsdlDescription {
    std::string service_name;
    std::vector<WsdlOperation> operations;
};

WsdlDescription parse_wsdl(std::string_view xml_text);
WsdlDescription parse_wsdl(const xml::XmlNode& root);
std::string serialize_wsdl(const WsdlDescription& wsdl);

/// Non-throwing variant for wire-facing callers.
Result<WsdlDescription> try_parse_wsdl(std::string_view xml_text) noexcept;

/// Syntactic operation conformance: same operation name, and every input
/// and output part of `required` present in `provided` with exactly equal
/// name and type strings.
bool operation_conforms(const WsdlOperation& provided,
                        const WsdlOperation& required);

/// Syntactic service conformance: every required operation conforms to
/// some provided operation.
bool wsdl_conforms(const WsdlDescription& provided,
                   const WsdlDescription& required);

}  // namespace sariadne::desc
