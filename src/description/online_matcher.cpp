#include "description/online_matcher.hpp"

#include "description/resolved.hpp"
#include "ontology/loader.hpp"
#include "support/stopwatch.hpp"

namespace sariadne::matching {

namespace {

/// Oracle over freshly classified taxonomies, one per registered ontology.
class FreshTaxonomyOracle final : public DistanceOracle {
public:
    explicit FreshTaxonomyOracle(std::vector<reasoner::Taxonomy> taxonomies)
        : taxonomies_(std::move(taxonomies)) {}

    std::optional<int> distance(ConceptRef subsumer, ConceptRef subsumee) override {
        ++queries_;
        if (subsumer.ontology != subsumee.ontology) return std::nullopt;
        return taxonomies_[subsumer.ontology].distance(subsumer.concept_id,
                                                       subsumee.concept_id);
    }

private:
    std::vector<reasoner::Taxonomy> taxonomies_;
};

}  // namespace

OnlineMatcher::OnlineMatcher(std::vector<std::string> ontology_documents,
                             std::unique_ptr<reasoner::Reasoner> engine)
    : documents_(std::move(ontology_documents)), engine_(std::move(engine)) {}

OnlineMatcher::~OnlineMatcher() = default;
OnlineMatcher::OnlineMatcher(OnlineMatcher&&) noexcept = default;
OnlineMatcher& OnlineMatcher::operator=(OnlineMatcher&&) noexcept = default;

MatchOutcome OnlineMatcher::match(const desc::Capability& provided,
                                  const desc::Capability& required) {
    timing_ = OnlineMatchTiming{};

    // Step 1: parse ontology documents (every time — nothing is cached).
    Stopwatch stopwatch;
    std::vector<onto::Ontology> parsed;
    parsed.reserve(documents_.size());
    for (const std::string& doc : documents_) {
        parsed.push_back(onto::load_ontology(doc));
    }
    timing_.parse_ms = stopwatch.elapsed_ms();

    // Step 2: load into a fresh registry and classify with the reasoner.
    stopwatch.restart();
    onto::OntologyRegistry registry;
    for (auto& ontology : parsed) registry.add(std::move(ontology));
    std::vector<reasoner::Taxonomy> taxonomies;
    taxonomies.reserve(registry.size());
    for (onto::OntologyIndex i = 0; i < registry.size(); ++i) {
        taxonomies.push_back(engine_->classify(registry.at(i)));
    }
    timing_.load_classify_ms = stopwatch.elapsed_ms();

    // Step 3: resolve and query subsumption between the paired concepts.
    stopwatch.restart();
    const desc::ResolvedCapability resolved_provided =
        desc::resolve_capability(provided, registry);
    const desc::ResolvedCapability resolved_required =
        desc::resolve_capability(required, registry);
    FreshTaxonomyOracle oracle(std::move(taxonomies));
    const MatchOutcome outcome =
        match_capability(resolved_provided, resolved_required, oracle);
    timing_.query_ms = stopwatch.elapsed_ms();
    timing_.subsumption_queries = oracle.queries();
    return outcome;
}

}  // namespace sariadne::matching
