// Resolution of Amigo-S documents into ResolvedCapability (see
// encoding/resolved.hpp for the data types): qualified concept names are
// looked up against an ontology registry once at publish (or
// request-build) time, never during matching. The KnowledgeBase-taking
// overloads additionally attach flat-layout code signatures for the
// batched matching kernel.
#pragma once

#include <string>
#include <vector>

#include "description/service.hpp"
#include "encoding/resolved.hpp"

namespace sariadne::encoding {
class KnowledgeBase;
}

namespace sariadne::desc {

/// Resolves every concept mention. Throws LookupError on unknown ontology
/// URIs or class names. `service_name` tags the result for diagnostics.
ResolvedCapability resolve_capability(const Capability& capability,
                                      const onto::OntologyRegistry& registry,
                                      std::string service_name = {});

/// Resolves all provided capabilities of a service description.
std::vector<ResolvedCapability> resolve_provided(
    const ServiceDescription& service, const onto::OntologyRegistry& registry);

/// Resolves all capabilities of a request (all are required).
std::vector<ResolvedCapability> resolve_request(
    const ServiceRequest& request, const onto::OntologyRegistry& registry);

/// The URIs of the ontologies a resolved capability draws from, in
/// registry order — used to key Bloom-filter summaries.
std::vector<std::string> ontology_uris(const ResolvedCapability& capability,
                                       const onto::OntologyRegistry& registry);

/// Builds `capability.signature` from the knowledge base's current code
/// tables (building tables lazily as needed). Overwrites any previous
/// signature; the result carries the knowledge base's environment tag for
/// the capability's ontology set.
void attach_code_signature(ResolvedCapability& capability,
                           encoding::KnowledgeBase& kb);

/// attach_code_signature over a batch.
void attach_code_signatures(std::vector<ResolvedCapability>& capabilities,
                            encoding::KnowledgeBase& kb);

/// Resolve + attach signatures in one step (the publish-time path).
std::vector<ResolvedCapability> resolve_provided(
    const ServiceDescription& service, encoding::KnowledgeBase& kb);

/// Resolve + attach signatures in one step (the request path).
std::vector<ResolvedCapability> resolve_request(const ServiceRequest& request,
                                                encoding::KnowledgeBase& kb);

}  // namespace sariadne::desc
