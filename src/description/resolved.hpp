// ResolvedCapability — a capability whose qualified concept names have been
// resolved against an ontology registry into ConceptRefs, with the set of
// ontologies it draws from precomputed. This is the form the matchers and
// directory DAGs operate on: resolution happens once at publish (or
// request-build) time, never during matching.
#pragma once

#include <string>
#include <vector>

#include "description/service.hpp"
#include "ontology/registry.hpp"
#include "support/flat_set.hpp"

namespace sariadne::desc {

using onto::ConceptRef;
using onto::OntologyIndex;

struct ResolvedCapability {
    std::string name;           ///< capability name (diagnostics)
    std::string service_name;   ///< owning service (empty for requests)
    CapabilityKind kind = CapabilityKind::kProvided;

    std::vector<ConceptRef> inputs;
    std::vector<ConceptRef> outputs;
    /// Properties with the category folded in (paper §2.3: the category is
    /// matched as one of the required/provided properties).
    std::vector<ConceptRef> properties;

    /// Ontologies referenced by any concept above — the DAG index key and
    /// the Bloom-filter summary unit (§3.3, §4).
    FlatSet<OntologyIndex> ontologies;

    std::uint64_t code_version = 0;
};

/// Resolves every concept mention. Throws LookupError on unknown ontology
/// URIs or class names. `service_name` tags the result for diagnostics.
ResolvedCapability resolve_capability(const Capability& capability,
                                      const onto::OntologyRegistry& registry,
                                      std::string service_name = {});

/// Resolves all provided capabilities of a service description.
std::vector<ResolvedCapability> resolve_provided(
    const ServiceDescription& service, const onto::OntologyRegistry& registry);

/// Resolves all capabilities of a request (all are required).
std::vector<ResolvedCapability> resolve_request(
    const ServiceRequest& request, const onto::OntologyRegistry& registry);

/// The URIs of the ontologies a resolved capability draws from, in
/// registry order — used to key Bloom-filter summaries.
std::vector<std::string> ontology_uris(const ResolvedCapability& capability,
                                       const onto::OntologyRegistry& registry);

}  // namespace sariadne::desc
