// Conversation compatibility: can a provider's process realize every
// conversation the client may attempt? Process trees denote regular
// languages over operation names, so the question is language containment
//   L(client) ⊆ L(provider)
// decided exactly: Thompson construction to an ε-NFA, ε-closure subset
// construction to determinize the provider, and an emptiness check of
// L(client) ∩ complement(L(provider)) via a product search. Sizes are
// conversation-protocol sized (tens of states), so the subset construction
// is nowhere near its worst case.
#pragma once

#include "description/process.hpp"

namespace sariadne::desc {

/// True iff every operation sequence the client process may produce is
/// accepted by the provider process.
bool conversation_compatible(const Process& client, const Process& provider);

/// True iff the two processes denote exactly the same language.
inline bool conversation_equivalent(const Process& a, const Process& b) {
    return conversation_compatible(a, b) && conversation_compatible(b, a);
}

/// A counterexample conversation: a sequence of operations the client may
/// drive that the provider cannot accept; empty when compatible (note an
/// *empty trace* counterexample is reported as {"<empty>"}).
std::vector<std::string> incompatibility_witness(const Process& client,
                                                 const Process& provider);

}  // namespace sariadne::desc
