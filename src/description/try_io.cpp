// lint:wire-decode — non-throwing description decoders: a directory fed a
// malformed Amigo-S or WSDL document over the wire gets a classified
// Result error, never an exception unwinding its event loop.
#include "description/amigos_io.hpp"
#include "description/wsdl.hpp"
#include "support/catching.hpp"

namespace sariadne::desc {

Result<ServiceDescription> try_parse_service(
    std::string_view xml_text) noexcept {
    return support::catching<ServiceDescription>(
        [&] { return parse_service(xml_text); });
}

Result<ServiceRequest> try_parse_request(std::string_view xml_text) noexcept {
    return support::catching<ServiceRequest>(
        [&] { return parse_request(xml_text); });
}

Result<WsdlDescription> try_parse_wsdl(std::string_view xml_text) noexcept {
    return support::catching<WsdlDescription>(
        [&] { return parse_wsdl(xml_text); });
}

}  // namespace sariadne::desc
