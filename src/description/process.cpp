#include "description/process.hpp"

#include <algorithm>

#include "support/contracts.hpp"
#include "support/errors.hpp"

namespace sariadne::desc {

Process& Process::operator=(const Process& other) {
    if (this == &other) return *this;
    kind = other.kind;
    operation = other.operation;
    children.clear();
    children.reserve(other.children.size());
    for (const auto& child : other.children) {
        children.push_back(std::make_unique<Process>(*child));
    }
    return *this;
}

Process Process::atomic(std::string op) {
    SARIADNE_EXPECTS(!op.empty());
    Process p;
    p.kind = ProcessKind::kAtomic;
    p.operation = std::move(op);
    return p;
}

Process Process::sequence(std::vector<Process> parts) {
    Process p;
    p.kind = ProcessKind::kSequence;
    for (auto& part : parts) {
        p.children.push_back(std::make_unique<Process>(std::move(part)));
    }
    return p;
}

Process Process::choice(std::vector<Process> alternatives) {
    SARIADNE_EXPECTS(!alternatives.empty());
    Process p;
    p.kind = ProcessKind::kChoice;
    for (auto& alt : alternatives) {
        p.children.push_back(std::make_unique<Process>(std::move(alt)));
    }
    return p;
}

Process Process::repeat(Process body) {
    Process p;
    p.kind = ProcessKind::kRepeat;
    p.children.push_back(std::make_unique<Process>(std::move(body)));
    return p;
}

namespace {

void collect_alphabet(const Process& process, std::vector<std::string>& out) {
    if (process.kind == ProcessKind::kAtomic) {
        out.push_back(process.operation);
        return;
    }
    for (const auto& child : process.children) collect_alphabet(*child, out);
}

Process parse_node(const xml::XmlNode& node) {
    if (node.name() == "atomic") {
        return Process::atomic(std::string(node.required_attribute("op")));
    }
    if (node.name() == "sequence" || node.name() == "choice" ||
        node.name() == "repeat") {
        std::vector<Process> parts;
        for (const auto& child : node.children()) {
            parts.push_back(parse_node(child));
        }
        if (node.name() == "sequence") return Process::sequence(std::move(parts));
        if (node.name() == "choice") {
            if (parts.empty()) {
                throw ParseError("<choice> needs at least one alternative");
            }
            return Process::choice(std::move(parts));
        }
        if (parts.size() != 1) {
            throw ParseError("<repeat> needs exactly one child");
        }
        return Process::repeat(std::move(parts.front()));
    }
    throw ParseError("unknown process element <" + node.name() + ">");
}

xml::XmlNode serialize_node(const Process& process) {
    switch (process.kind) {
        case ProcessKind::kAtomic: {
            xml::XmlNode node("atomic");
            node.set_attribute("op", process.operation);
            return node;
        }
        case ProcessKind::kSequence:
        case ProcessKind::kChoice:
        case ProcessKind::kRepeat: {
            xml::XmlNode node(process.kind == ProcessKind::kSequence ? "sequence"
                              : process.kind == ProcessKind::kChoice ? "choice"
                                                                     : "repeat");
            for (const auto& child : process.children) {
                node.add_child(serialize_node(*child));
            }
            return node;
        }
    }
    throw Error("corrupt process node");
}

}  // namespace

std::vector<std::string> Process::alphabet() const {
    std::vector<std::string> out;
    collect_alphabet(*this, out);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

Process parse_process(const xml::XmlNode& node) {
    if (node.name() != "process") {
        throw ParseError("expected <process> element, got <" + node.name() + ">");
    }
    if (node.children().size() != 1) {
        throw ParseError("<process> needs exactly one root child");
    }
    return parse_node(node.children().front());
}

xml::XmlNode serialize_process(const Process& process) {
    xml::XmlNode node("process");
    node.add_child(serialize_node(process));
    return node;
}

}  // namespace sariadne::desc
