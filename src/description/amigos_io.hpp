// Amigo-S XML (de)serialization. Document shapes:
//
//   <service name="MediaServer" provider="acme" middleware="WS">
//     <grounding protocol="SOAP" address="http://host/media"/>
//     <capability name="SendDigitalStream" kind="provided" codeVersion="...">
//       <category concept="http://o/servers#DigitalServer"/>
//       <input  name="resource" concept="http://o/media#DigitalResource"/>
//       <output name="stream"   concept="http://o/media#Stream"/>
//       <property concept="http://o/qos#Streaming"/>
//       <includes name="ProvideGame"/>
//     </capability>
//     <qos name="latencyMs" value="15"/>
//     <context name="location" value="livingRoom"/>
//   </service>
//
//   <request requester="pda-7">
//     <capability name="GetVideoStream"> ... as above ... </capability>
//   </request>
//
// Parsing these documents is exactly the "time to parse" component of the
// paper's Figures 7 and 8.
#pragma once

#include <string>
#include <string_view>

#include "description/service.hpp"
#include "support/result.hpp"
#include "xml/node.hpp"

namespace sariadne::desc {

ServiceDescription parse_service(std::string_view xml_text);
ServiceDescription parse_service(const xml::XmlNode& root);

ServiceRequest parse_request(std::string_view xml_text);
ServiceRequest parse_request(const xml::XmlNode& root);

/// Non-throwing variants for wire-facing callers: classified ErrorInfo
/// (kParse for malformed documents/values) instead of thrown errors.
Result<ServiceDescription> try_parse_service(
    std::string_view xml_text) noexcept;
Result<ServiceRequest> try_parse_request(std::string_view xml_text) noexcept;

std::string serialize_service(const ServiceDescription& service);
std::string serialize_request(const ServiceRequest& request);

}  // namespace sariadne::desc
