// The Amigo-S capability model (§2.2). A capability is a specific
// functionality a service provides or requires, described as a semantic
// concept (its service category) plus sets of semantic inputs, outputs and
// additional properties — all referencing ontology concepts by qualified
// name ("<ontology-uri>#<LocalName>"). Unlike plain OWL-S profiles,
// capabilities are first-class: one service may expose several, possibly
// dependent ones (`includes` records composition, e.g. SendDigitalStream
// includes ProvideGame in the paper's Figure 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "encoding/capability_kind.hpp"

namespace sariadne::desc {

/// A named input or output parameter typed by an ontology concept.
struct Parameter {
    std::string name;               ///< parameter label (informational)
    std::string concept_qname;      ///< "uri#Concept"
};

struct Capability {
    std::string name;
    CapabilityKind kind = CapabilityKind::kProvided;

    /// Service category concept ("uri#VideoServer"). The paper folds the
    /// category into the property set for matching; we keep it distinguished
    /// in the model and fold it during resolution.
    std::string category_qname;

    std::vector<Parameter> inputs;
    std::vector<Parameter> outputs;

    /// Additional semantic properties beyond the category (non-functional
    /// requirements, etc.).
    std::vector<std::string> property_qnames;

    /// Names of simpler capabilities of the same service this one includes.
    std::vector<std::string> includes;

    /// Encoding version tag the codes in this description were computed
    /// against (0 = unspecified). See CodeTable::version_tag().
    std::uint64_t code_version = 0;
};

}  // namespace sariadne::desc
