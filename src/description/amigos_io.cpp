#include "description/amigos_io.hpp"

#include <charconv>
#include <cmath>

#include "support/errors.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace sariadne::desc {

namespace {

std::uint64_t parse_u64(std::string_view text, std::string_view what) {
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
        throw ParseError("malformed " + std::string(what) + " '" +
                         std::string(text) + "'");
    }
    return value;
}

double parse_double(std::string_view text, std::string_view what) {
    double value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
        throw ParseError("malformed " + std::string(what) + " '" +
                         std::string(text) + "'");
    }
    // from_chars accepts "inf"/"nan" spellings; a NaN or infinite QoS
    // value would poison every constraint comparison downstream, so the
    // document is rejected here with a positioned error instead.
    if (!std::isfinite(value)) {
        throw ParseError("non-finite " + std::string(what) + " '" +
                         std::string(text) + "'");
    }
    return value;
}

Capability parse_capability(const xml::XmlNode& node) {
    Capability cap;
    cap.name = node.required_attribute("name");
    const std::string_view kind = node.attribute_or("kind", "provided");
    if (kind == "provided") {
        cap.kind = CapabilityKind::kProvided;
    } else if (kind == "required") {
        cap.kind = CapabilityKind::kRequired;
    } else {
        throw ParseError("unknown capability kind '" + std::string(kind) + "'");
    }
    if (const auto version = node.attribute("codeVersion")) {
        cap.code_version = parse_u64(*version, "codeVersion");
    }
    for (const auto& item : node.children()) {
        if (item.name() == "category") {
            if (!cap.category_qname.empty()) {
                throw ParseError("capability '" + cap.name +
                                 "' has multiple <category> elements");
            }
            cap.category_qname = item.required_attribute("concept");
        } else if (item.name() == "input") {
            cap.inputs.push_back(
                Parameter{std::string(item.attribute_or("name", "")),
                          std::string(item.required_attribute("concept"))});
        } else if (item.name() == "output") {
            cap.outputs.push_back(
                Parameter{std::string(item.attribute_or("name", "")),
                          std::string(item.required_attribute("concept"))});
        } else if (item.name() == "property") {
            cap.property_qnames.emplace_back(item.required_attribute("concept"));
        } else if (item.name() == "includes") {
            cap.includes.emplace_back(item.required_attribute("name"));
        } else {
            throw ParseError("unexpected element <" + item.name() +
                             "> inside <capability>");
        }
    }
    return cap;
}

xml::XmlNode serialize_capability(const Capability& cap) {
    xml::XmlNode node("capability");
    node.set_attribute("name", cap.name);
    node.set_attribute(
        "kind", cap.kind == CapabilityKind::kProvided ? "provided" : "required");
    if (cap.code_version != 0) {
        node.set_attribute("codeVersion", std::to_string(cap.code_version));
    }
    if (!cap.category_qname.empty()) {
        xml::XmlNode category("category");
        category.set_attribute("concept", cap.category_qname);
        node.add_child(std::move(category));
    }
    for (const auto& param : cap.inputs) {
        xml::XmlNode input("input");
        if (!param.name.empty()) input.set_attribute("name", param.name);
        input.set_attribute("concept", param.concept_qname);
        node.add_child(std::move(input));
    }
    for (const auto& param : cap.outputs) {
        xml::XmlNode output("output");
        if (!param.name.empty()) output.set_attribute("name", param.name);
        output.set_attribute("concept", param.concept_qname);
        node.add_child(std::move(output));
    }
    for (const auto& prop : cap.property_qnames) {
        xml::XmlNode property("property");
        property.set_attribute("concept", prop);
        node.add_child(std::move(property));
    }
    for (const auto& included : cap.includes) {
        xml::XmlNode includes("includes");
        includes.set_attribute("name", included);
        node.add_child(std::move(includes));
    }
    return node;
}

}  // namespace

ServiceDescription parse_service(const xml::XmlNode& root) {
    if (root.name() != "service") {
        throw ParseError("expected <service> root element, got <" + root.name() +
                         ">");
    }
    ServiceDescription service;
    service.profile.service_name = root.required_attribute("name");
    service.profile.provider = root.attribute_or("provider", "");
    service.middleware = root.attribute_or("middleware", "WS");

    for (const auto& node : root.children()) {
        if (node.name() == "grounding") {
            service.grounding.protocol = node.attribute_or("protocol", "SOAP");
            service.grounding.address = node.attribute_or("address", "");
        } else if (node.name() == "capability") {
            service.profile.capabilities.push_back(parse_capability(node));
        } else if (node.name() == "qos") {
            service.profile.qos.push_back(
                QosAttribute{std::string(node.required_attribute("name")),
                             parse_double(node.required_attribute("value"),
                                          "qos value")});
        } else if (node.name() == "context") {
            service.profile.context.push_back(
                ContextAttribute{std::string(node.required_attribute("name")),
                                 std::string(node.required_attribute("value"))});
        } else if (node.name() == "process") {
            if (service.process.has_value()) {
                throw ParseError("service has multiple <process> elements");
            }
            service.process = parse_process(node);
        } else {
            throw ParseError("unexpected element <" + node.name() +
                             "> inside <service>");
        }
    }
    return service;
}

ServiceDescription parse_service(std::string_view xml_text) {
    return parse_service(xml::parse(xml_text).root);
}

ServiceRequest parse_request(const xml::XmlNode& root) {
    if (root.name() != "request") {
        throw ParseError("expected <request> root element, got <" + root.name() +
                         ">");
    }
    ServiceRequest request;
    request.requester = root.attribute_or("requester", "");
    for (const auto& node : root.children()) {
        if (node.name() == "capability") {
            Capability cap = parse_capability(node);
            cap.kind = CapabilityKind::kRequired;  // requests always seek
            request.capabilities.push_back(std::move(cap));
        } else if (node.name() == "qos") {
            QosConstraint constraint;
            constraint.name = node.required_attribute("name");
            if (const auto lo = node.attribute("min")) {
                constraint.min_value = parse_double(*lo, "qos min");
            }
            if (const auto hi = node.attribute("max")) {
                constraint.max_value = parse_double(*hi, "qos max");
            }
            request.qos_constraints.push_back(std::move(constraint));
        } else if (node.name() == "context") {
            request.context_constraints.push_back(
                ContextConstraint{std::string(node.required_attribute("name")),
                                  std::string(node.required_attribute("value"))});
        } else if (node.name() == "process") {
            if (request.process.has_value()) {
                throw ParseError("request has multiple <process> elements");
            }
            request.process = parse_process(node);
        } else {
            throw ParseError("unexpected element <" + node.name() +
                             "> inside <request>");
        }
    }
    if (request.capabilities.empty()) {
        throw ParseError("request contains no capabilities");
    }
    return request;
}

ServiceRequest parse_request(std::string_view xml_text) {
    return parse_request(xml::parse(xml_text).root);
}

std::string serialize_service(const ServiceDescription& service) {
    xml::XmlNode root("service");
    root.set_attribute("name", service.profile.service_name);
    if (!service.profile.provider.empty()) {
        root.set_attribute("provider", service.profile.provider);
    }
    root.set_attribute("middleware", service.middleware);

    if (!service.grounding.protocol.empty() || !service.grounding.address.empty()) {
        xml::XmlNode grounding("grounding");
        grounding.set_attribute("protocol", service.grounding.protocol);
        grounding.set_attribute("address", service.grounding.address);
        root.add_child(std::move(grounding));
    }
    for (const auto& cap : service.profile.capabilities) {
        root.add_child(serialize_capability(cap));
    }
    for (const auto& qos : service.profile.qos) {
        xml::XmlNode node("qos");
        node.set_attribute("name", qos.name);
        node.set_attribute("value", std::to_string(qos.value));
        root.add_child(std::move(node));
    }
    for (const auto& ctx : service.profile.context) {
        xml::XmlNode node("context");
        node.set_attribute("name", ctx.name);
        node.set_attribute("value", ctx.value);
        root.add_child(std::move(node));
    }
    if (service.process.has_value()) {
        root.add_child(serialize_process(*service.process));
    }
    return xml::write(root);
}

std::string serialize_request(const ServiceRequest& request) {
    xml::XmlNode root("request");
    if (!request.requester.empty()) {
        root.set_attribute("requester", request.requester);
    }
    for (const auto& cap : request.capabilities) {
        root.add_child(serialize_capability(cap));
    }
    for (const auto& constraint : request.qos_constraints) {
        xml::XmlNode node("qos");
        node.set_attribute("name", constraint.name);
        if (constraint.min_value > -1e299) {
            node.set_attribute("min", std::to_string(constraint.min_value));
        }
        if (constraint.max_value < 1e299) {
            node.set_attribute("max", std::to_string(constraint.max_value));
        }
        root.add_child(std::move(node));
    }
    for (const auto& constraint : request.context_constraints) {
        xml::XmlNode node("context");
        node.set_attribute("name", constraint.name);
        node.set_attribute("value", constraint.value);
        root.add_child(std::move(node));
    }
    if (request.process.has_value()) {
        root.add_child(serialize_process(*request.process));
    }
    return xml::write(root);
}

}  // namespace sariadne::desc
