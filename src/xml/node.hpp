// Minimal XML document object model. This is the substrate for every
// document format in the system: ontologies, Amigo-S service descriptions,
// service requests, and the WSDL subset used by the syntactic baseline.
// Deliberately non-validating and namespace-unaware — element names carry
// their prefix verbatim — because the discovery pipeline only needs
// well-formed tree structure, and Figures 7-8 of the paper measure exactly
// this parse step.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sariadne::xml {

/// One XML element: name, attributes in document order, child elements in
/// document order, and the concatenated character data directly under it.
class XmlNode {
public:
    XmlNode() = default;
    explicit XmlNode(std::string name) : name_(std::move(name)) {}

    const std::string& name() const noexcept { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

    /// Concatenated text content directly under this element (child element
    /// text is *not* included), with surrounding whitespace trimmed.
    const std::string& text() const noexcept { return text_; }
    void append_text(std::string_view more) { text_ += more; }
    void set_text(std::string text) { text_ = std::move(text); }

    // --- attributes ---------------------------------------------------
    void set_attribute(std::string name, std::string value);

    /// Attribute value, or std::nullopt if absent.
    std::optional<std::string_view> attribute(std::string_view name) const noexcept;

    /// Attribute value, or `fallback` if absent.
    std::string_view attribute_or(std::string_view name,
                                  std::string_view fallback) const noexcept;

    /// Attribute value; throws LookupError if absent.
    std::string_view required_attribute(std::string_view name) const;

    const std::vector<std::pair<std::string, std::string>>& attributes()
        const noexcept {
        return attributes_;
    }

    // --- children ------------------------------------------------------
    XmlNode& add_child(XmlNode child) {
        children_.push_back(std::move(child));
        return children_.back();
    }

    const std::vector<XmlNode>& children() const noexcept { return children_; }
    std::vector<XmlNode>& children() noexcept { return children_; }

    /// First child with the given element name, or nullptr.
    const XmlNode* child(std::string_view name) const noexcept;

    /// First child with the given element name; throws LookupError if absent.
    const XmlNode& required_child(std::string_view name) const;

    /// All children with the given element name, in document order.
    std::vector<const XmlNode*> children_named(std::string_view name) const;

    /// Total number of elements in this subtree (including this node).
    std::size_t subtree_size() const noexcept;

private:
    std::string name_;
    std::string text_;
    std::vector<std::pair<std::string, std::string>> attributes_;
    std::vector<XmlNode> children_;
};

/// A parsed document: exactly one root element.
struct XmlDocument {
    XmlNode root;
};

}  // namespace sariadne::xml
