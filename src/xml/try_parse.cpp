// lint:wire-decode — non-throwing parser entry point: failures surface as
// Result errors, never as exceptions escaping to the caller.
#include "support/catching.hpp"
#include "xml/parser.hpp"

namespace sariadne::xml {

Result<XmlDocument> try_parse(std::string_view input) noexcept {
    return support::catching<XmlDocument>([&] { return parse(input); });
}

}  // namespace sariadne::xml
