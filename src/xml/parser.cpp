#include "xml/parser.hpp"

#include <cctype>
#include <charconv>
#include <string>
#include <string_view>

#include "support/errors.hpp"

namespace sariadne::xml {

namespace {

bool is_name_start(char c) noexcept {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool is_name_char(char c) noexcept {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
           c == '-' || c == '.';
}

class Cursor {
public:
    explicit Cursor(std::string_view input) noexcept : input_(input) {}

    bool at_end() const noexcept { return pos_ >= input_.size(); }

    char peek() const noexcept {
        return at_end() ? '\0' : input_[pos_];
    }

    char peek_at(std::size_t offset) const noexcept {
        return pos_ + offset >= input_.size() ? '\0' : input_[pos_ + offset];
    }

    char advance() noexcept {
        const char c = input_[pos_++];
        if (c == '\n') {
            ++line_;
            column_ = 1;
        } else {
            ++column_;
        }
        return c;
    }

    bool starts_with(std::string_view prefix) const noexcept {
        return input_.substr(pos_).starts_with(prefix);
    }

    void skip(std::size_t count) noexcept {
        for (std::size_t i = 0; i < count && !at_end(); ++i) advance();
    }

    void skip_whitespace() noexcept {
        while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) {
            advance();
        }
    }

    [[noreturn]] void fail(const std::string& message) const {
        throw ParseError(message, line_, column_);
    }

    std::size_t line() const noexcept { return line_; }
    std::size_t column() const noexcept { return column_; }

private:
    std::string_view input_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
    std::size_t column_ = 1;
};

class Parser {
public:
    explicit Parser(std::string_view input) : cursor_(input) {}

    XmlDocument parse_document() {
        skip_prolog();
        XmlDocument doc;
        doc.root = parse_element();
        skip_misc();
        if (!cursor_.at_end()) {
            cursor_.fail("content after the root element");
        }
        return doc;
    }

private:
    void skip_prolog() {
        skip_misc();
        if (cursor_.starts_with("<!DOCTYPE")) {
            cursor_.fail("DOCTYPE declarations are not supported");
        }
    }

    // Skips whitespace, comments, processing instructions and the XML
    // declaration, in any order.
    void skip_misc() {
        for (;;) {
            cursor_.skip_whitespace();
            if (cursor_.starts_with("<!--")) {
                skip_comment();
            } else if (cursor_.starts_with("<?")) {
                skip_processing_instruction();
            } else {
                return;
            }
        }
    }

    void skip_comment() {
        cursor_.skip(4);  // "<!--"
        while (!cursor_.at_end() && !cursor_.starts_with("-->")) cursor_.advance();
        if (cursor_.at_end()) cursor_.fail("unterminated comment");
        cursor_.skip(3);
    }

    void skip_processing_instruction() {
        cursor_.skip(2);  // "<?"
        while (!cursor_.at_end() && !cursor_.starts_with("?>")) cursor_.advance();
        if (cursor_.at_end()) cursor_.fail("unterminated processing instruction");
        cursor_.skip(2);
    }

    std::string parse_name() {
        if (!is_name_start(cursor_.peek())) {
            cursor_.fail("expected a name");
        }
        std::string name;
        while (is_name_char(cursor_.peek())) name += cursor_.advance();
        return name;
    }

    XmlNode parse_element() {
        // Documents come off the wire (service descriptions, summaries), so
        // nesting depth is attacker-controlled input for this recursive
        // parser: cap it well below stack exhaustion — even with
        // sanitizer-inflated frames — and reject with a ParseError.
        if (++depth_ > kMaxElementDepth) {
            cursor_.fail("element nesting deeper than " +
                         std::to_string(kMaxElementDepth));
        }
        if (cursor_.peek() != '<') cursor_.fail("expected '<'");
        cursor_.advance();
        XmlNode node(parse_name());
        parse_attributes(node);
        cursor_.skip_whitespace();
        if (cursor_.starts_with("/>")) {
            cursor_.skip(2);
            --depth_;
            return node;
        }
        if (cursor_.peek() != '>') cursor_.fail("expected '>' or '/>'");
        cursor_.advance();
        parse_content(node);
        --depth_;
        return node;  // parse_content consumed the matching end tag
    }

    void parse_attributes(XmlNode& node) {
        for (;;) {
            cursor_.skip_whitespace();
            if (!is_name_start(cursor_.peek())) return;
            std::string name = parse_name();
            cursor_.skip_whitespace();
            if (cursor_.peek() != '=') cursor_.fail("expected '=' after attribute name");
            cursor_.advance();
            cursor_.skip_whitespace();
            const char quote = cursor_.peek();
            if (quote != '"' && quote != '\'') {
                cursor_.fail("expected quoted attribute value");
            }
            cursor_.advance();
            std::string value;
            while (!cursor_.at_end() && cursor_.peek() != quote) {
                if (cursor_.peek() == '&') {
                    value += parse_entity();
                } else {
                    value += cursor_.advance();
                }
            }
            if (cursor_.at_end()) cursor_.fail("unterminated attribute value");
            cursor_.advance();  // closing quote
            node.set_attribute(std::move(name), std::move(value));
        }
    }

    void parse_content(XmlNode& node) {
        std::string text;
        for (;;) {
            if (cursor_.at_end()) cursor_.fail("unexpected end of input inside <" +
                                               node.name() + ">");
            if (cursor_.starts_with("<!--")) {
                skip_comment();
            } else if (cursor_.starts_with("<![CDATA[")) {
                parse_cdata(text);
            } else if (cursor_.starts_with("</")) {
                cursor_.skip(2);
                const std::string name = parse_name();
                if (name != node.name()) {
                    cursor_.fail("mismatched end tag </" + name + "> for <" +
                                 node.name() + ">");
                }
                cursor_.skip_whitespace();
                if (cursor_.peek() != '>') cursor_.fail("expected '>' in end tag");
                cursor_.advance();
                node.set_text(trim(text));
                return;
            } else if (cursor_.starts_with("<?")) {
                skip_processing_instruction();
            } else if (cursor_.peek() == '<') {
                node.add_child(parse_element());
            } else if (cursor_.peek() == '&') {
                text += parse_entity();
            } else {
                text += cursor_.advance();
            }
        }
    }

    void parse_cdata(std::string& out) {
        cursor_.skip(9);  // "<![CDATA["
        while (!cursor_.at_end() && !cursor_.starts_with("]]>")) {
            out += cursor_.advance();
        }
        if (cursor_.at_end()) cursor_.fail("unterminated CDATA section");
        cursor_.skip(3);
    }

    std::string parse_entity() {
        cursor_.advance();  // '&'
        std::string entity;
        while (!cursor_.at_end() && cursor_.peek() != ';') {
            entity += cursor_.advance();
            if (entity.size() > 8) cursor_.fail("entity reference too long");
        }
        if (cursor_.at_end()) cursor_.fail("unterminated entity reference");
        cursor_.advance();  // ';'
        if (entity == "lt") return "<";
        if (entity == "gt") return ">";
        if (entity == "amp") return "&";
        if (entity == "quot") return "\"";
        if (entity == "apos") return "'";
        if (!entity.empty() && entity[0] == '#') {
            return decode_char_reference(entity);
        }
        cursor_.fail("unknown entity '&" + entity + ";'");
    }

    std::string decode_char_reference(const std::string& entity) {
        // Full-range parse: std::stoul would silently stop at the first
        // invalid digit ("&#12ab;" → 12), accepting malformed references.
        const bool hex = entity[1] == 'x' || entity[1] == 'X';
        const std::string_view digits =
            std::string_view(entity).substr(hex ? 2 : 1);
        unsigned long code = 0;
        const auto [ptr, ec] = std::from_chars(
            digits.data(), digits.data() + digits.size(), code, hex ? 16 : 10);
        if (digits.empty() || ec != std::errc() ||
            ptr != digits.data() + digits.size()) {
            cursor_.fail("malformed character reference '&" + entity + ";'");
        }
        return encode_utf8(code);
    }

    std::string encode_utf8(unsigned long code) {
        std::string out;
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x110000) {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            cursor_.fail("character reference out of range");
        }
        return out;
    }

    static std::string trim(const std::string& text) {
        const auto begin = text.find_first_not_of(" \t\r\n");
        if (begin == std::string::npos) return {};
        const auto end = text.find_last_not_of(" \t\r\n");
        return text.substr(begin, end - begin + 1);
    }

    static constexpr int kMaxElementDepth = 512;

    Cursor cursor_;
    int depth_ = 0;
};

}  // namespace

XmlDocument parse(std::string_view input) {
    return Parser(input).parse_document();
}

}  // namespace sariadne::xml
