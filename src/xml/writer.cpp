#include "xml/writer.hpp"

namespace sariadne::xml {

namespace {

void append_escaped(std::string& out, std::string_view text, bool in_attribute) {
    for (const char c : text) {
        switch (c) {
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '&': out += "&amp;"; break;
            case '"':
                if (in_attribute) out += "&quot;";
                else out += c;
                break;
            default: out += c; break;
        }
    }
}

void write_node(std::string& out, const XmlNode& node, const WriteOptions& options,
                int depth) {
    const std::string indent =
        options.pretty ? std::string(static_cast<std::size_t>(depth) *
                                         static_cast<std::size_t>(options.indent_width),
                                     ' ')
                       : std::string();
    out += indent;
    out += '<';
    out += node.name();
    for (const auto& [name, value] : node.attributes()) {
        out += ' ';
        out += name;
        out += "=\"";
        append_escaped(out, value, /*in_attribute=*/true);
        out += '"';
    }

    const bool has_children = !node.children().empty();
    const bool has_text = !node.text().empty();
    if (!has_children && !has_text) {
        out += "/>";
        if (options.pretty) out += '\n';
        return;
    }

    out += '>';
    if (has_text) {
        append_escaped(out, node.text(), /*in_attribute=*/false);
    }
    if (has_children) {
        if (options.pretty) out += '\n';
        for (const auto& node_child : node.children()) {
            write_node(out, node_child, options, depth + 1);
        }
        out += indent;
    }
    out += "</";
    out += node.name();
    out += '>';
    if (options.pretty) out += '\n';
}

}  // namespace

std::string write(const XmlNode& root, const WriteOptions& options) {
    std::string out;
    if (options.declaration) {
        out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
        if (options.pretty) out += '\n';
    }
    write_node(out, root, options, 0);
    return out;
}

std::string escape_text(std::string_view text) {
    std::string out;
    append_escaped(out, text, /*in_attribute=*/false);
    return out;
}

std::string escape_attribute(std::string_view text) {
    std::string out;
    append_escaped(out, text, /*in_attribute=*/true);
    return out;
}

}  // namespace sariadne::xml
