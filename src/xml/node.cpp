#include "xml/node.hpp"

#include "support/errors.hpp"

namespace sariadne::xml {

void XmlNode::set_attribute(std::string name, std::string value) {
    for (auto& [existing, val] : attributes_) {
        if (existing == name) {
            val = std::move(value);
            return;
        }
    }
    attributes_.emplace_back(std::move(name), std::move(value));
}

std::optional<std::string_view> XmlNode::attribute(
    std::string_view name) const noexcept {
    for (const auto& [attr, value] : attributes_) {
        if (attr == name) return std::string_view(value);
    }
    return std::nullopt;
}

std::string_view XmlNode::attribute_or(std::string_view name,
                                       std::string_view fallback) const noexcept {
    const auto found = attribute(name);
    return found ? *found : fallback;
}

std::string_view XmlNode::required_attribute(std::string_view name) const {
    const auto found = attribute(name);
    if (!found) {
        throw LookupError("element <" + name_ + "> is missing required attribute '" +
                          std::string(name) + "'");
    }
    return *found;
}

const XmlNode* XmlNode::child(std::string_view name) const noexcept {
    for (const auto& node : children_) {
        if (node.name() == name) return &node;
    }
    return nullptr;
}

const XmlNode& XmlNode::required_child(std::string_view name) const {
    const XmlNode* found = child(name);
    if (found == nullptr) {
        throw LookupError("element <" + name_ + "> is missing required child <" +
                          std::string(name) + ">");
    }
    return *found;
}

std::vector<const XmlNode*> XmlNode::children_named(std::string_view name) const {
    std::vector<const XmlNode*> result;
    for (const auto& node : children_) {
        if (node.name() == name) result.push_back(&node);
    }
    return result;
}

std::size_t XmlNode::subtree_size() const noexcept {
    std::size_t count = 1;
    for (const auto& node : children_) count += node.subtree_size();
    return count;
}

}  // namespace sariadne::xml
