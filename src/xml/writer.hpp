// XML serialization — the inverse of parser.hpp. Used by the workload
// generators to materialize Amigo-S / ontology / WSDL documents that the
// benchmarks then parse back, so that the measured parse cost corresponds
// to a realistic document, not a hand-minified one.
#pragma once

#include <string>

#include "xml/node.hpp"

namespace sariadne::xml {

struct WriteOptions {
    bool pretty = true;        ///< newline + indentation between elements
    int indent_width = 2;      ///< spaces per nesting level when pretty
    bool declaration = true;   ///< emit <?xml version="1.0"?> header
};

/// Serializes a node subtree. Attribute and text content are escaped.
std::string write(const XmlNode& root, const WriteOptions& options = {});

/// Escapes the five predefined XML entities in character data.
std::string escape_text(std::string_view text);

/// Escapes character data for use inside a double-quoted attribute.
std::string escape_attribute(std::string_view text);

}  // namespace sariadne::xml
