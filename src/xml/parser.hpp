// Recursive-descent XML parser. Supports the well-formed subset the
// discovery documents use: elements, attributes (single- or double-quoted),
// self-closing tags, character data, the five predefined entities plus
// decimal/hex character references, comments, CDATA sections, XML
// declarations and processing instructions (skipped). DOCTYPE is rejected.
// Errors carry line/column positions.
#pragma once

#include <string_view>

#include "support/result.hpp"
#include "xml/node.hpp"

namespace sariadne::xml {

/// Parses a complete document. Throws sariadne::ParseError on malformed
/// input. The input must contain exactly one root element.
XmlDocument parse(std::string_view input);

/// Non-throwing variant for wire-facing callers: ErrorCode::kParse (with
/// the line/column message) instead of a thrown ParseError.
Result<XmlDocument> try_parse(std::string_view input) noexcept;

}  // namespace sariadne::xml
