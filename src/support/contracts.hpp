// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", GSL). Violations throw ContractViolation so that
// tests can assert on them; they are never compiled out because discovery
// directories are long-lived network-facing components where silent
// corruption is worse than the cost of a branch.
#pragma once

#include <stdexcept>
#include <string>

namespace sariadne {

/// Thrown when a precondition, postcondition or invariant is violated.
class ContractViolation : public std::logic_error {
public:
    explicit ContractViolation(const std::string& what_arg)
        : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
    throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                            file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace sariadne

#define SARIADNE_EXPECTS(cond)                                              \
    do {                                                                    \
        if (!(cond))                                                        \
            ::sariadne::detail::contract_fail("precondition", #cond,        \
                                              __FILE__, __LINE__);          \
    } while (false)

#define SARIADNE_ENSURES(cond)                                              \
    do {                                                                    \
        if (!(cond))                                                        \
            ::sariadne::detail::contract_fail("postcondition", #cond,       \
                                              __FILE__, __LINE__);          \
    } while (false)

#define SARIADNE_ASSERT(cond)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            ::sariadne::detail::contract_fail("invariant", #cond,           \
                                              __FILE__, __LINE__);          \
    } while (false)
