// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", GSL). Violations throw ContractViolation so that
// tests can assert on them; they are never compiled out because discovery
// directories are long-lived network-facing components where silent
// corruption is worse than the cost of a branch.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace sariadne {

/// What class of contract a ContractViolation reports. kLockRank is raised
/// by the debug lock-order checker in support/lock_rank.hpp; the other
/// three map to the SARIADNE_EXPECTS / SARIADNE_ENSURES / SARIADNE_ASSERT
/// macros below.
enum class ContractKind {
    kPrecondition,
    kPostcondition,
    kInvariant,
    kLockRank,
};

constexpr std::string_view to_string(ContractKind kind) noexcept {
    switch (kind) {
        case ContractKind::kPrecondition: return "precondition";
        case ContractKind::kPostcondition: return "postcondition";
        case ContractKind::kInvariant: return "invariant";
        case ContractKind::kLockRank: return "lock-rank";
    }
    return "contract";
}

/// Thrown when a precondition, postcondition, invariant or lock-ordering
/// rule is violated. Carries the violation structurally (kind, the failed
/// expression, source location) so checkers and tests can assert on the
/// exact contract that fired instead of substring-matching what().
class ContractViolation : public std::logic_error {
public:
    ContractViolation(ContractKind kind, std::string expression,
                      std::string file, int line)
        : std::logic_error(std::string(to_string(kind)) + " failed: " +
                           expression + " at " + file + ":" +
                           std::to_string(line)),
          kind_(kind),
          expression_(std::move(expression)),
          file_(std::move(file)),
          line_(line) {}

    ContractKind kind() const noexcept { return kind_; }
    const std::string& expression() const noexcept { return expression_; }
    const std::string& file() const noexcept { return file_; }
    int line() const noexcept { return line_; }

private:
    ContractKind kind_;
    std::string expression_;
    std::string file_;
    int line_;
};

namespace detail {
[[noreturn]] inline void contract_fail(ContractKind kind, const char* expr,
                                       const char* file, int line) {
    throw ContractViolation(kind, expr, file, line);
}
}  // namespace detail

}  // namespace sariadne

#define SARIADNE_EXPECTS(cond)                                              \
    do {                                                                    \
        if (!(cond))                                                        \
            ::sariadne::detail::contract_fail(                              \
                ::sariadne::ContractKind::kPrecondition, #cond, __FILE__,   \
                __LINE__);                                                  \
    } while (false)

#define SARIADNE_ENSURES(cond)                                              \
    do {                                                                    \
        if (!(cond))                                                        \
            ::sariadne::detail::contract_fail(                              \
                ::sariadne::ContractKind::kPostcondition, #cond, __FILE__,  \
                __LINE__);                                                  \
    } while (false)

#define SARIADNE_ASSERT(cond)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            ::sariadne::detail::contract_fail(                              \
                ::sariadne::ContractKind::kInvariant, #cond, __FILE__,      \
                __LINE__);                                                  \
    } while (false)
