// Error taxonomy for the sariadne library. All recoverable failures are
// reported through these exception types; contract violations (programming
// errors) use ContractViolation from contracts.hpp.
#pragma once

#include <stdexcept>
#include <string>

namespace sariadne {

/// Base class of all recoverable sariadne errors.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what_arg)
        : std::runtime_error(what_arg) {}
};

/// A document (XML, ontology, service description) could not be parsed.
class ParseError : public Error {
public:
    ParseError(const std::string& what_arg, std::size_t line, std::size_t column)
        : Error(what_arg + " (line " + std::to_string(line) + ", column " +
                std::to_string(column) + ")"),
          line_(line),
          column_(column) {}

    explicit ParseError(const std::string& what_arg)
        : Error(what_arg), line_(0), column_(0) {}

    std::size_t line() const noexcept { return line_; }
    std::size_t column() const noexcept { return column_; }

private:
    std::size_t line_;
    std::size_t column_;
};

/// A referenced entity (ontology URI, concept, capability) is unknown.
class LookupError : public Error {
public:
    using Error::Error;
};

/// An ontology is semantically inconsistent (e.g. cyclic strict subsumption
/// that cannot be collapsed, subsumption between disjoint classes).
class InconsistencyError : public Error {
public:
    using Error::Error;
};

/// A code table and a description disagree on the encoding version.
class VersionMismatchError : public Error {
public:
    using Error::Error;
};

}  // namespace sariadne
