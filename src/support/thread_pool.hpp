// ThreadPool — a small fixed-size worker pool used by the parallel query
// path of DiscoveryEngine (and available to benches/tests). Tasks are
// plain std::function thunks executed FIFO; submit() returns a future for
// the callable's result. The pool joins its workers on destruction after
// draining the queue, so submitted tasks never outlive the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace sariadne::support {

class ThreadPool {
public:
    /// Spawns `worker_count` workers (at least one).
    explicit ThreadPool(std::size_t worker_count = default_worker_count()) {
        if (worker_count == 0) worker_count = 1;
        workers_.reserve(worker_count);
        for (std::size_t i = 0; i < worker_count; ++i) {
            workers_.emplace_back([this] { worker_loop(); });
        }
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool() {
        {
            std::lock_guard lock(mutex_);
            stopping_ = true;
        }
        wake_.notify_all();
        for (std::thread& worker : workers_) worker.join();
    }

    /// Enqueues a callable; the returned future yields its result (or
    /// rethrows its exception).
    template <typename F>
    auto submit(F&& callable) -> std::future<std::invoke_result_t<F>> {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(callable));
        std::future<R> result = task->get_future();
        {
            std::lock_guard lock(mutex_);
            queue_.emplace([task] { (*task)(); });
        }
        wake_.notify_one();
        return result;
    }

    std::size_t worker_count() const noexcept { return workers_.size(); }

    /// Hardware concurrency clamped to a sane directory-node default.
    static std::size_t default_worker_count() noexcept {
        const unsigned hw = std::thread::hardware_concurrency();
        if (hw == 0) return 2;
        return hw < 8 ? hw : 8;
    }

private:
    void worker_loop() {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock lock(mutex_);
                wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
                if (queue_.empty()) return;  // stopping_ and drained
                task = std::move(queue_.front());
                queue_.pop();
            }
            task();
        }
    }

    // std::condition_variable requires the concrete std::mutex; this queue
    // mutex is a leaf that never nests with ranked locks — workers run
    // tasks only after releasing it.
    // lint:allow-naked-mutex(condition_variable needs std::mutex; leaf lock)
    std::mutex mutex_;
    std::condition_variable wake_;
    std::queue<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    bool stopping_ = false;
};

}  // namespace sariadne::support
