// Grow-on-write dynamic bitset over 64-bit words — the representation
// behind the capability DAG's per-vertex ancestor/descendant reachability
// sets (directory/dag.hpp). Bits beyond the stored words read as zero, so
// sets over a growing id space never need an explicit resize pass: set()
// widens its own set lazily, test()/reset() treat missing words as empty.
// All operations are noexcept-safe except the allocating ones (set,
// or_with), and nothing here is thread-safe — owners synchronize.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sariadne::support {

class DynBitset {
public:
    DynBitset() = default;

    /// True iff bit `index` is set (bits past the stored words are 0).
    bool test(std::size_t index) const noexcept {
        const std::size_t word = index >> 6;
        return word < words_.size() &&
               (words_[word] >> (index & 63u) & 1u) != 0;
    }

    /// Sets bit `index`, widening the word vector as needed.
    void set(std::size_t index) {
        const std::size_t word = index >> 6;
        if (word >= words_.size()) words_.resize(word + 1, 0);
        words_[word] |= std::uint64_t{1} << (index & 63u);
    }

    /// Clears bit `index`; a bit past the stored words is already clear.
    void reset(std::size_t index) noexcept {
        const std::size_t word = index >> 6;
        if (word < words_.size()) {
            words_[word] &= ~(std::uint64_t{1} << (index & 63u));
        }
    }

    /// this |= other.
    void or_with(const DynBitset& other) {
        if (other.words_.size() > words_.size()) {
            words_.resize(other.words_.size(), 0);
        }
        for (std::size_t i = 0; i < other.words_.size(); ++i) {
            words_[i] |= other.words_[i];
        }
    }

    void clear() noexcept { words_.clear(); }

    bool none() const noexcept {
        for (const std::uint64_t word : words_) {
            if (word != 0) return false;
        }
        return true;
    }

    std::size_t count() const noexcept {
        std::size_t n = 0;
        for (const std::uint64_t word : words_) {
            n += static_cast<std::size_t>(std::popcount(word));
        }
        return n;
    }

    /// Calls `fn(index)` for every set bit, in increasing index order.
    template <typename Fn>
    void for_each_set(Fn&& fn) const {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t word = words_[w];
            while (word != 0) {
                const int bit = std::countr_zero(word);
                fn((w << 6) + static_cast<std::size_t>(bit));
                word &= word - 1;
            }
        }
    }

    /// Raw word storage, for bulk operations (e.g. OR-ing into a
    /// fixed-capacity arena bitset). Bits past word_count() read as zero.
    const std::uint64_t* words() const noexcept { return words_.data(); }
    std::size_t word_count() const noexcept { return words_.size(); }

    friend bool operator==(const DynBitset& a, const DynBitset& b) noexcept {
        const std::size_t common =
            a.words_.size() < b.words_.size() ? a.words_.size()
                                              : b.words_.size();
        for (std::size_t i = 0; i < common; ++i) {
            if (a.words_[i] != b.words_[i]) return false;
        }
        const auto& longer = a.words_.size() > b.words_.size() ? a : b;
        for (std::size_t i = common; i < longer.words_.size(); ++i) {
            if (longer.words_[i] != 0) return false;
        }
        return true;
    }

private:
    std::vector<std::uint64_t> words_;
};

}  // namespace sariadne::support
