#include "support/hash.hpp"

#include <cstring>

namespace sariadne {

namespace {

std::uint64_t rotl64(std::uint64_t x, int r) noexcept {
    return (x << r) | (x >> (64 - r));
}

std::uint64_t load64(const char* p) noexcept {
    std::uint64_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

}  // namespace

Hash128 murmur3_128(std::string_view data, std::uint64_t seed) noexcept {
    // MurmurHash3 x64 128-bit, adapted from Austin Appleby's public-domain
    // reference implementation.
    const std::size_t nblocks = data.size() / 16;
    std::uint64_t h1 = seed;
    std::uint64_t h2 = seed;
    constexpr std::uint64_t c1 = 0x87C37B91114253D5ULL;
    constexpr std::uint64_t c2 = 0x4CF5AD432745937FULL;

    const char* blocks = data.data();
    for (std::size_t i = 0; i < nblocks; ++i) {
        std::uint64_t k1 = load64(blocks + i * 16);
        std::uint64_t k2 = load64(blocks + i * 16 + 8);

        k1 *= c1; k1 = rotl64(k1, 31); k1 *= c2; h1 ^= k1;
        h1 = rotl64(h1, 27); h1 += h2; h1 = h1 * 5 + 0x52DCE729;
        k2 *= c2; k2 = rotl64(k2, 33); k2 *= c1; h2 ^= k2;
        h2 = rotl64(h2, 31); h2 += h1; h2 = h2 * 5 + 0x38495AB5;
    }

    const char* tail = data.data() + nblocks * 16;
    const std::size_t tail_len = data.size() & 15;
    std::uint64_t k1 = 0;
    std::uint64_t k2 = 0;
    for (std::size_t i = tail_len; i > 8; --i) {
        k2 ^= static_cast<std::uint64_t>(static_cast<std::uint8_t>(tail[i - 1]))
              << ((i - 9) * 8);
    }
    if (tail_len > 8) {
        k2 *= c2; k2 = rotl64(k2, 33); k2 *= c1; h2 ^= k2;
    }
    for (std::size_t i = (tail_len > 8 ? 8 : tail_len); i > 0; --i) {
        k1 ^= static_cast<std::uint64_t>(static_cast<std::uint8_t>(tail[i - 1]))
              << ((i - 1) * 8);
    }
    if (tail_len > 0) {
        k1 *= c1; k1 = rotl64(k1, 31); k1 *= c2; h1 ^= k1;
    }

    h1 ^= static_cast<std::uint64_t>(data.size());
    h2 ^= static_cast<std::uint64_t>(data.size());
    h1 += h2;
    h2 += h1;
    h1 = mix64(h1);
    h2 = mix64(h2);
    h1 += h2;
    h2 += h1;
    return Hash128{h1, h2};
}

}  // namespace sariadne
