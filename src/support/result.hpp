// Result<T> — value-or-error return type for the facade's non-throwing
// entry points (DiscoveryEngine::try_publish / try_discover). Callers on
// the network path route a request straight into the directory and need a
// branchable outcome instead of a try/catch per message; the error payload
// carries a stable code (mapping the exception taxonomy of
// support/errors.hpp) plus the human-readable message.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace sariadne {

/// Stable classification of a recoverable failure.
enum class ErrorCode {
    kParse,            ///< malformed XML / description / ontology document
    kLookup,           ///< unknown ontology URI, concept, or capability
    kInconsistency,    ///< semantically inconsistent ontology
    kVersionMismatch,  ///< description encoded against stale ontology codes
    kInternal,         ///< any other recoverable error
};

/// The error payload of a failed Result.
struct ErrorInfo {
    ErrorCode code = ErrorCode::kInternal;
    std::string message;
};

inline const char* to_string(ErrorCode code) noexcept {
    switch (code) {
        case ErrorCode::kParse: return "parse";
        case ErrorCode::kLookup: return "lookup";
        case ErrorCode::kInconsistency: return "inconsistency";
        case ErrorCode::kVersionMismatch: return "version-mismatch";
        case ErrorCode::kInternal: return "internal";
    }
    return "unknown";
}

template <typename T>
class Result {
public:
    Result(T value) : state_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
    Result(ErrorInfo error) : state_(std::move(error)) {}    // NOLINT(google-explicit-constructor)

    bool ok() const noexcept { return std::holds_alternative<T>(state_); }
    explicit operator bool() const noexcept { return ok(); }

    /// Precondition: ok().
    T& value() & {
        assert(ok());
        return std::get<T>(state_);
    }
    const T& value() const& {
        assert(ok());
        return std::get<T>(state_);
    }
    T&& value() && {
        assert(ok());
        return std::get<T>(std::move(state_));
    }

    /// Precondition: !ok().
    const ErrorInfo& error() const {
        assert(!ok());
        return std::get<ErrorInfo>(state_);
    }

    T value_or(T fallback) const {
        return ok() ? std::get<T>(state_) : std::move(fallback);
    }

private:
    std::variant<T, ErrorInfo> state_;
};

}  // namespace sariadne
