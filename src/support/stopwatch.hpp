// Wall-clock measurement for the evaluation harness. The network simulator
// keeps its own virtual time (net/sim_time.hpp); this type is only for
// measuring real local compute (parse / classify / match), exactly the
// quantities Figures 7-10 of the paper plot.
#pragma once

#include <chrono>

namespace sariadne {

/// Monotonic stopwatch. Constructed running.
class Stopwatch {
public:
    using clock = std::chrono::steady_clock;

    Stopwatch() noexcept : start_(clock::now()) {}

    void restart() noexcept { start_ = clock::now(); }

    /// Elapsed time since construction/restart, in seconds.
    double elapsed_seconds() const noexcept {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    /// Elapsed time in milliseconds (the unit the paper's figures use).
    double elapsed_ms() const noexcept { return elapsed_seconds() * 1e3; }

    /// Elapsed time in microseconds.
    double elapsed_us() const noexcept { return elapsed_seconds() * 1e6; }

private:
    clock::time_point start_;
};

}  // namespace sariadne
