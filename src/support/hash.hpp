// Hash functions used across the library: FNV-1a for cheap interning and
// map keys, MurmurHash3 (x64 128-bit finalizer variant) for Bloom filters,
// and the Kirsch–Mitzenmacher double-hashing scheme that derives k
// independent-enough hash functions from two base hashes.
#pragma once

#include <cstdint>
#include <string_view>

namespace sariadne {

/// 64-bit FNV-1a over a byte string. Stable across platforms.
constexpr std::uint64_t fnv1a64(std::string_view data) noexcept {
    std::uint64_t hash = 0xCBF29CE484222325ULL;
    for (const char c : data) {
        hash ^= static_cast<std::uint8_t>(c);
        hash *= 0x00000100000001B3ULL;
    }
    return hash;
}

/// MurmurHash3 64-bit finalizer (fmix64) — a strong bit mixer.
constexpr std::uint64_t mix64(std::uint64_t k) noexcept {
    k ^= k >> 33;
    k *= 0xFF51AFD7ED558CCDULL;
    k ^= k >> 33;
    k *= 0xC4CEB9FE1A85EC53ULL;
    k ^= k >> 33;
    return k;
}

/// 128-bit hash of a byte string, returned as two 64-bit halves. Built from
/// a Murmur3-style block mix; used as the base pair for double hashing.
struct Hash128 {
    std::uint64_t h1;
    std::uint64_t h2;
};

Hash128 murmur3_128(std::string_view data, std::uint64_t seed = 0) noexcept;

/// Kirsch–Mitzenmacher: the i-th derived hash g_i(x) = h1 + i*h2 (mod m).
/// Deriving k functions this way preserves Bloom-filter asymptotics.
constexpr std::uint64_t double_hash(const Hash128& base, std::uint32_t i,
                                    std::uint64_t modulus) noexcept {
    return (base.h1 + static_cast<std::uint64_t>(i) * base.h2) % modulus;
}

/// Order-independent combination of element hashes — used to hash *sets*
/// (e.g. the set of ontology URIs a capability draws from).
constexpr std::uint64_t combine_unordered(std::uint64_t acc,
                                          std::uint64_t element) noexcept {
    return acc + mix64(element);  // addition commutes: order independent
}

}  // namespace sariadne
