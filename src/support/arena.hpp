// lint:hot-path — per-query bump arena behind the zero-allocation query
// path. Everything the matcher scratches on during one request (candidate
// hit lists, top-k buffers, doom/visited bitsets, name bytes for hits)
// lives here; `reset()` recycles the memory for the next request without
// returning it to the heap, so the steady state performs no allocations
// at all (`chunk_allocs()` counts the rare cold-path chunk growths).
//
// Contract (DESIGN.md §13): scratch never outlives the query that
// allocated it. Callers materialize results into caller-owned storage
// before reset; ArenaVec/ArenaBitset are non-owning views into the arena
// and must be dropped before the next reset. Nothing here is thread-safe;
// each thread uses its own arena (see query_scratch_arena()).
//
// This header intentionally avoids std::vector/std::string (enforced by
// sariadne-analyze's hot-path rules): chunks form an intrusive singly-linked
// list carved from ::operator new.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>

#include "support/contracts.hpp"

namespace sariadne::support {

/// Chunked bump allocator. Allocation is pointer arithmetic on the hot
/// path; when the current chunk is exhausted the arena advances to the
/// next retained chunk or, cold, grows a doubled one from the heap.
class Arena {
public:
    static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

    explicit Arena(std::size_t first_chunk_bytes = kDefaultChunkBytes) noexcept
        : next_chunk_bytes_(first_chunk_bytes < kMinChunkBytes
                                ? kMinChunkBytes
                                : first_chunk_bytes) {}

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    ~Arena() {
        Chunk* chunk = head_;
        while (chunk != nullptr) {
            Chunk* next = chunk->next;
            ::operator delete(chunk);
            chunk = next;
        }
    }

    /// Uninitialized storage, aligned to `alignment` (a power of two no
    /// larger than alignof(std::max_align_t)).
    void* allocate(std::size_t bytes, std::size_t alignment) {
        SARIADNE_ASSERT(alignment != 0 &&
                        (alignment & (alignment - 1)) == 0 &&
                        alignment <= alignof(std::max_align_t));
        std::uintptr_t cursor = (cursor_ + (alignment - 1)) &
                                ~static_cast<std::uintptr_t>(alignment - 1);
        if (current_ == nullptr || cursor + bytes > current_->end) {
            grow(bytes, alignment);
            cursor = (cursor_ + (alignment - 1)) &
                     ~static_cast<std::uintptr_t>(alignment - 1);
        }
        cursor_ = cursor + bytes;
        return reinterpret_cast<void*>(cursor);
    }

    /// Uninitialized array of `count` trivially-destructible `T`s.
    template <typename T>
    T* alloc_array(std::size_t count) {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena storage is never destroyed element-wise");
        return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    }

    /// Copies `size` bytes into the arena and returns the stable copy.
    /// Used to pin hit names whose owners may die once a lock drops.
    const char* copy_bytes(const char* data, std::size_t size) {
        char* out = alloc_array<char>(size);
        if (size != 0) std::memcpy(out, data, size);
        return out;
    }

    /// Rewinds to empty while *retaining* every chunk: the next query
    /// reuses the same memory and performs zero heap allocations as long
    /// as its footprint fits what previous queries established.
    void reset() noexcept {
        current_ = head_;
        cursor_ = current_ != nullptr ? current_->begin : 0;
    }

    /// Heap allocations performed by this arena since construction.
    /// Steady state (after warm-up) must not move between resets —
    /// MatchStats::scratch_allocs reports the per-query delta.
    std::uint64_t chunk_allocs() const noexcept { return chunk_allocs_; }

    /// Bytes currently held across all retained chunks.
    std::size_t retained_bytes() const noexcept { return retained_bytes_; }

private:
    struct Chunk {
        Chunk* next;
        std::uintptr_t begin;
        std::uintptr_t end;
    };

    static constexpr std::size_t kMinChunkBytes = 1024;

    void grow(std::size_t bytes, std::size_t alignment) {
        // Advance through retained chunks first; only carve a fresh one
        // when the request cannot fit in anything already owned.
        Chunk* next = current_ != nullptr ? current_->next : head_;
        while (next != nullptr) {
            const std::uintptr_t aligned =
                (next->begin + (alignment - 1)) &
                ~static_cast<std::uintptr_t>(alignment - 1);
            if (aligned + bytes <= next->end) {
                current_ = next;
                cursor_ = next->begin;
                return;
            }
            next = next->next;
        }
        std::size_t chunk_bytes = next_chunk_bytes_;
        while (chunk_bytes < bytes + alignment) chunk_bytes *= 2;
        next_chunk_bytes_ = chunk_bytes * 2;
        // lint:allow-hot-path-alloc(amortized cold path; queries reuse chunks)
        auto* raw = static_cast<char*>(
            ::operator new(sizeof(Chunk) + chunk_bytes));
        ++chunk_allocs_;
        retained_bytes_ += chunk_bytes;
        auto* chunk = new (raw) Chunk{};
        chunk->begin = reinterpret_cast<std::uintptr_t>(raw + sizeof(Chunk));
        chunk->end = chunk->begin + chunk_bytes;
        // Append so reset() replays chunks in a stable order.
        chunk->next = nullptr;
        if (current_ != nullptr) {
            current_->next = chunk;
        } else {
            head_ = chunk;
        }
        current_ = chunk;
        cursor_ = chunk->begin;
    }

    Chunk* head_ = nullptr;
    Chunk* current_ = nullptr;
    std::uintptr_t cursor_ = 0;
    std::size_t next_chunk_bytes_;
    std::uint64_t chunk_allocs_ = 0;
    std::size_t retained_bytes_ = 0;
};

/// Growable array of trivially-copyable elements carved from an Arena.
/// Non-owning: the storage dies (logically) at the arena's next reset,
/// so an ArenaVec must never escape the query that created it. Growth
/// doubles and memcpy-moves, so iterators/pointers are invalidated by
/// push_back — identical discipline to std::vector.
template <typename T>
class ArenaVec {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "ArenaVec relies on memcpy growth and no destructors");

public:
    explicit ArenaVec(Arena& arena, std::size_t initial_capacity = 0)
        : arena_(&arena) {
        if (initial_capacity != 0) {
            data_ = arena_->alloc_array<T>(initial_capacity);
            capacity_ = initial_capacity;
        }
    }

    T* begin() noexcept { return data_; }
    T* end() noexcept { return data_ + size_; }
    const T* begin() const noexcept { return data_; }
    const T* end() const noexcept { return data_ + size_; }
    T* data() noexcept { return data_; }
    const T* data() const noexcept { return data_; }
    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }
    T& operator[](std::size_t i) noexcept { return data_[i]; }
    const T& operator[](std::size_t i) const noexcept { return data_[i]; }
    T& back() noexcept { return data_[size_ - 1]; }

    void clear() noexcept { size_ = 0; }

    void push_back(const T& value) {
        if (size_ == capacity_) grow();
        data_[size_++] = value;
    }

    void pop_back() noexcept { --size_; }

    /// Shrinks to `n` elements (n <= size()); never grows.
    void truncate(std::size_t n) noexcept {
        SARIADNE_ASSERT(n <= size_);
        size_ = n;
    }

private:
    void grow() {
        const std::size_t new_capacity = capacity_ == 0 ? 16 : capacity_ * 2;
        T* fresh = arena_->alloc_array<T>(new_capacity);
        if (size_ != 0) std::memcpy(fresh, data_, size_ * sizeof(T));
        data_ = fresh;
        capacity_ = new_capacity;
    }

    Arena* arena_;
    T* data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t capacity_ = 0;
};

/// Fixed-capacity bitset carved from an Arena; capacity is chosen at
/// construction (bit_capacity bits, rounded up to whole words) and bits
/// at or past the capacity read as zero and must not be set.
class ArenaBitset {
public:
    ArenaBitset(Arena& arena, std::size_t bit_capacity)
        : words_(arena.alloc_array<std::uint64_t>((bit_capacity + 63) >> 6)),
          word_count_((bit_capacity + 63) >> 6) {
        std::memset(words_, 0, word_count_ * sizeof(std::uint64_t));
    }

    bool test(std::size_t index) const noexcept {
        const std::size_t word = index >> 6;
        return word < word_count_ &&
               (words_[word] >> (index & 63u) & 1u) != 0;
    }

    void set(std::size_t index) noexcept {
        SARIADNE_ASSERT((index >> 6) < word_count_);
        words_[index >> 6] |= std::uint64_t{1} << (index & 63u);
    }

    /// this |= other, clamped to this bitset's capacity. Sound for the
    /// DAG doom sets: every reachable vertex id is below the capacity
    /// the query sized the bitset with.
    void or_with_clamped(const std::uint64_t* other_words,
                         std::size_t other_word_count) noexcept {
        const std::size_t n =
            other_word_count < word_count_ ? other_word_count : word_count_;
        for (std::size_t i = 0; i < n; ++i) words_[i] |= other_words[i];
    }

    void clear() noexcept {
        std::memset(words_, 0, word_count_ * sizeof(std::uint64_t));
    }

private:
    std::uint64_t* words_;
    std::size_t word_count_;
};

/// The per-thread scratch arena used by the query hot path. Thread-local
/// so concurrent queries never share scratch; reset at each query entry
/// point (SemanticDirectory::query_capability_into, CapabilityDag::insert).
inline Arena& query_scratch_arena() {
    thread_local Arena arena;
    return arena;
}

}  // namespace sariadne::support
