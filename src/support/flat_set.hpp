// Sorted-vector set with the operations the matcher and DAG index need:
// subset tests, intersection emptiness, and order-independent hashing.
// Ontology sets attached to capabilities are tiny (1-5 elements), so a
// sorted vector beats node-based sets on every axis (Core Guidelines
// Per.19: prefer compact data).
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "support/hash.hpp"

namespace sariadne {

template <typename T>
class FlatSet {
public:
    using const_iterator = typename std::vector<T>::const_iterator;

    FlatSet() = default;

    FlatSet(std::initializer_list<T> items) : items_(items) { normalize(); }

    explicit FlatSet(std::vector<T> items) : items_(std::move(items)) {
        normalize();
    }

    /// Inserts a value; returns true if it was not already present.
    bool insert(const T& value) {
        const auto it = std::lower_bound(items_.begin(), items_.end(), value);
        if (it != items_.end() && *it == value) return false;
        items_.insert(it, value);
        return true;
    }

    bool contains(const T& value) const noexcept {
        return std::binary_search(items_.begin(), items_.end(), value);
    }

    /// True if every element of this set is in `other`.
    bool subset_of(const FlatSet& other) const noexcept {
        return std::includes(other.items_.begin(), other.items_.end(),
                             items_.begin(), items_.end());
    }

    /// True if the two sets share at least one element.
    bool intersects(const FlatSet& other) const noexcept {
        auto a = items_.begin();
        auto b = other.items_.begin();
        while (a != items_.end() && b != other.items_.end()) {
            if (*a < *b) ++a;
            else if (*b < *a) ++b;
            else return true;
        }
        return false;
    }

    /// Set union, returned by value.
    FlatSet united_with(const FlatSet& other) const {
        FlatSet result;
        result.items_.reserve(items_.size() + other.items_.size());
        std::set_union(items_.begin(), items_.end(), other.items_.begin(),
                       other.items_.end(), std::back_inserter(result.items_));
        return result;
    }

    std::size_t size() const noexcept { return items_.size(); }
    bool empty() const noexcept { return items_.empty(); }
    const_iterator begin() const noexcept { return items_.begin(); }
    const_iterator end() const noexcept { return items_.end(); }
    const std::vector<T>& items() const noexcept { return items_; }

    friend bool operator==(const FlatSet& a, const FlatSet& b) = default;

private:
    void normalize() {
        std::sort(items_.begin(), items_.end());
        items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
    }

    std::vector<T> items_;
};

/// Order-independent 64-bit hash of a FlatSet whose elements expose a
/// `hash_value()`-compatible projection supplied by the caller.
template <typename T, typename Projection>
std::uint64_t hash_set(const FlatSet<T>& set, Projection&& project) noexcept {
    std::uint64_t acc = 0x5E7A5E7A5E7A5E7AULL;
    for (const auto& item : set) acc = combine_unordered(acc, project(item));
    return mix64(acc);
}

}  // namespace sariadne
