// Lock-rank deadlock checker — every mutex in the system is annotated with
// a rank from one global hierarchy, and debug builds maintain a
// thread-local stack of held ranks: acquiring a lock whose rank is not
// strictly greater than the innermost held rank throws ContractViolation
// (kind == ContractKind::kLockRank) at the offending acquisition site.
// Any lock-order inversion therefore fails deterministically in every
// test run — no need to actually interleave into the deadlock — while
// release builds compile the wrappers down to bare std::mutex /
// std::shared_mutex pass-throughs (the rank byte is the only overhead).
//
// The hierarchy (outermost = lowest rank, must be acquired first):
//
//   kEnginePool           DiscoveryEngine::pool_mutex_
//   kDirectorySummary     SemanticDirectory::summary_mutex_
//   kDirectoryServices    SemanticDirectory::services_mutex_
//   kDagShard             DagIndex::Shard::mutex (never two shards nested)
//   kKnowledgeBaseTables  KnowledgeBase::tables_mutex_
//   kTaxonomyCache        TaxonomyCache::mutex_
//   kMetricsRegistry      obs::MetricsRegistry::mutex_
//   kTransportQueue       net::EventLoopTransport::post_mutex_
//
// The two real multi-lock paths this encodes:
//   * SemanticDirectory::rebuild_summary holds summary before services;
//   * a DAG probe holds its shard lock while the oracle faults in a code
//     table (KnowledgeBase reader lock), whose first build classifies
//     under the TaxonomyCache mutex.
// Same-rank nesting is forbidden (DagIndex locks shards one at a time).
// kTransportQueue is the innermost leaf: the event loop's cross-thread
// post queue is locked only to swap the pending vector, never while
// calling out into protocol or registry code.
//
// support::ThreadPool keeps a naked std::mutex: std::condition_variable
// requires the concrete type, and its queue mutex is a leaf that never
// nests (see the lint suppression at its declaration).
//
// Checking is enabled when SARIADNE_LOCKRANK_CHECKS is defined non-zero
// (the SARIADNE_LOCKRANK CMake option) or, by default, in builds without
// NDEBUG. Tests that must exercise the checker regardless of build type
// instantiate BasicRankedMutex<true> directly.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <source_location>
#include <string>
#include <string_view>

#include "support/contracts.hpp"

#ifndef SARIADNE_LOCKRANK_CHECKS
#ifdef NDEBUG
#define SARIADNE_LOCKRANK_CHECKS 0
#else
#define SARIADNE_LOCKRANK_CHECKS 1
#endif
#endif

namespace sariadne::support {

/// The global lock hierarchy. Values are spaced so a future mutex slots
/// between existing layers without renumbering everything.
enum class LockRank : std::uint8_t {
    kEnginePool = 10,
    kDirectorySummary = 20,
    kDirectoryServices = 30,
    kDagShard = 40,
    kKnowledgeBaseTables = 50,
    kTaxonomyCache = 60,
    kMetricsRegistry = 70,
    kTransportQueue = 80,
};

constexpr std::string_view to_string(LockRank rank) noexcept {
    switch (rank) {
        case LockRank::kEnginePool: return "engine-pool";
        case LockRank::kDirectorySummary: return "directory-summary";
        case LockRank::kDirectoryServices: return "directory-services";
        case LockRank::kDagShard: return "dag-shard";
        case LockRank::kKnowledgeBaseTables: return "knowledge-base-tables";
        case LockRank::kTaxonomyCache: return "taxonomy-cache";
        case LockRank::kMetricsRegistry: return "metrics-registry";
        case LockRank::kTransportQueue: return "transport-queue";
    }
    return "unknown-rank";
}

namespace lockrank_detail {

/// Per-thread stack of held ranks. A fixed array: real lock depth in this
/// codebase is <= 3, and exceeding the bound is itself reported.
struct HeldStack {
    static constexpr std::size_t kMaxDepth = 16;
    std::array<LockRank, kMaxDepth> ranks{};
    std::size_t depth = 0;
};

inline HeldStack& held() noexcept {
    thread_local HeldStack stack;
    return stack;
}

/// Throws ContractViolation (kind kLockRank) when acquiring `rank` would
/// violate the strictly-ascending discipline for the calling thread.
inline void check_order(LockRank rank, const std::source_location& loc) {
    const HeldStack& stack = held();
    if (stack.depth == 0) return;
    const LockRank top = stack.ranks[stack.depth - 1];
    if (static_cast<std::uint8_t>(top) < static_cast<std::uint8_t>(rank)) {
        return;
    }
    throw ContractViolation(
        ContractKind::kLockRank,
        "acquire " + std::string(to_string(rank)) + " while holding " +
            std::string(to_string(top)) +
            " (ranks must be strictly ascending)",
        loc.file_name(), static_cast<int>(loc.line()));
}

inline void push(LockRank rank, const std::source_location& loc) {
    HeldStack& stack = held();
    if (stack.depth >= HeldStack::kMaxDepth) {
        throw ContractViolation(ContractKind::kLockRank,
                                "held-lock stack overflow (depth > 16)",
                                loc.file_name(),
                                static_cast<int>(loc.line()));
    }
    stack.ranks[stack.depth++] = rank;
}

/// Removes the innermost held entry of `rank`. Tolerates out-of-LIFO
/// release (unique_lock juggling) by shifting; releasing a rank that is
/// not held is ignored — it can only arise from misuse of raw unlock and
/// must not throw from a noexcept unwind path.
inline void pop(LockRank rank) noexcept {
    HeldStack& stack = held();
    for (std::size_t i = stack.depth; i > 0; --i) {
        if (stack.ranks[i - 1] == rank) {
            for (std::size_t j = i - 1; j + 1 < stack.depth; ++j) {
                stack.ranks[j] = stack.ranks[j + 1];
            }
            --stack.depth;
            return;
        }
    }
}

/// Held-lock count of the calling thread (test introspection).
inline std::size_t held_count() noexcept { return held().depth; }

}  // namespace lockrank_detail

/// Rank-annotated std::mutex. Checked == true validates the hierarchy on
/// every acquisition; Checked == false is a zero-cost pass-through.
/// Meets Lockable, so std::lock_guard / std::unique_lock /
/// std::scoped_lock work unchanged.
template <bool Checked>
class BasicRankedMutex {
public:
    explicit BasicRankedMutex(LockRank rank) noexcept : rank_(rank) {}

    BasicRankedMutex(const BasicRankedMutex&) = delete;
    BasicRankedMutex& operator=(const BasicRankedMutex&) = delete;

    void lock(const std::source_location& loc =
                  std::source_location::current()) {
        if constexpr (Checked) lockrank_detail::check_order(rank_, loc);
        mutex_.lock();
        if constexpr (Checked) lockrank_detail::push(rank_, loc);
    }

    bool try_lock(const std::source_location& loc =
                      std::source_location::current()) {
        // Order discipline applies to try-acquisitions too: the codebase's
        // try-then-block pattern (DagIndex contention counting) falls back
        // to a blocking lock on failure, so an inverted try is an inverted
        // lock waiting to happen.
        if constexpr (Checked) lockrank_detail::check_order(rank_, loc);
        const bool acquired = mutex_.try_lock();
        if constexpr (Checked) {
            if (acquired) lockrank_detail::push(rank_, loc);
        }
        return acquired;
    }

    void unlock() noexcept {
        mutex_.unlock();
        if constexpr (Checked) lockrank_detail::pop(rank_);
    }

    LockRank rank() const noexcept { return rank_; }

private:
    LockRank rank_;
    std::mutex mutex_;
};

/// Rank-annotated std::shared_mutex. Shared and exclusive acquisitions
/// participate in the same hierarchy (a reader that later wants a
/// lower-rank writer deadlocks just as hard). Meets SharedLockable.
template <bool Checked>
class BasicRankedSharedMutex {
public:
    explicit BasicRankedSharedMutex(LockRank rank) noexcept : rank_(rank) {}

    BasicRankedSharedMutex(const BasicRankedSharedMutex&) = delete;
    BasicRankedSharedMutex& operator=(const BasicRankedSharedMutex&) = delete;

    void lock(const std::source_location& loc =
                  std::source_location::current()) {
        if constexpr (Checked) lockrank_detail::check_order(rank_, loc);
        mutex_.lock();
        if constexpr (Checked) lockrank_detail::push(rank_, loc);
    }

    bool try_lock(const std::source_location& loc =
                      std::source_location::current()) {
        if constexpr (Checked) lockrank_detail::check_order(rank_, loc);
        const bool acquired = mutex_.try_lock();
        if constexpr (Checked) {
            if (acquired) lockrank_detail::push(rank_, loc);
        }
        return acquired;
    }

    void unlock() noexcept {
        mutex_.unlock();
        if constexpr (Checked) lockrank_detail::pop(rank_);
    }

    void lock_shared(const std::source_location& loc =
                         std::source_location::current()) {
        if constexpr (Checked) lockrank_detail::check_order(rank_, loc);
        mutex_.lock_shared();
        if constexpr (Checked) lockrank_detail::push(rank_, loc);
    }

    bool try_lock_shared(const std::source_location& loc =
                             std::source_location::current()) {
        if constexpr (Checked) lockrank_detail::check_order(rank_, loc);
        const bool acquired = mutex_.try_lock_shared();
        if constexpr (Checked) {
            if (acquired) lockrank_detail::push(rank_, loc);
        }
        return acquired;
    }

    void unlock_shared() noexcept {
        mutex_.unlock_shared();
        if constexpr (Checked) lockrank_detail::pop(rank_);
    }

    LockRank rank() const noexcept { return rank_; }

private:
    LockRank rank_;
    std::shared_mutex mutex_;
};

inline constexpr bool kLockRankChecksEnabled = SARIADNE_LOCKRANK_CHECKS != 0;

using RankedMutex = BasicRankedMutex<kLockRankChecksEnabled>;
using RankedSharedMutex = BasicRankedSharedMutex<kLockRankChecksEnabled>;

}  // namespace sariadne::support
