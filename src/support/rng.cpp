#include "support/rng.hpp"

#include <cmath>

namespace sariadne {

double Rng::exponential(double mean) noexcept {
    // Inverse transform sampling; guard against log(0).
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
}

}  // namespace sariadne
