// String interning. Ontology concept names and URIs are compared and hashed
// constantly during matching; interning turns those comparisons into integer
// comparisons and keeps the capability DAGs compact. A Symbol is an index
// into its pool; pools are values (no global interner) so independent
// directories never contend or share lifetime.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "support/contracts.hpp"

namespace sariadne {

/// An interned string handle. Only meaningful relative to the StringPool
/// that produced it; the pool's accessors check bounds.
class Symbol {
public:
    constexpr Symbol() noexcept : index_(kInvalid) {}
    constexpr explicit Symbol(std::uint32_t index) noexcept : index_(index) {}

    constexpr bool valid() const noexcept { return index_ != kInvalid; }
    constexpr std::uint32_t index() const noexcept { return index_; }

    friend constexpr bool operator==(Symbol a, Symbol b) noexcept = default;
    friend constexpr auto operator<=>(Symbol a, Symbol b) noexcept = default;

private:
    static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;
    std::uint32_t index_;
};

/// Owning interner. Insertion is amortized O(1); lookup of text by Symbol is
/// O(1). Symbols are dense indices, so they double as array subscripts.
class StringPool {
public:
    StringPool() = default;

    /// Interns `text`, returning the existing Symbol if already present.
    Symbol intern(std::string_view text) {
        if (const auto it = index_.find(text); it != index_.end()) {
            return it->second;
        }
        const Symbol sym(static_cast<std::uint32_t>(strings_.size()));
        strings_.emplace_back(text);
        index_.emplace(strings_.back(), sym);
        return sym;
    }

    /// Returns the Symbol for `text` if interned, or an invalid Symbol.
    Symbol find(std::string_view text) const noexcept {
        const auto it = index_.find(text);
        return it == index_.end() ? Symbol() : it->second;
    }

    /// Text of an interned symbol. Precondition: sym came from this pool.
    std::string_view text(Symbol sym) const {
        SARIADNE_EXPECTS(sym.valid() && sym.index() < strings_.size());
        return strings_[sym.index()];
    }

    std::size_t size() const noexcept { return strings_.size(); }

    // The index map stores string_views into strings_; moving the pool would
    // dangle them on small-string-optimized entries, so pools are pinned.
    StringPool(const StringPool&) = delete;
    StringPool& operator=(const StringPool&) = delete;
    StringPool(StringPool&&) = delete;
    StringPool& operator=(StringPool&&) = delete;

private:
    struct ViewHash {
        using is_transparent = void;
        std::size_t operator()(std::string_view s) const noexcept {
            return std::hash<std::string_view>{}(s);
        }
    };
    struct ViewEq {
        using is_transparent = void;
        bool operator()(std::string_view a, std::string_view b) const noexcept {
            return a == b;
        }
    };

    // deque: growth never moves stored strings, so the string_view keys in
    // index_ stay valid even for SSO-sized entries.
    std::deque<std::string> strings_;
    std::unordered_map<std::string_view, Symbol, ViewHash, ViewEq> index_;
};

}  // namespace sariadne
