// catching<T> — the one mapping from the exception taxonomy of
// support/errors.hpp to Result's ErrorInfo. Every non-throwing facade
// (DiscoveryEngine::try_*, xml::try_parse, desc::try_parse_*) funnels
// through this function so the exception→code classification cannot
// drift between entry points.
#pragma once

#include <exception>
#include <utility>

#include "support/errors.hpp"
#include "support/result.hpp"

namespace sariadne::support {

template <typename T, typename Fn>
Result<T> catching(Fn&& body) {
    try {
        return Result<T>(std::forward<Fn>(body)());
    } catch (const ParseError& e) {
        return Result<T>(ErrorInfo{ErrorCode::kParse, e.what()});
    } catch (const LookupError& e) {
        return Result<T>(ErrorInfo{ErrorCode::kLookup, e.what()});
    } catch (const InconsistencyError& e) {
        return Result<T>(ErrorInfo{ErrorCode::kInconsistency, e.what()});
    } catch (const VersionMismatchError& e) {
        return Result<T>(ErrorInfo{ErrorCode::kVersionMismatch, e.what()});
    } catch (const std::exception& e) {
        return Result<T>(ErrorInfo{ErrorCode::kInternal, e.what()});
    }
}

}  // namespace sariadne::support
