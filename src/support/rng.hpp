// Deterministic pseudo-random number generation for workload synthesis and
// the network simulator. We implement SplitMix64 (seeding) and xoshiro256**
// (bulk generation) from scratch so results are reproducible across
// platforms and standard-library versions — std::mt19937 would also be
// portable, but xoshiro is faster and the seeding discipline here is
// explicit (Core Guidelines: avoid hidden global state).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace sariadne {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// xoshiro256**: the library's workhorse generator. Satisfies
/// std::uniform_random_bit_generator so it composes with <random>
/// distributions if ever needed, but the members below cover our needs
/// without distribution-object portability concerns.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
    explicit Rng(std::uint64_t seed = 0x5EEDBA5EDEADBEEFULL) noexcept {
        SplitMix64 sm(seed);
        for (auto& word : state_) word = sm.next();
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
    /// method to avoid modulo bias. bound must be nonzero.
    std::uint64_t below(std::uint64_t bound) noexcept {
        // Debiased multiply: retry while in the biased low range.
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto low = static_cast<std::uint64_t>(m);
        if (low < bound) {
            const std::uint64_t threshold = (0 - bound) % bound;
            while (low < threshold) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * bound;
                low = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(below(span));
    }

    /// Uniform double in [0, 1).
    double uniform() noexcept {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// Bernoulli trial with probability p of returning true.
    bool chance(double p) noexcept { return uniform() < p; }

    /// Exponentially distributed double with the given mean (> 0).
    double exponential(double mean) noexcept;

    /// Fisher-Yates shuffle of a random-access range.
    template <typename RandomIt>
    void shuffle(RandomIt first, RandomIt last) noexcept {
        const auto n = static_cast<std::uint64_t>(last - first);
        for (std::uint64_t i = n; i > 1; --i) {
            const std::uint64_t j = below(i);
            using std::swap;
            swap(first[i - 1], first[j]);
        }
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

}  // namespace sariadne
