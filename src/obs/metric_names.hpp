// The metric-name table. Every metric a src/ component creates in an
// obs::MetricsRegistry is declared here, so the full exposition surface is
// reviewable in one place and renames cannot silently fork a series
// (dashboards key on these strings). sariadne-analyze enforces the
// rule: no quoted name literal may be passed to counter()/gauge()/
// histogram()/span() anywhere under src/ — call sites reference these
// constants (tests and benches may still create ad-hoc metrics).
//
// Naming scheme (see obs/metrics.hpp): `<layer>.<quantity>[{key="value"}]`,
// `_ms` suffix for millisecond histograms.
#pragma once

#include <string>
#include <string_view>

namespace sariadne::obs::names {

// --- engine.* (core/discovery_engine.hpp) -------------------------------
inline constexpr std::string_view kEngineDiscoveries = "engine.discoveries";
inline constexpr std::string_view kEngineDiscoveriesParallel =
    "engine.discoveries{mode=\"parallel\"}";
inline constexpr std::string_view kEngineDiscoveriesSatisfied =
    "engine.discoveries_satisfied";
inline constexpr std::string_view kEngineDiscoveriesUnsatisfied =
    "engine.discoveries_unsatisfied";
inline constexpr std::string_view kEnginePoolTasks = "engine.pool_tasks";
inline constexpr std::string_view kEnginePoolWorkers = "engine.pool_workers";
inline constexpr std::string_view kEngineDiscoverMs = "engine.discover_ms";

// --- directory.* (directory/semantic_directory.hpp) ---------------------
inline constexpr std::string_view kDirectoryPublishes = "directory.publishes";
inline constexpr std::string_view kDirectoryRemovals = "directory.removals";
inline constexpr std::string_view kDirectoryQueries = "directory.queries";
inline constexpr std::string_view kDirectorySummaryRebuilds =
    "directory.summary_rebuilds";
inline constexpr std::string_view kDirectoryCapabilityMatches =
    "directory.capability_matches";
inline constexpr std::string_view kDirectoryConceptQueries =
    "directory.concept_queries";
inline constexpr std::string_view kDirectoryDagsVisited =
    "directory.dags_visited";
inline constexpr std::string_view kDirectoryDagsPruned =
    "directory.dags_pruned";
inline constexpr std::string_view kDirectoryServices = "directory.services";
inline constexpr std::string_view kDirectoryShardContention =
    "directory.shard_contention";
inline constexpr std::string_view kDirectoryPublishParseMs =
    "directory.publish_parse_ms";
inline constexpr std::string_view kDirectoryPublishInsertMs =
    "directory.publish_insert_ms";
inline constexpr std::string_view kDirectoryQueryParseMs =
    "directory.query_parse_ms";
inline constexpr std::string_view kDirectoryQueryMatchMs =
    "directory.query_match_ms";

// --- matching.* ---------------------------------------------------------
inline constexpr std::string_view kMatchingQuickRejects =
    "matching.quick_rejects";
inline constexpr std::string_view kMatchingReachabilityPrunes =
    "matching.reachability_prunes";
inline constexpr std::string_view kMatchingQueryAllocs =
    "matching.query_allocs";

// --- directory batch publish (directory/semantic_directory.hpp) ---------
inline constexpr std::string_view kDirectoryPublishBatches =
    "directory.publish_batches";

// --- sim.* (net/simulator.cpp) ------------------------------------------
inline constexpr std::string_view kSimUnicasts = "sim.unicasts";
inline constexpr std::string_view kSimBroadcasts = "sim.broadcasts";
inline constexpr std::string_view kSimDeliveries = "sim.deliveries";
inline constexpr std::string_view kSimLinkTransmissions =
    "sim.link_transmissions";
inline constexpr std::string_view kSimBytesTransmitted =
    "sim.bytes_transmitted";
inline constexpr std::string_view kSimDroppedUnreachable =
    "sim.dropped_unreachable";
inline constexpr std::string_view kSimFaultsDropped = "sim.faults_dropped";
inline constexpr std::string_view kSimFaultsDuplicated =
    "sim.faults_duplicated";
inline constexpr std::string_view kSimFaultsCrashes = "sim.faults_crashes";
inline constexpr std::string_view kSimFaultsRecoveries =
    "sim.faults_recoveries";
inline constexpr std::string_view kSimPendingEvents = "sim.pending_events";
inline constexpr std::string_view kSimNowMs = "sim.now_ms";

/// The one sanctioned dynamic name: the per-message-type delivery
/// breakdown, `sim.deliveries{type="<msg.type>"}`. Kept as a function so
/// the label shape stays uniform across the exposition.
inline std::string sim_deliveries_by_type(std::string_view type) {
    std::string name = "sim.deliveries{type=\"";
    name += type;
    name += "\"}";
    return name;
}

// --- protocol.* (ariadne/protocol.cpp) ----------------------------------
inline constexpr std::string_view kProtocolRequestsIssued =
    "protocol.requests_issued";
inline constexpr std::string_view kProtocolRequestsRetried =
    "protocol.requests_retried";
inline constexpr std::string_view kProtocolRequestsExpired =
    "protocol.requests_expired";
inline constexpr std::string_view kProtocolRequestsSatisfied =
    "protocol.requests_satisfied";
inline constexpr std::string_view kProtocolRequestsUnsatisfied =
    "protocol.requests_unsatisfied";
inline constexpr std::string_view kProtocolResponses = "protocol.responses";
inline constexpr std::string_view kProtocolForwards = "protocol.forwards";
inline constexpr std::string_view kProtocolElectionsStarted =
    "protocol.elections_started";
inline constexpr std::string_view kProtocolDirectoriesElected =
    "protocol.directories_elected";
inline constexpr std::string_view kProtocolHandovers = "protocol.handovers";
inline constexpr std::string_view kProtocolSummaryPushes =
    "protocol.summary_pushes";
inline constexpr std::string_view kProtocolSummaryPulls =
    "protocol.summary_pulls";
inline constexpr std::string_view kProtocolSummaryPullReplies =
    "protocol.summary_pull_replies";
inline constexpr std::string_view kProtocolBloomFalsePositives =
    "protocol.bloom_false_positives";
inline constexpr std::string_view kProtocolBloomWireRejected =
    "protocol.bloom_wire_rejected";
inline constexpr std::string_view kProtocolPendingReaped =
    "protocol.pending_reaped";
inline constexpr std::string_view kProtocolPublishesAcked =
    "protocol.publishes_acked";
inline constexpr std::string_view kProtocolPublishesRetried =
    "protocol.publishes_retried";
inline constexpr std::string_view kProtocolPublishesExpired =
    "protocol.publishes_expired";
inline constexpr std::string_view kProtocolPublishNacks =
    "protocol.publish_nacks";
inline constexpr std::string_view kProtocolDuplicatesDropped =
    "protocol.duplicates_dropped";
inline constexpr std::string_view kProtocolMalformedPublishes =
    "protocol.malformed_publishes";
inline constexpr std::string_view kProtocolMalformedRequests =
    "protocol.malformed_requests";
inline constexpr std::string_view kProtocolRequestsInFlight =
    "protocol.requests_in_flight";
inline constexpr std::string_view kProtocolDirectories =
    "protocol.directories";
inline constexpr std::string_view kProtocolRetryBacklog =
    "protocol.retry_backlog";
inline constexpr std::string_view kProtocolPublishOutstanding =
    "protocol.publish_outstanding";
inline constexpr std::string_view kProtocolDeferredPublishes =
    "protocol.deferred_publishes";
inline constexpr std::string_view kProtocolDeferredRequests =
    "protocol.deferred_requests";
inline constexpr std::string_view kProtocolResponseMs =
    "protocol.response_ms";
inline constexpr std::string_view kProtocolDirectoryComputeMs =
    "protocol.directory_compute_ms";
inline constexpr std::string_view kProtocolSummaryBytesSent =
    "protocol.summary_bytes_sent";
inline constexpr std::string_view kProtocolSummaryDeltaPushes =
    "protocol.summary_delta_pushes";
inline constexpr std::string_view kProtocolForwardsSavedExact =
    "protocol.forwards_saved_exact";

// --- transport.* (net/event_loop.cpp) -----------------------------------
inline constexpr std::string_view kTransportConnectionsAccepted =
    "transport.connections_accepted";
inline constexpr std::string_view kTransportConnectionsClosed =
    "transport.connections_closed";
inline constexpr std::string_view kTransportConnectionsActive =
    "transport.connections_active";
inline constexpr std::string_view kTransportConnectionsRejected =
    "transport.connections_rejected";
inline constexpr std::string_view kTransportFramesSent =
    "transport.frames_sent";
inline constexpr std::string_view kTransportFramesReceived =
    "transport.frames_received";
inline constexpr std::string_view kTransportBytesSent =
    "transport.bytes_sent";
inline constexpr std::string_view kTransportBytesReceived =
    "transport.bytes_received";
inline constexpr std::string_view kTransportDecodeErrors =
    "transport.decode_errors";
inline constexpr std::string_view kTransportOversizedFrames =
    "transport.oversized_frames";
inline constexpr std::string_view kTransportBackpressureDrops =
    "transport.backpressure_drops";
inline constexpr std::string_view kTransportWriteQueueBytes =
    "transport.write_queue_bytes";

}  // namespace sariadne::obs::names
