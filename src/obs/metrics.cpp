#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace sariadne::obs {

namespace {

/// `name{key="value"}` → metric part and label part (label part keeps its
/// braces; empty when the name carries no labels).
std::pair<std::string_view, std::string_view> split_labels(
    std::string_view name) {
    const auto brace = name.find('{');
    if (brace == std::string_view::npos) return {name, {}};
    return {name.substr(0, brace), name.substr(brace)};
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; dots become underscores.
std::string sanitize(std::string_view metric) {
    std::string out = "sariadne_";
    for (const char c : metric) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    return out;
}

std::string format_double(double value) {
    if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    return buffer;
}

void append_json_string(std::string& out, std::string_view text) {
    out.push_back('"');
    for (const char c : text) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
    out.push_back('"');
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
    std::sort(bounds_.begin(), bounds_.end());
    for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double value) noexcept {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // fetch_add on atomic<double> is C++20; keep the CAS loop for
    // toolchains that lower it to a libcall anyway.
    double expected = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(expected, expected + value,
                                       std::memory_order_relaxed)) {
    }
}

const std::vector<double>& Histogram::latency_ms_bounds() {
    static const std::vector<double> bounds{
        0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0,    2.5,
        5.0,  10.0,  25.0, 50.0, 100.0, 250.0, 1000.0, 10000.0};
    return bounds;
}

Counter& MetricsRegistry::counter(std::string_view name) {
    std::lock_guard lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_.emplace(std::string(name), std::make_unique<Counter>())
                 .first;
    }
    return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
    std::lock_guard lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
                 .first;
    }
    return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const std::vector<double>& bounds) {
    std::lock_guard lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(std::string(name), std::make_unique<Histogram>(bounds))
                 .first;
    }
    return *it->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
    std::lock_guard lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second->value();
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name) const {
    std::lock_guard lock(mutex_);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second->value();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
    std::lock_guard lock(mutex_);
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second.get();
}

std::string MetricsRegistry::to_prometheus() const {
    std::lock_guard lock(mutex_);
    std::string out;
    for (const auto& [name, counter] : counters_) {
        const auto [metric, labels] = split_labels(name);
        out += sanitize(metric) + "_total" + std::string(labels) + " " +
               std::to_string(counter->value()) + "\n";
    }
    for (const auto& [name, gauge] : gauges_) {
        const auto [metric, labels] = split_labels(name);
        out += sanitize(metric) + std::string(labels) + " " +
               std::to_string(gauge->value()) + "\n";
    }
    for (const auto& [name, histogram] : histograms_) {
        const auto [metric, labels] = split_labels(name);
        const std::string base = sanitize(metric);
        // Labeled histograms would need le merged into the label set; the
        // registry's users label counters/gauges only.
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < histogram->bounds().size(); ++i) {
            cumulative += histogram->bucket(i);
            out += base + "_bucket{le=\"" +
                   format_double(histogram->bounds()[i]) + "\"} " +
                   std::to_string(cumulative) + "\n";
        }
        cumulative += histogram->bucket(histogram->bounds().size());
        out += base + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
               "\n";
        out += base + "_sum " + format_double(histogram->sum()) + "\n";
        out += base + "_count " + std::to_string(histogram->count()) + "\n";
    }
    return out;
}

std::string MetricsRegistry::to_json() const {
    std::lock_guard lock(mutex_);
    std::string out = "{";
    bool first = true;
    const auto comma = [&] {
        if (!first) out += ",";
        first = false;
    };
    for (const auto& [name, counter] : counters_) {
        comma();
        append_json_string(out, name);
        out += ":" + std::to_string(counter->value());
    }
    for (const auto& [name, gauge] : gauges_) {
        comma();
        append_json_string(out, name);
        out += ":" + std::to_string(gauge->value());
    }
    for (const auto& [name, histogram] : histograms_) {
        comma();
        append_json_string(out, name);
        out += ":{\"count\":" + std::to_string(histogram->count()) +
               ",\"sum\":" + format_double(histogram->sum()) +
               ",\"mean\":" + format_double(histogram->mean()) +
               ",\"buckets\":[";
        for (std::size_t i = 0; i <= histogram->bounds().size(); ++i) {
            if (i > 0) out += ",";
            out += "[";
            out += i < histogram->bounds().size()
                       ? "\"" + format_double(histogram->bounds()[i]) + "\""
                       : "\"+Inf\"";
            out += "," + std::to_string(histogram->bucket(i)) + "]";
        }
        out += "]}";
    }
    out += "}";
    return out;
}

}  // namespace sariadne::obs
