// Observability substrate: a process-wide-shareable MetricsRegistry of
// lock-cheap counters, gauges and fixed-bucket latency histograms, plus a
// scoped-span tracer for per-phase timing. The paper's whole evaluation
// (§4, Figs. 7-10) is latency/traffic accounting; this module makes those
// quantities first-class so every layer (directory, engine, protocol,
// simulator) reports into one registry instead of per-bench stopwatches.
//
// Concurrency model (matches the directory layer's locking design):
// metric *values* are relaxed atomics — inc/observe on the hot path is a
// handful of uncontended fetch_adds, never a lock. The registry map
// itself is guarded by a mutex, but lookups only happen when a handle is
// first created; instrumented components resolve their handles once at
// construction and keep `Counter&`/`Histogram&` references, which stay
// valid for the registry's lifetime (values are node-allocated and never
// move). Totals read while writers are active are per-metric exact but
// not a cross-metric snapshot; coherence assertions (e.g. issued ==
// satisfied + expired + in_flight) hold once writers quiesce.
//
// Naming scheme: dot-separated `<layer>.<quantity>[{key="value"}]`, e.g.
// `protocol.requests_expired` or `sim.deliveries{type="fwd"}`. Histogram
// names end in `_ms` when they record milliseconds. The Prometheus sink
// sanitizes dots to underscores and prefixes `sariadne_`; the JSON sink
// keeps names verbatim.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/lock_rank.hpp"
#include "support/stopwatch.hpp"

namespace sariadne::obs {

/// Monotonically increasing event count. Relaxed atomic: totals are exact
/// once writers quiesce, and never torn.
class Counter {
public:
    void inc(std::uint64_t n = 1) noexcept {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depths, backbone size). May go down.
class Gauge {
public:
    void set(std::int64_t value) noexcept {
        value_.store(value, std::memory_order_relaxed);
    }

    void add(std::int64_t n) noexcept {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    void sub(std::int64_t n) noexcept {
        value_.fetch_sub(n, std::memory_order_relaxed);
    }

    std::int64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: upper bounds are set at construction and never
/// change, so observation is one binary search plus three relaxed atomic
/// adds (bucket, count, sum) — no lock, no allocation. The implicit last
/// bucket catches everything above the largest bound (+Inf).
class Histogram {
public:
    explicit Histogram(std::vector<double> upper_bounds);

    void observe(double value) noexcept;

    /// Default bounds for millisecond latencies: 10 µs .. 10 s, roughly
    /// geometric — wide enough for parse/classify/match and virtual
    /// protocol response times alike.
    static const std::vector<double>& latency_ms_bounds();

    const std::vector<double>& bounds() const noexcept { return bounds_; }

    /// Non-cumulative count of bucket `i` (i == bounds().size() is +Inf).
    std::uint64_t bucket(std::size_t i) const noexcept {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }

    double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

    double mean() const noexcept {
        const std::uint64_t n = count();
        return n == 0 ? 0.0 : sum() / static_cast<double>(n);
    }

private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_+Inf
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/// Times a phase and records the elapsed real milliseconds into a
/// histogram when the span closes. A null sink makes the span free-ish,
/// so uninstrumented components need no branches at every call site.
class ScopedSpan {
public:
    explicit ScopedSpan(Histogram* sink) noexcept : sink_(sink) {}

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    ~ScopedSpan() {
        if (sink_ != nullptr) sink_->observe(watch_.elapsed_ms());
    }

    double elapsed_ms() const noexcept { return watch_.elapsed_ms(); }

private:
    Histogram* sink_;
    Stopwatch watch_;
};

/// Thread-safe registry of named metrics. Handles returned by
/// counter()/gauge()/histogram() are stable references for the registry's
/// lifetime; resolve them once and keep them (the lookup takes the
/// registry mutex, the returned handle never does).
class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);

    /// `bounds` applies only when the histogram is first created.
    Histogram& histogram(std::string_view name,
                         const std::vector<double>& bounds =
                             Histogram::latency_ms_bounds());

    /// Convenience: a span recording into `histogram(name)`.
    ScopedSpan span(std::string_view name) { return ScopedSpan(&histogram(name)); }

    /// Prometheus text exposition (names sanitized, `sariadne_` prefix,
    /// histograms rendered with cumulative `_bucket{le=...}` series).
    std::string to_prometheus() const;

    /// Single JSON object keyed by verbatim metric name; histograms carry
    /// count/sum/mean plus per-bound bucket counts.
    std::string to_json() const;

    /// Exact value lookups for assertions; 0 / nullptr when absent.
    std::uint64_t counter_value(std::string_view name) const;
    std::int64_t gauge_value(std::string_view name) const;
    const Histogram* find_histogram(std::string_view name) const;

private:
    // std::map keeps the exposition deterministically sorted; values are
    // node-allocated unique_ptrs so handles survive rehashing-free.
    // Innermost rank in the hierarchy: handle resolution may run under any
    // other lock, and exposition acquires nothing further.
    mutable support::RankedMutex mutex_{support::LockRank::kMetricsRegistry};
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace sariadne::obs
