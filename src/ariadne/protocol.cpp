#include "ariadne/protocol.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <unordered_set>

#include "ariadne/messages.hpp"
#include "description/amigos_io.hpp"
#include "description/resolved.hpp"
#include "directory/state_transfer.hpp"
#include "obs/metric_names.hpp"
#include "summary/summary_wire.hpp"
#include "support/catching.hpp"
#include "support/contracts.hpp"
#include "support/hash.hpp"
#include "support/stopwatch.hpp"

namespace sariadne::ariadne {

using directory::MatchHit;
using net::kNoNode;
using net::Message;
using net::NodeId;
using net::SimTime;

// Payloads moved to ariadne/messages.hpp (shared with the wire bridge and
// the socket transport); keep the short names the protocol body uses.
using msg::DirAdv;
using msg::ElectCall;
using msg::ElectCandidate;
using msg::Forward;
using msg::Handover;
using msg::PubAck;
using msg::PublishBatch;
using msg::PublishDoc;
using msg::PubNack;
using msg::QueryHits;
using msg::Request;
using msg::Response;
using msg::SummaryPush;

namespace {

constexpr std::uint32_t kHitWireBytes = 64;

/// Receiver-side dedup window: remembered wire sequence ids per node. A
/// few thousand entries cover every in-flight message many times over;
/// older ids cannot reappear (duplicates trail their original by at most
/// the jitter bound).
constexpr std::size_t kDedupWindow = 4096;

}  // namespace

// --- node state ------------------------------------------------------------

struct DiscoveryNetwork::NodeState {
    bool is_directory = false;
    SimTime last_adv = -1e18;
    NodeId known_directory = kNoNode;
    bool election_pending = false;
    SimTime election_started = 0;
    std::vector<ElectCandidate> candidates;

    std::unique_ptr<directory::SemanticDirectory> semdir;
    std::unique_ptr<directory::SyntacticDirectory> syndir;
    std::unordered_map<NodeId, bloom::BloomFilter> peer_summaries;
    std::unordered_map<NodeId, std::size_t> peer_false_positives;
    /// Interval backend: exact peer summaries keyed by directory, the
    /// snapshot of our own summary as the backbone last saw it (delta
    /// base), and whether any push went out yet (first push is always a
    /// full snapshot).
    std::unordered_map<NodeId, summary::IntervalSummary> peer_exact_summaries;
    summary::IntervalSummary last_pushed_summary;
    bool summary_pushed_once = false;
    std::size_t publishes_since_push = 0;

    std::unordered_map<std::uint64_t, PendingRequest> pending;

    std::vector<std::string> deferred_publishes;
    std::vector<std::pair<std::uint64_t, std::string>> deferred_requests;

    /// Provider-side: documents this node owns and re-advertises.
    std::vector<std::string> owned_services;
    bool republish_scheduled = false;

    /// Acknowledged publishes awaiting their `pub-ack`.
    struct OutstandingPublish {
        std::string document;
        int retries_left = 0;
        double timeout_ms = 0;   ///< current backoff deadline
        bool awaiting_ack = false;  ///< false while no directory is reachable
        std::uint64_t attempt = 0;  ///< invalidates superseded timeout checks
    };
    std::unordered_map<std::uint64_t, OutstandingPublish> outstanding_publishes;

    /// Wire-level dedup window (insertion-ordered ring over a hash set).
    std::unordered_set<std::uint64_t> seen_wire;
    std::deque<std::uint64_t> seen_wire_order;

    /// True exactly once per wire id: false for a fault-injected
    /// duplicate delivery of an already-seen send.
    bool first_delivery(std::uint64_t wire_seq) {
        if (!seen_wire.insert(wire_seq).second) return false;
        seen_wire_order.push_back(wire_seq);
        if (seen_wire_order.size() > kDedupWindow) {
            seen_wire.erase(seen_wire_order.front());
            seen_wire_order.pop_front();
        }
        return true;
    }

    /// Resigned-directory state awaiting a successor (empty when none).
    std::string pending_handover;

    /// Set on resignation (e.g. low battery): the node no longer stands
    /// as an election candidate.
    bool declines_role = false;
};

// --- construction ------------------------------------------------------------

DiscoveryNetwork::DiscoveryNetwork(std::unique_ptr<Transport> transport,
                                   ProtocolConfig config,
                                   encoding::KnowledgeBase& kb,
                                   obs::MetricsRegistry* metrics)
    : transport_(std::move(transport)),
      config_(config),
      kb_(&kb),
      jitter_rng_(config.jitter_seed) {
    SARIADNE_EXPECTS(transport_ != nullptr);
    if (metrics != nullptr) {
        metrics_.registry = metrics;
        metrics_.requests_issued = &metrics->counter(obs::names::kProtocolRequestsIssued);
        metrics_.requests_retried =
            &metrics->counter(obs::names::kProtocolRequestsRetried);
        metrics_.requests_expired =
            &metrics->counter(obs::names::kProtocolRequestsExpired);
        metrics_.requests_satisfied =
            &metrics->counter(obs::names::kProtocolRequestsSatisfied);
        metrics_.requests_unsatisfied =
            &metrics->counter(obs::names::kProtocolRequestsUnsatisfied);
        metrics_.responses = &metrics->counter(obs::names::kProtocolResponses);
        metrics_.forwards = &metrics->counter(obs::names::kProtocolForwards);
        metrics_.elections_started =
            &metrics->counter(obs::names::kProtocolElectionsStarted);
        metrics_.directories_elected =
            &metrics->counter(obs::names::kProtocolDirectoriesElected);
        metrics_.handovers = &metrics->counter(obs::names::kProtocolHandovers);
        metrics_.summary_pushes = &metrics->counter(obs::names::kProtocolSummaryPushes);
        metrics_.summary_pulls = &metrics->counter(obs::names::kProtocolSummaryPulls);
        metrics_.summary_pull_replies =
            &metrics->counter(obs::names::kProtocolSummaryPullReplies);
        metrics_.bloom_false_positives =
            &metrics->counter(obs::names::kProtocolBloomFalsePositives);
        metrics_.bloom_wire_rejected =
            &metrics->counter(obs::names::kProtocolBloomWireRejected);
        metrics_.summary_bytes_sent =
            &metrics->counter(obs::names::kProtocolSummaryBytesSent);
        metrics_.summary_delta_pushes =
            &metrics->counter(obs::names::kProtocolSummaryDeltaPushes);
        metrics_.forwards_saved_exact =
            &metrics->counter(obs::names::kProtocolForwardsSavedExact);
        metrics_.pending_reaped = &metrics->counter(obs::names::kProtocolPendingReaped);
        metrics_.publishes_acked =
            &metrics->counter(obs::names::kProtocolPublishesAcked);
        metrics_.publishes_retried =
            &metrics->counter(obs::names::kProtocolPublishesRetried);
        metrics_.publishes_expired =
            &metrics->counter(obs::names::kProtocolPublishesExpired);
        metrics_.publish_nacks = &metrics->counter(obs::names::kProtocolPublishNacks);
        metrics_.duplicates_dropped =
            &metrics->counter(obs::names::kProtocolDuplicatesDropped);
        metrics_.malformed_publishes =
            &metrics->counter(obs::names::kProtocolMalformedPublishes);
        metrics_.malformed_requests =
            &metrics->counter(obs::names::kProtocolMalformedRequests);
        metrics_.requests_in_flight =
            &metrics->gauge(obs::names::kProtocolRequestsInFlight);
        metrics_.directories = &metrics->gauge(obs::names::kProtocolDirectories);
        metrics_.retry_backlog = &metrics->gauge(obs::names::kProtocolRetryBacklog);
        metrics_.publish_outstanding =
            &metrics->gauge(obs::names::kProtocolPublishOutstanding);
        metrics_.deferred_publishes =
            &metrics->gauge(obs::names::kProtocolDeferredPublishes);
        metrics_.deferred_requests =
            &metrics->gauge(obs::names::kProtocolDeferredRequests);
        metrics_.response_ms = &metrics->histogram(obs::names::kProtocolResponseMs);
        metrics_.directory_compute_ms =
            &metrics->histogram(obs::names::kProtocolDirectoryComputeMs);
        transport_->set_metrics(metrics);
    }
    const std::size_t n = transport_->node_count();
    nodes_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        nodes_.push_back(std::make_unique<NodeState>());
    }
    transport_->set_delivery_handler(
        [this](NodeId self, const Message& msg) { handle_message(self, msg); });
}

DiscoveryNetwork::~DiscoveryNetwork() = default;

double DiscoveryNetwork::fitness(NodeId node) const {
    // Deterministic pseudo-battery in [0.25, 1.0] plus radio coverage: the
    // paper elects on "network coverage, mobility and remaining/available
    // resources". Mains-powered infrastructure nodes (hybrid networks)
    // report full battery and zero mobility, so the backbone naturally
    // gravitates onto access points when they exist.
    const double battery =
        transport_->is_infrastructure(node)
            ? 1.0
            : 0.25 + 0.75 * static_cast<double>(
                                mix64(node * 0x9E3779B97F4A7C15ULL +
                                      0xBA77E21ULL) %
                                1000) /
                         1000.0;
    const double stability = transport_->is_infrastructure(node) ? 2.0 : 1.0;
    const double degree = static_cast<double>(transport_->degree(node));
    return battery * stability * (1.0 + 0.1 * degree);
}

void DiscoveryNetwork::start() {
    for (NodeId node = 0; node < nodes_.size(); ++node) {
        // Stagger the first check so simultaneous elections are rare but
        // still exercised.
        const double jitter =
            1.0 + 0.05 * static_cast<double>(node % 11);
        transport_->schedule(config_.adv_timeout_ms * jitter,
                       [this, node] { node_check_advertisement(node); });
    }
}

void DiscoveryNetwork::node_check_advertisement(NodeId node) {
    NodeState& state = *nodes_[node];
    if (transport_->is_up(node) && !state.is_directory &&
        !state.election_pending &&
        transport_->now() - state.last_adv > config_.adv_timeout_ms) {
        node_start_election(node);
    }
    transport_->schedule(config_.adv_timeout_ms,
                   [this, node] { node_check_advertisement(node); });
}

void DiscoveryNetwork::node_start_election(NodeId node) {
    if (metrics_.elections_started) metrics_.elections_started->inc();
    NodeState& state = *nodes_[node];
    state.election_pending = true;
    state.election_started = transport_->now();
    state.candidates.clear();
    if (!state.declines_role) {
        state.candidates.push_back(ElectCandidate{node, fitness(node)});
    }

    Message call;
    call.type = "elect-call";
    call.payload = ElectCall{node};
    call.size_bytes = 16;
    transport_->broadcast(node, config_.election_ttl, std::move(call));

    transport_->schedule(config_.election_wait_ms,
                   [this, node] { close_election(node); });
}

void DiscoveryNetwork::close_election(NodeId initiator) {
    NodeState& state = *nodes_[initiator];
    if (!state.election_pending) return;  // suppressed by an advertisement
    state.election_pending = false;
    // A directory advertisement heard since the call aborts the election.
    if (state.last_adv >= state.election_started) return;

    if (state.candidates.empty()) return;  // everyone declined; retry later
    const auto best = std::max_element(
        state.candidates.begin(), state.candidates.end(),
        [](const ElectCandidate& a, const ElectCandidate& b) {
            return a.fitness != b.fitness ? a.fitness < b.fitness
                                          : a.candidate > b.candidate;
        });
    if (best->candidate == initiator) {
        become_directory(initiator);
    } else {
        Message appoint;
        appoint.type = "elect-appoint";
        appoint.size_bytes = 8;
        transport_->unicast(initiator, best->candidate, std::move(appoint));
    }
}

void DiscoveryNetwork::appoint_directory(NodeId node) {
    become_directory(node);
}

void DiscoveryNetwork::resign_directory(NodeId node) {
    NodeState& state = *nodes_[node];
    if (!state.is_directory) return;
    std::string exported;
    if (state.semdir != nullptr) {
        exported = directory::export_state(*state.semdir);
    }
    state.is_directory = false;
    state.declines_role = true;  // it resigned for a reason (resources)
    state.semdir.reset();
    state.syndir.reset();
    state.peer_summaries.clear();
    state.peer_exact_summaries.clear();
    state.last_pushed_summary = summary::IntervalSummary{};
    state.summary_pushed_once = false;
    state.last_adv = -1e18;  // eligible to detect a directory-less vicinity

    if (exported.empty()) return;  // syntactic mode: providers re-publish

    if (metrics_.directories) metrics_.directories->set(
        static_cast<std::int64_t>(directories().size()));

    NodeId successor = directory_for(node);
    if (successor != kNoNode) {
        if (metrics_.handovers) metrics_.handovers->inc();
        Message msg;
        msg.type = "handover";
        msg.size_bytes = static_cast<std::uint32_t>(exported.size());
        msg.payload = Handover{std::move(exported)};
        transport_->unicast(node, successor, std::move(msg));
        return;
    }
    // Last directory standing: elect a successor, hand over when its
    // advertisement arrives (see the dir-adv handler).
    state.pending_handover = std::move(exported);
    node_start_election(node);
}

void DiscoveryNetwork::become_directory(NodeId node) {
    NodeState& state = *nodes_[node];
    if (state.is_directory) return;
    state.is_directory = true;
    state.election_pending = false;
    if (config_.protocol == Protocol::kSAriadne) {
        state.semdir = std::make_unique<directory::SemanticDirectory>(
            *kb_,
            directory::SummaryConfig{config_.summary_backend, config_.bloom},
            metrics_.registry);
    } else {
        state.syndir = std::make_unique<directory::SyntacticDirectory>();
    }
    if (metrics_.directories_elected) metrics_.directories_elected->inc();
    if (metrics_.directories) metrics_.directories->set(
        static_cast<std::int64_t>(directories().size()));
    directory_advertise(node);
    if (config_.protocol == Protocol::kSAriadne) {
        // §4: "the exchange of Bloom filters is done when new directories
        // are elected" — both ways: announce our (empty) summary and pull
        // the existing peers' summaries, so a late-elected directory learns
        // where established content lives.
        push_summary(node);
        for (const NodeId peer : directories()) {
            if (peer == node) continue;
            if (metrics_.summary_pulls) metrics_.summary_pulls->inc();
            Message pull;
            pull.type = "summary-pull";
            pull.size_bytes = 8;
            transport_->unicast(node, peer, std::move(pull));
        }
    }
}

void DiscoveryNetwork::directory_advertise(NodeId node) {
    NodeState& state = *nodes_[node];
    if (!state.is_directory) return;
    if (transport_->is_up(node)) {
        Message adv;
        adv.type = "dir-adv";
        adv.payload = DirAdv{node};
        adv.size_bytes = 16;
        transport_->broadcast(node, config_.vicinity_hops, std::move(adv));
        state.last_adv = transport_->now();  // a directory never elects
    }
    transport_->schedule(config_.adv_period_ms,
                   [this, node] { directory_advertise(node); });
}

void DiscoveryNetwork::push_summary(NodeId directory_node) {
    NodeState& state = *nodes_[directory_node];
    if (state.semdir == nullptr) return;
    if (config_.summary_backend == summary::SummaryBackend::kInterval) {
        push_exact_summary(directory_node);
        return;
    }
    const auto wire = state.semdir->summary().serialize();
    for (const NodeId peer : directories()) {
        if (peer == directory_node) continue;
        if (metrics_.summary_pushes) metrics_.summary_pushes->inc();
        if (metrics_.summary_bytes_sent) {
            metrics_.summary_bytes_sent->inc(
                static_cast<std::uint64_t>(wire.size() * 8));
        }
        Message push;
        push.type = "summary-push";
        push.payload = SummaryPush{directory_node, wire};
        push.size_bytes = static_cast<std::uint32_t>(wire.size() * 8);
        transport_->unicast(directory_node, peer, std::move(push));
    }
    state.publishes_since_push = 0;
}

void DiscoveryNetwork::push_exact_summary(NodeId directory_node) {
    NodeState& state = *nodes_[directory_node];
    summary::IntervalSummary current = state.semdir->interval_summary();
    // Nothing changed since the backbone last heard from us: every delta
    // would be empty and every snapshot redundant (late-elected peers pull
    // their own copy), so skip the fan-out entirely.
    if (state.summary_pushed_once &&
        current.version() == state.last_pushed_summary.version()) {
        state.publishes_since_push = 0;
        return;
    }
    std::vector<std::uint8_t> image;
    bool is_delta = false;
    if (state.summary_pushed_once) {
        // Delta against the last pushed image; fall back to the full
        // snapshot when the delta would not actually be smaller. A peer
        // that missed the base version detects the gap on apply and
        // re-pulls a snapshot, so one shared base is sufficient.
        std::vector<std::uint8_t> delta_image = summary::encode_delta(
            summary::diff_summary(state.last_pushed_summary, current));
        std::vector<std::uint8_t> snap_image = summary::encode_summary(current);
        if (delta_image.size() < snap_image.size()) {
            image = std::move(delta_image);
            is_delta = true;
        } else {
            image = std::move(snap_image);
        }
    } else {
        image = summary::encode_summary(current);
    }
    for (const NodeId peer : directories()) {
        if (peer == directory_node) continue;
        if (metrics_.summary_pushes) metrics_.summary_pushes->inc();
        if (metrics_.summary_bytes_sent) {
            metrics_.summary_bytes_sent->inc(
                static_cast<std::uint64_t>(image.size()));
        }
        if (is_delta && metrics_.summary_delta_pushes) {
            metrics_.summary_delta_pushes->inc();
        }
        Message push;
        push.type = is_delta ? "summary-delta" : "summary-bitmap";
        push.size_bytes = static_cast<std::uint32_t>(8 + image.size());
        if (is_delta) {
            push.payload = msg::SummaryDelta{directory_node, image};
        } else {
            push.payload = msg::SummaryBitmap{directory_node, image};
        }
        transport_->unicast(directory_node, peer, std::move(push));
    }
    state.last_pushed_summary = std::move(current);
    state.summary_pushed_once = true;
    state.publishes_since_push = 0;
}

std::vector<NodeId> DiscoveryNetwork::directories() const {
    std::vector<NodeId> result;
    for (NodeId node = 0; node < nodes_.size(); ++node) {
        if (nodes_[node]->is_directory) result.push_back(node);
    }
    return result;
}

bool DiscoveryNetwork::is_directory(NodeId node) const {
    return nodes_[node]->is_directory;
}

NodeId DiscoveryNetwork::directory_for(NodeId node) const {
    const auto dist = transport_->hop_distances(node);
    NodeId best = kNoNode;
    int best_hops = std::numeric_limits<int>::max();
    for (const NodeId dir : directories()) {
        if (dist[dir] >= 0 && dist[dir] < best_hops) {
            best_hops = dist[dir];
            best = dir;
        }
    }
    return best;
}

// --- publish -----------------------------------------------------------------

std::uint64_t DiscoveryNetwork::publish_service(NodeId provider,
                                                std::string document_xml) {
    NodeState& state = *nodes_[provider];
    state.owned_services.push_back(document_xml);
    if (config_.republish_period_ms > 0 && !state.republish_scheduled) {
        state.republish_scheduled = true;
        transport_->schedule(config_.republish_period_ms,
                       [this, provider] { republish(provider); });
    }
    if (config_.publish_ack_timeout_ms > 0) {
        // Acknowledged publish: park the document in the outstanding table
        // and let the send/timeout machinery route, retransmit and back
        // off until the directory acks (or the budget runs out).
        const std::uint64_t pub_id = next_pub_id_++;
        state.outstanding_publishes.emplace(
            pub_id, NodeState::OutstandingPublish{
                        std::move(document_xml), config_.publish_max_retries,
                        config_.publish_ack_timeout_ms, false, 0});
        if (metrics_.publish_outstanding) metrics_.publish_outstanding->add(1);
        send_publish(provider, pub_id);
        return pub_id;
    }
    NodeId target = state.known_directory;
    if (target == kNoNode || !nodes_[target]->is_directory ||
        !transport_->is_up(target)) {
        target = directory_for(provider);
    }
    if (target == kNoNode) {
        state.deferred_publishes.push_back(std::move(document_xml));
        if (metrics_.deferred_publishes) metrics_.deferred_publishes->add(1);
        return 0;
    }
    Message pub;
    pub.type = "pub";
    pub.size_bytes = static_cast<std::uint32_t>(document_xml.size());
    pub.payload = PublishDoc{std::move(document_xml), 0};
    transport_->unicast(provider, target, std::move(pub));
    return 0;
}

std::uint64_t DiscoveryNetwork::publish_batch(
    NodeId provider, std::vector<std::string> documents) {
    if (documents.empty()) return 0;
    if (config_.publish_ack_timeout_ms > 0) {
        std::uint64_t last = 0;
        for (auto& doc : documents) {
            last = publish_service(provider, std::move(doc));
        }
        return last;
    }
    NodeState& state = *nodes_[provider];
    for (const auto& doc : documents) state.owned_services.push_back(doc);
    if (config_.republish_period_ms > 0 && !state.republish_scheduled) {
        state.republish_scheduled = true;
        transport_->schedule(config_.republish_period_ms,
                             [this, provider] { republish(provider); });
    }
    NodeId target = state.known_directory;
    if (target == kNoNode || !nodes_[target]->is_directory ||
        !transport_->is_up(target)) {
        target = directory_for(provider);
    }
    if (target == kNoNode) {
        for (auto& doc : documents) {
            state.deferred_publishes.push_back(std::move(doc));
            if (metrics_.deferred_publishes) {
                metrics_.deferred_publishes->add(1);
            }
        }
        return 0;
    }
    msg::PublishBatch batch;
    std::size_t bytes = 0;
    batch.docs.reserve(documents.size());
    for (auto& doc : documents) {
        bytes += doc.size();
        batch.docs.push_back(PublishDoc{std::move(doc), 0});
    }
    Message pub;
    pub.type = "pub-batch";
    pub.size_bytes = static_cast<std::uint32_t>(bytes);
    pub.payload = std::move(batch);
    transport_->unicast(provider, target, std::move(pub));
    return 0;
}

Result<std::uint64_t> DiscoveryNetwork::try_publish_service(
    NodeId provider, std::string document_xml) {
    return support::catching<std::uint64_t>([&]() -> std::uint64_t {
        if (provider >= nodes_.size()) {
            throw LookupError("publish from unknown node " +
                              std::to_string(provider));
        }
        // Validate before mutating protocol state, so a malformed document
        // never enters owned_services / the retransmit machinery.
        (void)desc::parse_service(document_xml);
        return publish_service(provider, std::move(document_xml));
    });
}

Result<std::uint64_t> DiscoveryNetwork::try_discover(NodeId client,
                                                     std::string request_xml) {
    return support::catching<std::uint64_t>([&]() -> std::uint64_t {
        if (client >= nodes_.size()) {
            throw LookupError("discover from unknown node " +
                              std::to_string(client));
        }
        (void)desc::parse_request(request_xml);
        return discover(client, std::move(request_xml));
    });
}

void DiscoveryNetwork::send_publish(NodeId provider, std::uint64_t pub_id) {
    NodeState& state = *nodes_[provider];
    const auto it = state.outstanding_publishes.find(pub_id);
    if (it == state.outstanding_publishes.end()) return;  // acked meanwhile
    NodeState::OutstandingPublish& outstanding = it->second;

    NodeId target = state.known_directory;
    if (target == kNoNode || !nodes_[target]->is_directory ||
        !transport_->is_up(target)) {
        target = directory_for(provider);
    }
    outstanding.awaiting_ack = target != kNoNode;
    if (target != kNoNode) {
        Message pub;
        pub.type = "pub";
        pub.size_bytes =
            static_cast<std::uint32_t>(outstanding.document.size());
        pub.payload = PublishDoc{outstanding.document, pub_id};
        transport_->unicast(provider, target, std::move(pub));
    }
    // Arm the timeout either way: with no reachable directory it acts as a
    // deferral poll that retries routing without consuming the budget.
    // Jitter desynchronizes providers that lost the same directory, so
    // their retransmissions do not stampede the successor in lockstep.
    const double jitter =
        jitter_rng_.uniform() * 0.25 * outstanding.timeout_ms;
    const std::uint64_t attempt = ++outstanding.attempt;
    transport_->schedule(outstanding.timeout_ms + jitter,
                   [this, provider, pub_id, attempt] {
                       check_publish_timeout(provider, pub_id, attempt);
                   });
}

void DiscoveryNetwork::check_publish_timeout(NodeId provider,
                                             std::uint64_t pub_id,
                                             std::uint64_t expected_attempt) {
    NodeState& state = *nodes_[provider];
    const auto it = state.outstanding_publishes.find(pub_id);
    if (it == state.outstanding_publishes.end()) return;  // acked
    NodeState::OutstandingPublish& outstanding = it->second;
    if (outstanding.attempt != expected_attempt) return;  // superseded
    if (!transport_->is_up(provider)) {
        // Crashed provider: freeze the budget, poll again after recovery.
        const std::uint64_t attempt = ++outstanding.attempt;
        transport_->schedule(outstanding.timeout_ms,
                       [this, provider, pub_id, attempt] {
                           check_publish_timeout(provider, pub_id, attempt);
                       });
        return;
    }
    if (outstanding.awaiting_ack) {
        // A real transmission went unacked: consume a retry and back off.
        if (outstanding.retries_left <= 0) {
            state.outstanding_publishes.erase(it);
            if (metrics_.publish_outstanding) metrics_.publish_outstanding->sub(1);
            if (metrics_.publishes_expired) metrics_.publishes_expired->inc();
            return;
        }
        --outstanding.retries_left;
        if (metrics_.publishes_retried) metrics_.publishes_retried->inc();
        outstanding.timeout_ms =
            std::min(outstanding.timeout_ms * config_.publish_backoff_factor,
                     config_.publish_backoff_max_ms);
    }
    send_publish(provider, pub_id);
}

void DiscoveryNetwork::handle_publish(NodeId self, const Message& msg) {
    NodeState& state = *nodes_[self];
    const auto& doc = std::any_cast<const PublishDoc&>(msg.payload);
    if (!state.is_directory) {
        // Stale routing — this node lost (or never had) the directory
        // role. Bounce the document back so the provider re-routes
        // immediately instead of losing the service until the next
        // republish period.
        if (metrics_.publish_nacks) metrics_.publish_nacks->inc();
        Message nack;
        nack.type = "pub-nack";
        nack.size_bytes =
            16 + static_cast<std::uint32_t>(doc.document.size());
        nack.payload = PubNack{doc.pub_id, doc.document};
        transport_->unicast(self, msg.source, std::move(nack));
        return;
    }
    if (state.semdir != nullptr) {
        const bool exact =
            config_.summary_backend == summary::SummaryBackend::kInterval;
        const std::size_t bits_before = state.semdir->summary().set_bit_count();
        const std::uint64_t version_before =
            exact ? state.semdir->interval_summary_version() : 0;
        // The document is peer input: a malformed description must be
        // contained here (dropped + counted), not unwind the transport's
        // event loop. No ack is sent, so an acknowledged publish of a bad
        // document exhausts its retransmit budget and expires — the
        // provider-side accounting already handles that.
        const auto published = support::catching<bool>([&] {
            state.semdir->publish_xml(doc.document);
            return true;
        });
        if (!published) {
            if (metrics_.malformed_publishes) metrics_.malformed_publishes->inc();
            return;
        }
        // Push the summary whenever it gained bits — i.e. this publish
        // introduced ontology coverage the backbone does not know about.
        // Peers testing a stale filter would otherwise get false
        // *negatives*, which (unlike false positives) the reactive
        // exchange cannot repair. Pushes are bounded by the number of
        // distinct ontology sets, and the batch threshold still forces a
        // periodic refresh. The exact backend watches its summary version
        // instead: it changes at concept granularity (a new code inside an
        // already-covered ontology moves it where Bloom bits would not),
        // and the delta encoding keeps those extra pushes small.
        const bool coverage_grew =
            exact ? state.semdir->interval_summary_version() != version_before
                  : state.semdir->summary().set_bit_count() > bits_before;
        if (++state.publishes_since_push >= config_.summary_push_every ||
            coverage_grew) {
            push_summary(self);
        }
    } else {
        const auto published = support::catching<bool>([&] {
            state.syndir->publish_xml(doc.document);
            return true;
        });
        if (!published) {
            if (metrics_.malformed_publishes) metrics_.malformed_publishes->inc();
            return;
        }
    }
    if (doc.pub_id != 0) {
        Message ack;
        ack.type = "pub-ack";
        ack.size_bytes = 16;
        ack.payload = PubAck{doc.pub_id};
        transport_->unicast(self, msg.source, std::move(ack));
    }
}

void DiscoveryNetwork::handle_publish_batch(NodeId self, const Message& msg) {
    NodeState& state = *nodes_[self];
    const auto& batch = std::any_cast<const PublishBatch&>(msg.payload);
    const auto ack_doc = [&](std::uint64_t pub_id) {
        if (pub_id == 0) return;
        Message ack;
        ack.type = "pub-ack";
        ack.size_bytes = 16;
        ack.payload = PubAck{pub_id};
        transport_->unicast(self, msg.source, std::move(ack));
    };
    if (!state.is_directory) {
        // Stale routing: bounce every member back individually so each
        // provider-side retry keeps its own pub_id accounting.
        for (const PublishDoc& doc : batch.docs) {
            if (metrics_.publish_nacks) metrics_.publish_nacks->inc();
            Message nack;
            nack.type = "pub-nack";
            nack.size_bytes =
                16 + static_cast<std::uint32_t>(doc.document.size());
            nack.payload = PubNack{doc.pub_id, doc.document};
            transport_->unicast(self, msg.source, std::move(nack));
        }
        return;
    }
    if (state.semdir == nullptr) {
        // The flat-directory ablation has no batched ingest path; fall
        // back to member-at-a-time publishes with per-doc containment.
        for (const PublishDoc& doc : batch.docs) {
            const auto published = support::catching<bool>([&] {
                state.syndir->publish_xml(doc.document);
                return true;
            });
            if (!published) {
                if (metrics_.malformed_publishes) {
                    metrics_.malformed_publishes->inc();
                }
                continue;
            }
            ack_doc(doc.pub_id);
        }
        return;
    }
    const bool exact =
        config_.summary_backend == summary::SummaryBackend::kInterval;
    const std::size_t bits_before = state.semdir->summary().set_bit_count();
    const std::uint64_t version_before =
        exact ? state.semdir->interval_summary_version() : 0;
    // Parse phase: each document is peer input, contained per member. A
    // malformed member is dropped (counted, never acked — the provider's
    // retransmit budget expires it) without poisoning the rest.
    std::vector<desc::ServiceDescription> parsed;
    std::vector<const PublishDoc*> parsed_docs;
    parsed.reserve(batch.docs.size());
    parsed_docs.reserve(batch.docs.size());
    for (const PublishDoc& doc : batch.docs) {
        auto description = support::catching<desc::ServiceDescription>(
            [&] { return desc::parse_service(doc.document); });
        if (!description) {
            if (metrics_.malformed_publishes) metrics_.malformed_publishes->inc();
            continue;
        }
        parsed.push_back(std::move(description).value());
        parsed_docs.push_back(&doc);
    }
    std::size_t published_count = 0;
    if (!parsed.empty()) {
        // publish_batch is all-or-nothing; a version-mismatch member
        // rejects the whole batch, so fall back to member-at-a-time
        // publishes and let the bad member fail alone.
        const auto batched = support::catching<bool>([&] {
            state.semdir->publish_batch(std::move(parsed));
            return true;
        });
        if (batched) {
            for (const PublishDoc* doc : parsed_docs) ack_doc(doc->pub_id);
            published_count = parsed_docs.size();
        } else {
            for (const PublishDoc* doc : parsed_docs) {
                const auto published = support::catching<bool>([&] {
                    state.semdir->publish_xml(doc->document);
                    return true;
                });
                if (!published) {
                    if (metrics_.malformed_publishes) {
                        metrics_.malformed_publishes->inc();
                    }
                    continue;
                }
                ack_doc(doc->pub_id);
                ++published_count;
            }
        }
    }
    const bool coverage_grew =
        exact ? state.semdir->interval_summary_version() != version_before
              : state.semdir->summary().set_bit_count() > bits_before;
    state.publishes_since_push += published_count;
    if ((published_count > 0 &&
         state.publishes_since_push >= config_.summary_push_every) ||
        coverage_grew) {
        push_summary(self);
    }
}

// --- discovery ----------------------------------------------------------------

std::uint64_t DiscoveryNetwork::discover(NodeId client, std::string request_xml) {
    const std::uint64_t id = next_request_id_++;
    DiscoveryOutcome outcome;
    outcome.issued_at = transport_->now();
    outcomes_.emplace(id, outcome);
    if (metrics_.requests_issued) metrics_.requests_issued->inc();
    if (metrics_.requests_in_flight) metrics_.requests_in_flight->add(1);
    if (config_.request_timeout_ms > 0) {
        retry_state_.emplace(
            id, RetryState{client, request_xml, config_.max_request_retries});
        if (metrics_.retry_backlog) {
            metrics_.retry_backlog->set(
                static_cast<std::int64_t>(retry_state_.size()));
        }
        transport_->schedule(config_.request_timeout_ms,
                       [this, id] { check_request_timeout(id); });
    }

    NodeState& state = *nodes_[client];
    NodeId target = state.known_directory;
    if (target == kNoNode || !nodes_[target]->is_directory ||
        !transport_->is_up(target)) {
        target = directory_for(client);
    }
    if (target == kNoNode) {
        state.deferred_requests.emplace_back(id, std::move(request_xml));
        if (metrics_.deferred_requests) metrics_.deferred_requests->add(1);
        return id;
    }
    Message req;
    req.type = "req";
    req.size_bytes = static_cast<std::uint32_t>(request_xml.size());
    req.payload = Request{id, client, std::move(request_xml)};
    transport_->unicast(client, target, std::move(req));
    return id;
}

std::vector<std::vector<MatchHit>> DiscoveryNetwork::local_query(
    directory::SemanticDirectory* semdir,
    directory::SyntacticDirectory* syndir, const std::string& document,
    double& compute_ms) {
    if (semdir != nullptr) {
        // Skip the XML parse and signature resolution on repeat documents
        // (the dominant per-request costs on a hot directory — rediscovery
        // and retries resend the same bytes); matching always runs fresh
        // against the current directory content, into the reactor's reused
        // result scratch so a pipelined burst allocates no result buffers.
        const PreparedRequest& prepared = prepared_request(document);
        semdir->query_prepared(prepared.request, prepared.resolved, {},
                               local_query_scratch_);
        compute_ms = local_query_scratch_.timing.total_ms();
        std::vector<std::vector<MatchHit>> per_capability;
        per_capability.reserve(local_query_scratch_.per_capability.size());
        for (const auto& hits : local_query_scratch_.per_capability) {
            per_capability.emplace_back(hits.begin(), hits.end());
        }
        return per_capability;
    }
    directory::QueryTiming timing;
    auto hits = syndir->query_xml(document, timing);
    compute_ms = timing.total_ms();
    std::vector<std::vector<MatchHit>> per_capability;
    per_capability.push_back(std::move(hits));
    return per_capability;
}

namespace {

bool all_satisfied(const std::vector<std::vector<MatchHit>>& per_capability) {
    if (per_capability.empty()) return false;
    for (const auto& hits : per_capability) {
        if (hits.empty()) return false;
    }
    return true;
}

}  // namespace

std::vector<NodeId> DiscoveryNetwork::forward_targets(
    NodeId self, const std::string& request_xml) {
    std::vector<NodeId> targets;
    NodeState& state = *nodes_[self];
    if (config_.protocol == Protocol::kAriadne) {
        for (const NodeId dir : directories()) {
            if (dir != self) targets.push_back(dir);
        }
        return targets;
    }
    if (config_.summary_backend == summary::SummaryBackend::kInterval) {
        // Exact routing: forward only to peers whose interval summary
        // proves some cached capability could subsume every required
        // output/property concept. Build the probe once per request;
        // covers() is a bitmap intersection per peer.
        summary::RequestProbe probe;
        try {
            const desc::ServiceRequest request =
                desc::parse_request(request_xml);
            const auto resolved = desc::resolve_request(request, *kb_);
            probe = summary::build_request_probe(resolved, *kb_);
        } catch (const Error&) {
            return targets;  // unresolvable request: nothing to forward
        }
        for (const auto& [peer, peer_summary] : state.peer_exact_summaries) {
            if (!nodes_[peer]->is_directory) continue;
            if (peer_summary.covers(probe)) {
                targets.push_back(peer);
                continue;
            }
            // Count the forwards concept-granular routing saves over
            // URI-granular: the peer holds every probed ontology (so a
            // Bloom summary would have said yes) but none of the
            // subsuming concept codes.
            bool ontology_level_pass = true;
            for (const summary::ProbeConcept& pc : probe.concepts) {
                if (peer_summary.find_entry(pc.uri) == nullptr) {
                    ontology_level_pass = false;
                    break;
                }
            }
            if (ontology_level_pass && metrics_.forwards_saved_exact) {
                metrics_.forwards_saved_exact->inc();
            }
        }
        std::sort(targets.begin(), targets.end());
        return targets;
    }
    // S-Ariadne: only peers whose Bloom summary covers the request's
    // ontology URIs.
    std::vector<std::string> uris;
    try {
        const desc::ServiceRequest request = desc::parse_request(request_xml);
        const auto resolved = desc::resolve_request(request, *kb_);
        FlatSet<onto::OntologyIndex> all;
        for (const auto& cap : resolved) {
            all = all.united_with(cap.ontologies);
        }
        for (const onto::OntologyIndex index : all) {
            uris.push_back(kb_->registry().at(index).uri());
        }
    } catch (const Error&) {
        return targets;  // unresolvable request: nothing to forward
    }
    for (const auto& [peer, summary] : state.peer_summaries) {
        if (nodes_[peer]->is_directory && summary.possibly_covers(uris)) {
            targets.push_back(peer);
        }
    }
    std::sort(targets.begin(), targets.end());
    return targets;
}

const DiscoveryNetwork::PreparedRequest& DiscoveryNetwork::prepared_request(
    const std::string& document) {
    const std::uint64_t env_tag = kb_->environment_tag();
    const auto it = request_parse_cache_.find(document);
    if (it != request_parse_cache_.end()) {
        PreparedRequest& prepared = it->second;
        if (prepared.env_tag != env_tag) {
            // The knowledge base moved under the memo (ontology registered
            // or upgraded): the parse is still valid — it depends only on
            // the document bytes — but the resolution must be redone.
            prepared.resolved = desc::resolve_request(prepared.request, *kb_);
            prepared.env_tag = env_tag;
        }
        return prepared;
    }
    // Wholesale reset keeps the memo bounded without eviction bookkeeping:
    // a hostile peer cycling unique documents degrades to parse-per-request
    // (the uncached behaviour), never to unbounded memory.
    if (request_parse_cache_.size() >= 512) request_parse_cache_.clear();
    PreparedRequest prepared;
    prepared.request = desc::parse_request(document);
    prepared.resolved = desc::resolve_request(prepared.request, *kb_);
    prepared.env_tag = env_tag;
    return request_parse_cache_.emplace(document, std::move(prepared))
        .first->second;
}

void DiscoveryNetwork::handle_request(NodeId self, const Message& msg) {
    NodeState& state = *nodes_[self];
    const auto& request = std::any_cast<const Request&>(msg.payload);
    if (!state.is_directory) {
        // Stale routing: answer unsatisfied so the client is not left hanging.
        Message resp;
        resp.type = "resp";
        resp.payload = Response{request.request_id, {}, false, 0.0, 0};
        resp.size_bytes = 16;
        transport_->unicast(self, request.client, std::move(resp));
        return;
    }

    PendingRequest pending;
    pending.request_id = request.request_id;
    pending.client = request.client;
    pending.request_xml = request.document;

    double compute_ms = 0;
    // The request document is peer input: a malformed one is answered
    // unsatisfied (and counted) instead of unwinding the event loop, so a
    // hostile client cannot take the directory down.
    auto queried =
        support::catching<std::vector<std::vector<MatchHit>>>([&] {
            return local_query(state.semdir.get(), state.syndir.get(),
                               request.document, compute_ms);
        });
    if (!queried) {
        if (metrics_.malformed_requests) metrics_.malformed_requests->inc();
        Message resp;
        resp.type = "resp";
        resp.payload = Response{request.request_id, {}, false, 0.0, 0};
        resp.size_bytes = 16;
        transport_->unicast(self, request.client, std::move(resp));
        return;
    }
    auto per_capability = std::move(queried).value();
    pending.compute_ms = compute_ms;
    pending.local_satisfied = all_satisfied(per_capability);
    for (auto& hits : per_capability) {
        pending.hits.insert(pending.hits.end(), hits.begin(), hits.end());
    }

    const std::uint64_t id = request.request_id;
    if (pending.local_satisfied) {
        // Answer after the (virtual) service time equal to the real compute.
        state.pending.emplace(id, std::move(pending));
        transport_->schedule(compute_ms, [this, self, id] {
            auto& stored = nodes_[self]->pending;
            const auto it = stored.find(id);
            if (it == stored.end()) return;
            finish_request(self, it->second);
            stored.erase(it);
        });
        return;
    }

    const auto targets = forward_targets(self, request.document);
    pending.outstanding = targets.size();
    pending.directories_asked = static_cast<std::uint32_t>(targets.size());
    state.pending.emplace(id, std::move(pending));

    transport_->schedule(compute_ms, [this, self, id, targets] {
        auto& stored = nodes_[self]->pending;
        const auto it = stored.find(id);
        if (it == stored.end()) return;
        if (targets.empty()) {
            finish_request(self, it->second);
            stored.erase(it);
            return;
        }
        for (const NodeId target : targets) {
            if (metrics_.forwards) metrics_.forwards->inc();
            Message fwd;
            fwd.type = "fwd";
            fwd.size_bytes =
                static_cast<std::uint32_t>(it->second.request_xml.size());
            fwd.payload = Forward{id, self, it->second.request_xml};
            transport_->unicast(self, target, std::move(fwd));
        }
    });
}

void DiscoveryNetwork::handle_forward(NodeId self, const Message& msg) {
    NodeState& state = *nodes_[self];
    const auto& forward = std::any_cast<const Forward&>(msg.payload);
    QueryHits reply;
    reply.request_id = forward.request_id;
    reply.compute_ms = 0;
    if (state.is_directory) {
        // Forwarded documents come from a peer directory but are still
        // client-authored: contain malformed ones as an empty reply so the
        // origin's `outstanding` count always settles.
        const auto queried =
            support::catching<bool>([&] {
                reply.per_capability =
                    local_query(state.semdir.get(), state.syndir.get(),
                                forward.document, reply.compute_ms);
                return true;
            });
        if (!queried && metrics_.malformed_requests) {
            metrics_.malformed_requests->inc();
        }
    }
    const double compute = reply.compute_ms;
    const NodeId origin = forward.origin;
    std::uint32_t hit_count = 0;
    for (const auto& hits : reply.per_capability) {
        hit_count += static_cast<std::uint32_t>(hits.size());
    }
    transport_->schedule(compute, [this, self, origin, reply = std::move(reply),
                             hit_count] {
        Message resp;
        resp.type = "fwd-resp";
        resp.size_bytes = 16 + hit_count * kHitWireBytes;
        resp.payload = reply;
        transport_->unicast(self, origin, std::move(resp));
    });
}

void DiscoveryNetwork::handle_forward_reply(NodeId self, const Message& msg) {
    NodeState& state = *nodes_[self];
    const auto& reply = std::any_cast<const QueryHits&>(msg.payload);
    const auto it = state.pending.find(reply.request_id);

    // False-positive accounting drives the reactive summary exchange.
    bool any_hit = false;
    for (const auto& hits : reply.per_capability) {
        if (!hits.empty()) any_hit = true;
    }
    if (!any_hit && config_.protocol == Protocol::kSAriadne) {
        // The peer's summary covered the request but its cache had nothing:
        // a Bloom false positive (or a stale filter). The exact backend has
        // no false positives by construction — an empty reply there can
        // only mean staleness, so the pull-threshold repair stays armed for
        // both backends but the false-positive counter is Bloom-only.
        if (config_.summary_backend == summary::SummaryBackend::kBloom &&
            metrics_.bloom_false_positives) {
            metrics_.bloom_false_positives->inc();
        }
        if (++state.peer_false_positives[msg.source] >=
            config_.false_positive_pull_threshold) {
            state.peer_false_positives[msg.source] = 0;
            if (metrics_.summary_pulls) metrics_.summary_pulls->inc();
            Message pull;
            pull.type = "summary-pull";
            pull.size_bytes = 8;
            transport_->unicast(self, msg.source, std::move(pull));
        }
    }

    if (it == state.pending.end()) return;  // already answered
    PendingRequest& pending = it->second;
    pending.compute_ms += reply.compute_ms;
    for (const auto& hits : reply.per_capability) {
        pending.hits.insert(pending.hits.end(), hits.begin(), hits.end());
    }
    if (pending.outstanding > 0) --pending.outstanding;
    if (pending.outstanding == 0) {
        finish_request(self, pending);
        state.pending.erase(it);
    }
}

void DiscoveryNetwork::finish_request(NodeId directory_node,
                                      PendingRequest& pending) {
    Message resp;
    resp.type = "resp";
    resp.size_bytes =
        16 + static_cast<std::uint32_t>(pending.hits.size()) * kHitWireBytes;
    resp.payload =
        Response{pending.request_id, pending.hits,
                 pending.local_satisfied || !pending.hits.empty(),
                 pending.compute_ms, pending.directories_asked};
    transport_->unicast(directory_node, pending.client, std::move(resp));
}

void DiscoveryNetwork::republish(NodeId provider) {
    NodeState& state = *nodes_[provider];
    if (!transport_->is_up(provider)) {
        // Node is down; keep the timer alive so it resumes on recovery.
        transport_->schedule(config_.republish_period_ms,
                       [this, provider] { republish(provider); });
        return;
    }
    NodeId target = state.known_directory;
    if (target == kNoNode || !nodes_[target]->is_directory ||
        !transport_->is_up(target)) {
        target = directory_for(provider);
    }
    if (target != kNoNode) {
        for (const std::string& doc : state.owned_services) {
            Message pub;
            pub.type = "pub";
            pub.size_bytes = static_cast<std::uint32_t>(doc.size());
            pub.payload = PublishDoc{doc};
            transport_->unicast(provider, target, std::move(pub));
        }
    }
    transport_->schedule(config_.republish_period_ms,
                   [this, provider] { republish(provider); });
}

void DiscoveryNetwork::check_request_timeout(std::uint64_t request_id) {
    const auto it = outcomes_.find(request_id);
    if (it == outcomes_.end()) return;
    DiscoveryOutcome& outcome = it->second;
    if (outcome.terminal) return;  // settled; retry state already released
    // A satisfied answer ends the retry loop. Keep retrying while the
    // request is unanswered OR only answered unsatisfied — under churn an
    // early "nothing found" often comes from a freshly elected directory
    // that has not been repopulated yet.
    if (outcome.answered && outcome.satisfied) {
        conclude_request(request_id, outcome, /*expired=*/false);
        return;
    }
    const auto retry_it = retry_state_.find(request_id);
    if (retry_it == retry_state_.end()) return;
    RetryState& retry = retry_it->second;
    if (retry.retries_left <= 0) {
        // Retry budget exhausted: give up *loudly*. The silent `return`
        // this replaces leaked the RetryState entry, left directory-side
        // PendingRequests waiting on partitioned peers forever, and never
        // told the client its request was abandoned.
        conclude_request(request_id, outcome, /*expired=*/true);
        return;
    }
    const NodeId target = directory_for(retry.client);
    if (target == kNoNode || !transport_->is_up(retry.client)) {
        // Fully partitioned (or the client itself is down): a retransmit
        // cannot reach anything, so consuming a retry here would burn the
        // budget with no transmission. Defer instead — keep the budget
        // intact and poll again; if the partition heals, the next check
        // (or a dir-adv flush) carries a real retransmission.
        transport_->schedule(
            config_.request_timeout_ms,
            [this, request_id] { check_request_timeout(request_id); });
        return;
    }
    --retry.retries_left;
    if (metrics_.requests_retried) metrics_.requests_retried->inc();

    Message req;
    req.type = "req";
    req.size_bytes = static_cast<std::uint32_t>(retry.document.size());
    req.payload = Request{request_id, retry.client, retry.document};
    transport_->unicast(retry.client, target, std::move(req));
    transport_->schedule(config_.request_timeout_ms,
                   [this, request_id] { check_request_timeout(request_id); });
}

void DiscoveryNetwork::conclude_request(std::uint64_t request_id,
                                        DiscoveryOutcome& outcome,
                                        bool expired) {
    if (outcome.terminal) return;
    outcome.terminal = true;
    outcome.expired = expired;
    retry_state_.erase(request_id);
    // Reap directory-side bookkeeping the request may have left behind: a
    // forward sent to a peer that partitioned away never gets its reply, so
    // the PendingRequest would otherwise sit in `pending` forever. Also
    // purge any still-deferred copy so a late dir-adv does not flush a
    // request nobody is waiting on.
    for (const auto& node : nodes_) {
        if (node->pending.erase(request_id) > 0 && metrics_.pending_reaped) {
            metrics_.pending_reaped->inc();
        }
        const auto deferred = std::erase_if(
            node->deferred_requests,
            [request_id](const auto& entry) { return entry.first == request_id; });
        if (deferred > 0 && metrics_.deferred_requests) {
            metrics_.deferred_requests->sub(static_cast<std::int64_t>(deferred));
        }
    }
    // Every terminal request lands in exactly one of these three bins, so
    // issued == satisfied + unsatisfied + expired + in_flight always holds.
    if (expired) {
        if (metrics_.requests_expired) metrics_.requests_expired->inc();
    } else if (outcome.satisfied) {
        if (metrics_.requests_satisfied) metrics_.requests_satisfied->inc();
    } else {
        if (metrics_.requests_unsatisfied) metrics_.requests_unsatisfied->inc();
    }
    if (metrics_.requests_in_flight) metrics_.requests_in_flight->sub(1);
    if (metrics_.retry_backlog) {
        metrics_.retry_backlog->set(
            static_cast<std::int64_t>(retry_state_.size()));
    }
    if (outcome.answered && metrics_.response_ms) {
        metrics_.response_ms->observe(outcome.response_time_ms());
    }
    if (outcome.answered && metrics_.directory_compute_ms) {
        metrics_.directory_compute_ms->observe(outcome.directory_compute_ms);
    }
}

// --- dispatch -----------------------------------------------------------------

void DiscoveryNetwork::handle_message(NodeId self, const Message& msg) {
    NodeState& state = *nodes_[self];

    // Wire-level dedup: a fault-injected duplicate delivery carries the
    // wire_seq of the send it echoes. Dropping it here keeps a doubled
    // pub/req/fwd from double-counting, double-replying or
    // double-decrementing `outstanding` anywhere below.
    if (msg.wire_seq != 0 && !state.first_delivery(msg.wire_seq)) {
        if (metrics_.duplicates_dropped) metrics_.duplicates_dropped->inc();
        return;
    }

    if (msg.type == "dir-adv") {
        const auto& adv = std::any_cast<const DirAdv&>(msg.payload);
        state.last_adv = transport_->now();
        state.election_pending = false;  // suppress a pending election
        state.known_directory = adv.directory;
        if (!state.pending_handover.empty()) {
            if (metrics_.handovers) metrics_.handovers->inc();
            Message handover_msg;
            handover_msg.type = "handover";
            handover_msg.size_bytes =
                static_cast<std::uint32_t>(state.pending_handover.size());
            handover_msg.payload = Handover{std::move(state.pending_handover)};
            state.pending_handover.clear();
            transport_->unicast(self, adv.directory, std::move(handover_msg));
        }
        // Flush work deferred for lack of a directory.
        auto publishes = std::move(state.deferred_publishes);
        state.deferred_publishes.clear();
        if (metrics_.deferred_publishes && !publishes.empty()) {
            metrics_.deferred_publishes->sub(
                static_cast<std::int64_t>(publishes.size()));
        }
        for (auto& doc : publishes) publish_service(self, std::move(doc));
        auto requests = std::move(state.deferred_requests);
        state.deferred_requests.clear();
        if (metrics_.deferred_requests && !requests.empty()) {
            metrics_.deferred_requests->sub(
                static_cast<std::int64_t>(requests.size()));
        }
        for (auto& [id, doc] : requests) {
            Message req;
            req.type = "req";
            req.size_bytes = static_cast<std::uint32_t>(doc.size());
            req.payload = Request{id, self, std::move(doc)};
            transport_->unicast(self, adv.directory, std::move(req));
        }
        return;
    }
    if (msg.type == "elect-call") {
        if (state.is_directory) {
            // A live directory answers an election call with an immediate
            // advertisement, suppressing the election.
            Message adv;
            adv.type = "dir-adv";
            adv.payload = DirAdv{self};
            adv.size_bytes = 16;
            transport_->broadcast(self, config_.vicinity_hops, std::move(adv));
            return;
        }
        if (state.declines_role) return;  // resigned: not a candidate
        const auto& call = std::any_cast<const ElectCall&>(msg.payload);
        Message cand;
        cand.type = "elect-cand";
        cand.payload = ElectCandidate{self, fitness(self)};
        cand.size_bytes = 24;
        transport_->unicast(self, call.initiator, std::move(cand));
        return;
    }
    if (msg.type == "elect-cand") {
        if (state.election_pending) {
            state.candidates.push_back(
                std::any_cast<const ElectCandidate&>(msg.payload));
        }
        return;
    }
    if (msg.type == "elect-appoint") {
        become_directory(self);
        return;
    }
    if (msg.type == "pub") {
        handle_publish(self, msg);
        return;
    }
    if (msg.type == "pub-batch") {
        handle_publish_batch(self, msg);
        return;
    }
    if (msg.type == "req") {
        handle_request(self, msg);
        return;
    }
    if (msg.type == "fwd") {
        handle_forward(self, msg);
        return;
    }
    if (msg.type == "fwd-resp") {
        handle_forward_reply(self, msg);
        return;
    }
    if (msg.type == "handover") {
        if (state.semdir != nullptr) {
            const auto& handover = std::any_cast<const Handover&>(msg.payload);
            (void)directory::import_state(*state.semdir, handover.state_xml);
            push_summary(self);
        }
        return;
    }
    if (msg.type == "summary-pull") {
        if (state.semdir != nullptr) {
            // A pull *reply* is reactive, not proactive: counting it under
            // summary_pushes would conflate the two flows and break any
            // comparison against the false_positive_pull_threshold policy.
            if (metrics_.summary_pull_replies) {
                metrics_.summary_pull_replies->inc();
            }
            if (config_.summary_backend ==
                summary::SummaryBackend::kInterval) {
                // Pull replies are always a full snapshot: the puller
                // either has no copy yet (fresh election) or detected a
                // version gap a delta cannot bridge.
                auto image = summary::encode_summary(
                    state.semdir->interval_summary());
                if (metrics_.summary_bytes_sent) {
                    metrics_.summary_bytes_sent->inc(
                        static_cast<std::uint64_t>(image.size()));
                }
                Message push;
                push.type = "summary-bitmap";
                push.size_bytes =
                    static_cast<std::uint32_t>(8 + image.size());
                push.payload = msg::SummaryBitmap{self, std::move(image)};
                transport_->unicast(self, msg.source, std::move(push));
                return;
            }
            const auto wire = state.semdir->summary().serialize();
            if (metrics_.summary_bytes_sent) {
                metrics_.summary_bytes_sent->inc(
                    static_cast<std::uint64_t>(wire.size() * 8));
            }
            Message push;
            push.type = "summary-push";
            push.payload = SummaryPush{self, wire};
            push.size_bytes = static_cast<std::uint32_t>(wire.size() * 8);
            transport_->unicast(self, msg.source, std::move(push));
        }
        return;
    }
    if (msg.type == "summary-push") {
        const auto& push = std::any_cast<const SummaryPush&>(msg.payload);
        // Wire data is peer-controlled: a corrupt or hostile summary must
        // be contained here, not unwind the simulator event loop.
        if (auto filter = bloom::BloomFilter::try_deserialize(push.wire)) {
            state.peer_summaries.insert_or_assign(push.from,
                                                  *std::move(filter));
        } else if (metrics_.bloom_wire_rejected) {
            metrics_.bloom_wire_rejected->inc();
        }
        return;
    }
    if (msg.type == "summary-bitmap") {
        const auto& push =
            std::any_cast<const msg::SummaryBitmap&>(msg.payload);
        // The image is peer-controlled bytes: the bounded summary decoder
        // either yields an invariant-checked summary or a parse error that
        // is counted and dropped (same containment as Bloom pushes).
        if (auto decoded = summary::try_decode_summary(push.image)) {
            state.peer_exact_summaries.insert_or_assign(
                push.from, std::move(decoded).value());
        } else if (metrics_.bloom_wire_rejected) {
            metrics_.bloom_wire_rejected->inc();
        }
        return;
    }
    if (msg.type == "summary-delta") {
        const auto& push =
            std::any_cast<const msg::SummaryDelta&>(msg.payload);
        auto decoded = summary::try_decode_delta(push.image);
        if (!decoded) {
            if (metrics_.bloom_wire_rejected) metrics_.bloom_wire_rejected->inc();
            return;
        }
        auto held = state.peer_exact_summaries.find(push.from);
        summary::DeltaApply applied = summary::DeltaApply::kGap;
        if (held != state.peer_exact_summaries.end()) {
            applied = held->second.apply_delta(decoded.value());
        }
        if (applied == summary::DeltaApply::kGap) {
            // Missed the delta's base version (packet loss, late election,
            // or no copy at all): re-pull a full snapshot. kDuplicate is
            // the idempotent case — a re-delivered delta changes nothing.
            if (metrics_.summary_pulls) metrics_.summary_pulls->inc();
            Message pull;
            pull.type = "summary-pull";
            pull.size_bytes = 8;
            transport_->unicast(self, msg.source, std::move(pull));
        }
        return;
    }
    if (msg.type == "pub-ack") {
        const auto& ack = std::any_cast<const PubAck&>(msg.payload);
        if (state.outstanding_publishes.erase(ack.pub_id) > 0) {
            if (metrics_.publish_outstanding) metrics_.publish_outstanding->sub(1);
            if (metrics_.publishes_acked) metrics_.publishes_acked->inc();
        }
        return;
    }
    if (msg.type == "pub-nack") {
        const auto& nack = std::any_cast<const PubNack&>(msg.payload);
        if (nack.pub_id != 0) {
            // Acknowledged publish: re-route immediately without consuming
            // a retry — the nack is routing information, not a loss.
            if (state.outstanding_publishes.count(nack.pub_id) > 0) {
                send_publish(self, nack.pub_id);
            }
            return;
        }
        // Legacy publish: the nack carries the document; route it again
        // (or defer it for the next dir-adv) without re-adding it to
        // owned_services.
        const NodeId target = directory_for(self);
        if (target == kNoNode) {
            state.deferred_publishes.push_back(nack.document);
            if (metrics_.deferred_publishes) metrics_.deferred_publishes->add(1);
            return;
        }
        Message pub;
        pub.type = "pub";
        pub.size_bytes = static_cast<std::uint32_t>(nack.document.size());
        pub.payload = PublishDoc{nack.document, 0};
        transport_->unicast(self, target, std::move(pub));
        return;
    }
    if (msg.type == "resp") {
        const auto& response = std::any_cast<const Response&>(msg.payload);
        const auto it = outcomes_.find(response.request_id);
        if (it == outcomes_.end()) return;
        DiscoveryOutcome& outcome = it->second;
        // A satisfied answer is final; an unsatisfied one never downgrades
        // a satisfied outcome obtained from an earlier attempt — and once
        // terminal (expired or already satisfied) a straggler reply from a
        // slow directory is ignored entirely.
        if (outcome.terminal) return;
        if (outcome.answered && outcome.satisfied) return;
        if (metrics_.responses) metrics_.responses->inc();
        outcome.answered = true;
        outcome.satisfied = response.satisfied;
        outcome.hits = response.hits;
        outcome.answered_at = transport_->now();
        outcome.directory_compute_ms = response.compute_ms;
        outcome.directories_asked = response.directories_asked;
        // Without a retry budget the first answer is final; with one, only
        // a satisfying answer ends the loop (the timeout handler concludes
        // the rest).
        if (outcome.satisfied || config_.request_timeout_ms <= 0) {
            conclude_request(response.request_id, outcome, /*expired=*/false);
        }
        return;
    }
}

std::size_t DiscoveryNetwork::publish_backlog() const noexcept {
    std::size_t total = 0;
    for (const auto& node : nodes_) total += node->outstanding_publishes.size();
    return total;
}

void DiscoveryNetwork::inject_summary_push(net::NodeId from, net::NodeId to,
                                           std::vector<std::uint64_t> wire) {
    Message push;
    push.type = "summary-push";
    push.size_bytes = static_cast<std::uint32_t>(wire.size() * 8);
    push.payload = SummaryPush{from, std::move(wire)};
    transport_->unicast(from, to, std::move(push));
}

void DiscoveryNetwork::inject_summary_image(net::NodeId from, net::NodeId to,
                                            bool delta,
                                            std::vector<std::uint8_t> image) {
    Message push;
    push.type = delta ? "summary-delta" : "summary-bitmap";
    push.size_bytes = static_cast<std::uint32_t>(8 + image.size());
    if (delta) {
        push.payload = msg::SummaryDelta{from, std::move(image)};
    } else {
        push.payload = msg::SummaryBitmap{from, std::move(image)};
    }
    transport_->unicast(from, to, std::move(push));
}

void DiscoveryNetwork::run_for(SimTime duration_ms) {
    transport_->run_for(duration_ms);
}

const DiscoveryOutcome& DiscoveryNetwork::outcome(
    std::uint64_t request_id) const {
    const auto it = outcomes_.find(request_id);
    if (it == outcomes_.end()) {
        throw LookupError("unknown discovery request id " +
                          std::to_string(request_id));
    }
    return it->second;
}

}  // namespace sariadne::ariadne
