// The Transport seam of the discovery protocol. DiscoveryNetwork used to
// own a net::Simulator directly; it now talks exclusively through this
// interface, so the same protocol logic runs unchanged on
//
//   * ariadne::SimTransport        — the deterministic discrete-event
//     simulator testbed (net/sim_transport.hpp); byte-identical to
//     the pre-seam behaviour, all fault injection preserved, and
//   * net::EventLoopTransport      — a poll-based nonblocking-socket
//     event loop moving the same messages as wire-codec frames over real
//     TCP connections (net/event_loop.hpp), hosting sariadne_daemon.
//
// Contract (every implementation):
//
//   Threading   — single-threaded reactor. The delivery handler and every
//                 scheduled action run on the thread that drives run_for()
//                 / the event loop; the protocol layer therefore needs no
//                 locks of its own. unicast/broadcast/schedule must only
//                 be called from that same thread (delivery and timer
//                 callbacks), exactly as with the simulator.
//   Ordering    — deliveries from one sender to one receiver preserve
//                 send order (FIFO per direction). No cross-sender order
//                 is promised; the simulator's jitter faults and real TCP
//                 both reorder across peers.
//   Time        — now() is milliseconds on the transport's clock: virtual
//                 event time on the simulator, steady-clock real time on
//                 the socket loop. schedule() fires on that same clock,
//                 never before its delay has elapsed, and never
//                 concurrently with a delivery.
//   Backpressure— send paths never block the reactor. The simulator's
//                 queue is unbounded (virtual time is free); the socket
//                 transport bounds each connection's write queue and
//                 sheds frames (counted under transport.* metrics) when a
//                 peer stops draining.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ariadne/transport_types.hpp"
#include "obs/metrics.hpp"

namespace sariadne::ariadne {

class Transport {
public:
    /// Delivery callback: `self` is the node the message was addressed to
    /// (always a node hosted by this transport), `msg` carries the
    /// protocol payload with source/wire_seq stamped by the transport.
    using DeliveryHandler =
        std::function<void(net::NodeId self, const net::Message& msg)>;

    virtual ~Transport() = default;

    // --- wiring ---------------------------------------------------------

    /// Installs the protocol's delivery callback. Must be called before
    /// any message can arrive; replacing the handler mid-run is allowed
    /// (tests) but not thread-safe.
    virtual void set_delivery_handler(DeliveryHandler handler) = 0;

    /// Mirrors transport counters into `registry` (nullptr detaches). The
    /// registry must outlive the transport.
    virtual void set_metrics(obs::MetricsRegistry* registry) = 0;

    // --- data plane -----------------------------------------------------

    /// Sends `msg` from `from` to `to`. Unreachable destinations are
    /// counted and dropped, never an error.
    virtual void unicast(net::NodeId from, net::NodeId to,
                         net::Message msg) = 0;

    /// TTL-bounded flood to every up-node within `ttl_hops` of `from`
    /// (excluding `from`). The socket transport has one-hop reach to every
    /// connected peer, so any ttl >= 1 covers all live connections.
    virtual void broadcast(net::NodeId from, std::uint32_t ttl_hops,
                           net::Message msg) = 0;

    // --- clock ----------------------------------------------------------

    virtual net::SimTime now() const = 0;

    /// Schedules `action` on the transport thread `delay_ms` from now.
    virtual void schedule(net::SimTime delay_ms,
                          std::function<void()> action) = 0;

    /// Drives the transport for `duration_ms` of its clock: virtual time
    /// on the simulator, real wall time on the event loop.
    virtual void run_for(net::SimTime duration_ms) = 0;

    /// True when nothing further can happen without external input (no
    /// queued events; the socket transport is idle between arrivals).
    virtual bool idle() const = 0;

    // --- node roster (what directory_for / fitness consult) -------------

    /// Number of addressable nodes. Fixed for the transport's lifetime
    /// (the socket transport preallocates its connection capacity).
    virtual std::size_t node_count() const = 0;

    /// Whether `node` is currently reachable (up in the topology / its
    /// connection is live).
    virtual bool is_up(net::NodeId node) const = 0;

    /// Hop distances from `from` to every node, -1 when unreachable —
    /// the routing oracle behind directory_for(). The socket transport is
    /// a star: self 0, live peers 1, everything else -1.
    virtual std::vector<int> hop_distances(net::NodeId from) const = 0;

    /// Mains-powered infrastructure flag (election fitness).
    virtual bool is_infrastructure(net::NodeId node) const = 0;

    /// Radio/link degree of `node` (election fitness).
    virtual std::size_t degree(net::NodeId node) const = 0;

    // --- accounting -----------------------------------------------------

    virtual const net::TrafficStats& stats() const = 0;
};

}  // namespace sariadne::ariadne
