// lint:wire-decode — the decode half faces network bytes and must report
// failures through Result, never exceptions.
#include "ariadne/wire_bridge.hpp"

#include <utility>

#include "ariadne/messages.hpp"
#include "ariadne/wire.hpp"

namespace sariadne::ariadne::wirebridge {

namespace {

using directory::MatchHit;

wire::Hit to_wire(const MatchHit& hit) {
    return wire::Hit{hit.service, hit.service_name, hit.capability_name,
                     hit.semantic_distance};
}

MatchHit from_wire(const wire::Hit& hit) {
    return MatchHit{hit.service, hit.service_name, hit.capability_name,
                    hit.semantic_distance};
}

std::vector<wire::Hit> to_wire(const std::vector<MatchHit>& hits) {
    std::vector<wire::Hit> out;
    out.reserve(hits.size());
    for (const MatchHit& hit : hits) out.push_back(to_wire(hit));
    return out;
}

std::vector<MatchHit> from_wire(const std::vector<wire::Hit>& hits) {
    std::vector<MatchHit> out;
    out.reserve(hits.size());
    for (const wire::Hit& hit : hits) out.push_back(from_wire(hit));
    return out;
}

ErrorInfo mismatch(const char* type) {
    return ErrorInfo{ErrorCode::kInternal,
                     std::string("payload does not match message type \"") +
                         type + "\""};
}

/// Non-throwing payload access: nullptr on type mismatch.
template <typename T>
const T* payload_as(const net::Message& message) {
    return std::any_cast<T>(&message.payload);
}

}  // namespace

Result<std::vector<std::uint8_t>> encode_message(const net::Message& message) {
    wire::WireMessage wm;
    const std::string& type = message.type;
    if (type == "dir-adv") {
        const auto* p = payload_as<msg::DirAdv>(message);
        if (p == nullptr) return mismatch("dir-adv");
        wm.type = wire::MsgType::kDirAdv;
        wm.payload = wire::DirAdv{p->directory};
    } else if (type == "elect-call") {
        const auto* p = payload_as<msg::ElectCall>(message);
        if (p == nullptr) return mismatch("elect-call");
        wm.type = wire::MsgType::kElectCall;
        wm.payload = wire::ElectCall{p->initiator};
    } else if (type == "elect-cand") {
        const auto* p = payload_as<msg::ElectCandidate>(message);
        if (p == nullptr) return mismatch("elect-cand");
        wm.type = wire::MsgType::kElectCandidate;
        wm.payload = wire::ElectCandidate{p->candidate, p->fitness};
    } else if (type == "elect-appoint") {
        wm.type = wire::MsgType::kElectAppoint;
        wm.payload = wire::ElectAppoint{};
    } else if (type == "pub") {
        const auto* p = payload_as<msg::PublishDoc>(message);
        if (p == nullptr) return mismatch("pub");
        wm.type = wire::MsgType::kPublish;
        wm.payload = wire::PublishDoc{p->document, p->pub_id};
    } else if (type == "pub-ack") {
        const auto* p = payload_as<msg::PubAck>(message);
        if (p == nullptr) return mismatch("pub-ack");
        wm.type = wire::MsgType::kPubAck;
        wm.payload = wire::PubAck{p->pub_id};
    } else if (type == "pub-nack") {
        const auto* p = payload_as<msg::PubNack>(message);
        if (p == nullptr) return mismatch("pub-nack");
        wm.type = wire::MsgType::kPubNack;
        wm.payload = wire::PubNack{p->pub_id, p->document};
    } else if (type == "req") {
        const auto* p = payload_as<msg::Request>(message);
        if (p == nullptr) return mismatch("req");
        wm.type = wire::MsgType::kRequest;
        wm.payload = wire::Request{p->request_id, p->client, p->document};
    } else if (type == "resp") {
        const auto* p = payload_as<msg::Response>(message);
        if (p == nullptr) return mismatch("resp");
        wm.type = wire::MsgType::kResponse;
        wm.payload =
            wire::Response{p->request_id, to_wire(p->hits), p->satisfied,
                           p->compute_ms, p->directories_asked};
    } else if (type == "fwd") {
        const auto* p = payload_as<msg::Forward>(message);
        if (p == nullptr) return mismatch("fwd");
        wm.type = wire::MsgType::kForward;
        wm.payload = wire::Forward{p->request_id, p->origin, p->document};
    } else if (type == "fwd-resp") {
        const auto* p = payload_as<msg::QueryHits>(message);
        if (p == nullptr) return mismatch("fwd-resp");
        wire::ForwardResponse out;
        out.request_id = p->request_id;
        out.compute_ms = p->compute_ms;
        out.per_capability.reserve(p->per_capability.size());
        for (const auto& hits : p->per_capability) {
            out.per_capability.push_back(to_wire(hits));
        }
        wm.type = wire::MsgType::kForwardResponse;
        wm.payload = std::move(out);
    } else if (type == "summary-push") {
        const auto* p = payload_as<msg::SummaryPush>(message);
        if (p == nullptr) return mismatch("summary-push");
        wm.type = wire::MsgType::kSummaryPush;
        wm.payload = wire::SummaryPush{p->from, p->wire};
    } else if (type == "summary-bitmap") {
        const auto* p = payload_as<msg::SummaryBitmap>(message);
        if (p == nullptr) return mismatch("summary-bitmap");
        wm.type = wire::MsgType::kSummaryBitmap;
        wm.payload = wire::SummaryBitmap{p->from, p->image};
    } else if (type == "summary-delta") {
        const auto* p = payload_as<msg::SummaryDelta>(message);
        if (p == nullptr) return mismatch("summary-delta");
        wm.type = wire::MsgType::kSummaryDelta;
        wm.payload = wire::SummaryDelta{p->from, p->image};
    } else if (type == "summary-pull") {
        wm.type = wire::MsgType::kSummaryPull;
        wm.payload = wire::SummaryPull{};
    } else if (type == "handover") {
        const auto* p = payload_as<msg::Handover>(message);
        if (p == nullptr) return mismatch("handover");
        wm.type = wire::MsgType::kHandover;
        wm.payload = wire::Handover{p->state_xml};
    } else if (type == "pub-batch") {
        const auto* p = payload_as<msg::PublishBatch>(message);
        if (p == nullptr) return mismatch("pub-batch");
        wire::PublishBatch out;
        out.docs.reserve(p->docs.size());
        for (const msg::PublishDoc& doc : p->docs) {
            out.docs.push_back(wire::PublishDoc{doc.document, doc.pub_id});
        }
        wm.type = wire::MsgType::kPublishBatch;
        wm.payload = std::move(out);
    } else {
        return ErrorInfo{ErrorCode::kInternal,
                         "unknown message type \"" + type + "\""};
    }
    return wire::encode(wm);
}

Result<net::Message> try_decode_message(
    std::span<const std::uint8_t> bytes) noexcept {
    auto decoded = wire::try_decode(bytes);
    if (!decoded) return decoded.error();
    wire::WireMessage& wm = decoded.value();

    net::Message message;
    message.type = wire::to_string(wm.type);
    message.size_bytes = static_cast<std::uint32_t>(bytes.size());
    switch (wm.type) {
        case wire::MsgType::kDirAdv: {
            auto& p = std::get<wire::DirAdv>(wm.payload);
            message.payload = msg::DirAdv{p.directory};
            break;
        }
        case wire::MsgType::kElectCall: {
            auto& p = std::get<wire::ElectCall>(wm.payload);
            message.payload = msg::ElectCall{p.initiator};
            break;
        }
        case wire::MsgType::kElectCandidate: {
            auto& p = std::get<wire::ElectCandidate>(wm.payload);
            message.payload = msg::ElectCandidate{p.candidate, p.fitness};
            break;
        }
        case wire::MsgType::kElectAppoint:
            break;  // no in-process payload
        case wire::MsgType::kPublish: {
            auto& p = std::get<wire::PublishDoc>(wm.payload);
            message.payload =
                msg::PublishDoc{std::move(p.document), p.pub_id};
            break;
        }
        case wire::MsgType::kPubAck: {
            auto& p = std::get<wire::PubAck>(wm.payload);
            message.payload = msg::PubAck{p.pub_id};
            break;
        }
        case wire::MsgType::kPubNack: {
            auto& p = std::get<wire::PubNack>(wm.payload);
            message.payload = msg::PubNack{p.pub_id, std::move(p.document)};
            break;
        }
        case wire::MsgType::kRequest: {
            auto& p = std::get<wire::Request>(wm.payload);
            message.payload =
                msg::Request{p.request_id, p.client, std::move(p.document)};
            break;
        }
        case wire::MsgType::kResponse: {
            auto& p = std::get<wire::Response>(wm.payload);
            message.payload =
                msg::Response{p.request_id, from_wire(p.hits), p.satisfied,
                              p.compute_ms, p.directories_asked};
            break;
        }
        case wire::MsgType::kForward: {
            auto& p = std::get<wire::Forward>(wm.payload);
            message.payload =
                msg::Forward{p.request_id, p.origin, std::move(p.document)};
            break;
        }
        case wire::MsgType::kForwardResponse: {
            auto& p = std::get<wire::ForwardResponse>(wm.payload);
            msg::QueryHits hits;
            hits.request_id = p.request_id;
            hits.compute_ms = p.compute_ms;
            hits.per_capability.reserve(p.per_capability.size());
            for (const auto& capability : p.per_capability) {
                hits.per_capability.push_back(from_wire(capability));
            }
            message.payload = std::move(hits);
            break;
        }
        case wire::MsgType::kSummaryPush: {
            auto& p = std::get<wire::SummaryPush>(wm.payload);
            message.payload =
                msg::SummaryPush{p.from, std::move(p.summary_wire)};
            break;
        }
        case wire::MsgType::kSummaryBitmap: {
            auto& p = std::get<wire::SummaryBitmap>(wm.payload);
            message.payload = msg::SummaryBitmap{p.from, std::move(p.image)};
            break;
        }
        case wire::MsgType::kSummaryDelta: {
            auto& p = std::get<wire::SummaryDelta>(wm.payload);
            message.payload = msg::SummaryDelta{p.from, std::move(p.image)};
            break;
        }
        case wire::MsgType::kSummaryPull:
            break;  // no in-process payload
        case wire::MsgType::kHandover: {
            auto& p = std::get<wire::Handover>(wm.payload);
            message.payload = msg::Handover{std::move(p.state_xml)};
            break;
        }
        case wire::MsgType::kPublishBatch: {
            auto& p = std::get<wire::PublishBatch>(wm.payload);
            msg::PublishBatch batch;
            batch.docs.reserve(p.docs.size());
            for (wire::PublishDoc& doc : p.docs) {
                batch.docs.push_back(
                    msg::PublishDoc{std::move(doc.document), doc.pub_id});
            }
            message.payload = std::move(batch);
            break;
        }
    }
    return message;
}

}  // namespace sariadne::ariadne::wirebridge
