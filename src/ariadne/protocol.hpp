// The S-Ariadne discovery protocol (§4) and its syntactic ancestor Ariadne,
// implemented over the Transport seam (ariadne/transport.hpp): the same
// protocol logic runs on the discrete-event simulator (SimTransport) and
// on real sockets (net::EventLoopTransport, hosting sariadne_daemon).
//
// Roles and flows:
//   * Directory backbone — nodes elected on the fly: a node that has not
//     heard a directory advertisement within `adv_timeout_ms` broadcasts an
//     election call (TTL `election_ttl`); candidates answer with a fitness
//     score (coverage/resources model); the best candidate is appointed,
//     becomes a directory, and advertises periodically within
//     `vicinity_hops`.
//   * Publish — each provider registers its description with the nearest
//     directory, which parses and classifies it into its capability DAGs
//     (semantic mode) or stores the WSDL document (syntactic mode), and
//     summarizes content as a Bloom filter over ontology URIs.
//   * Discover — the client queries its vicinity directory. The directory
//     answers locally; if the request is not fully satisfied it forwards it
//     — in S-Ariadne only to peer directories whose Bloom summaries cover
//     the request's ontology set; in Ariadne to every directory — then
//     aggregates replies and responds.
//
// Local directory compute (parse/classify/match) is measured in real
// milliseconds and charged as virtual service time, so end-to-end response
// times combine protocol latency with the very matching costs Figures 9/10
// measure. Directory membership is bootstrapped through a shared context
// (the paper's "virtual network" of directories); all data still moves in
// messages, so traffic accounting is faithful.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ariadne/transport.hpp"
#include "bloom/bloom_filter.hpp"
#include "directory/semantic_directory.hpp"
#include "directory/syntactic_directory.hpp"
#include "reasoner/knowledge_base.hpp"
#include "obs/metrics.hpp"
#include "summary/interval_summary.hpp"
#include "support/result.hpp"
#include "support/rng.hpp"

// Fwd decl only: the Topology-taking convenience constructor is
// declared here but defined in net/sim_transport.cpp, so this header
// never includes the higher net layer.
namespace sariadne::net {
class Topology;
}  // namespace sariadne::net

namespace sariadne::ariadne {

enum class Protocol : std::uint8_t {
    kAriadne,   ///< syntactic WSDL directories, flood forwarding
    kSAriadne,  ///< semantic DAG directories, Bloom-selective forwarding
};

struct ProtocolConfig {
    Protocol protocol = Protocol::kSAriadne;
    double adv_period_ms = 2000;    ///< directory advertisement period
    double adv_timeout_ms = 5000;   ///< silence before a node calls an election
    double election_wait_ms = 60;   ///< time to collect candidacies
    std::uint32_t vicinity_hops = 2;
    std::uint32_t election_ttl = 2;
    bloom::BloomParams bloom{};     ///< summary parameters (semantic mode)
    /// Which directory-summary backend semantic directories maintain and
    /// exchange: Bloom filters over ontology URIs (default, byte-identical
    /// to the pre-exact protocol) or exact interval bitmaps over concept
    /// codes ("summary-bitmap"/"summary-delta" pushes, zero routing false
    /// positives at concept granularity).
    summary::SummaryBackend summary_backend = summary::SummaryBackend::kBloom;
    std::size_t summary_push_every = 8;  ///< publishes between summary pushes
    /// Forwarded requests answered empty before a fresh summary is pulled
    /// (the paper's reactive exchange on false-positive threshold).
    std::size_t false_positive_pull_threshold = 3;
    /// Providers re-advertise their services this often (0 = never). The
    /// paper's directories "cache the descriptions of the services
    /// available in their vicinity"; periodic re-publication is what
    /// repopulates a freshly elected directory after churn.
    double republish_period_ms = 0;
    /// Clients re-send unanswered requests after this long (0 = never).
    double request_timeout_ms = 0;
    int max_request_retries = 2;
    /// Acknowledged publish: when > 0, every publish carries an id the
    /// serving directory acks (`pub-ack`); unacked publishes are
    /// retransmitted with exponential backoff plus deterministic jitter,
    /// re-routed per attempt, up to `publish_max_retries` before the
    /// attempt is abandoned (the periodic republish remains the long-term
    /// safety net). 0 = legacy fire-and-forget publish: no ack traffic, no
    /// retransmit state — byte-identical to the pre-ack protocol.
    double publish_ack_timeout_ms = 0;
    int publish_max_retries = 4;
    double publish_backoff_factor = 2.0;
    double publish_backoff_max_ms = 8000;
    /// Seed for protocol-side randomness (retransmit jitter). Jitter is
    /// only drawn on the acknowledged-publish path, so runs with acks off
    /// never consult the generator.
    std::uint64_t jitter_seed = 0x0A11ACEDULL;
};

/// Result of one discovery request, as observed by the client.
struct DiscoveryOutcome {
    bool answered = false;
    bool satisfied = false;
    /// Terminal: no further updates will arrive — the request was
    /// satisfied, ran without a retry budget, or exhausted its retries.
    bool terminal = false;
    /// The retry budget ran out without a satisfying answer; the request
    /// was abandoned (counted in `protocol.requests_expired`).
    bool expired = false;
    std::vector<directory::MatchHit> hits;
    net::SimTime issued_at = 0;
    net::SimTime answered_at = 0;
    double directory_compute_ms = 0;  ///< summed real matching time
    std::uint32_t directories_asked = 0;

    net::SimTime response_time_ms() const noexcept {
        return answered_at - issued_at;
    }
};

class DiscoveryNetwork {
public:
    /// Primary constructor: the protocol speaks exclusively through
    /// `transport` (owned). `kb` must outlive the network and contain
    /// every ontology the workload references (semantic mode). When
    /// `metrics` is non-null, the protocol, its directories and the
    /// transport report into it (`protocol.*`, `directory.*`, `sim.*` /
    /// `transport.*`); the registry must outlive the network.
    DiscoveryNetwork(std::unique_ptr<Transport> transport,
                     ProtocolConfig config, encoding::KnowledgeBase& kb,
                     obs::MetricsRegistry* metrics = nullptr);

    /// Simulator-testbed convenience: builds a SimTransport over
    /// `topology`. Defined in net/sim_transport.cpp so neither this header nor
    /// protocol.cpp depends on net/simulator.hpp; reach the simulator via
    /// ariadne::sim(network) (net/sim_transport.hpp) when a test needs faults
    /// or topology control.
    DiscoveryNetwork(net::Topology topology, ProtocolConfig config,
                     encoding::KnowledgeBase& kb,
                     obs::MetricsRegistry* metrics = nullptr);
    ~DiscoveryNetwork();

    DiscoveryNetwork(const DiscoveryNetwork&) = delete;
    DiscoveryNetwork& operator=(const DiscoveryNetwork&) = delete;

    Transport& transport() noexcept { return *transport_; }
    const Transport& transport() const noexcept { return *transport_; }

    /// Current time on the transport's clock (virtual or real ms).
    net::SimTime now() const { return transport_->now(); }

    /// True when the transport has nothing queued (see Transport::idle).
    bool idle() const { return transport_->idle(); }

    std::size_t node_count() const { return transport_->node_count(); }

    /// Starts node timers; call once before run().
    void start();

    /// Statically appoints a directory (tests / controlled benches); the
    /// normal path is timeout-driven election.
    void appoint_directory(net::NodeId node);

    /// Graceful directory resignation (low battery, planned departure):
    /// the directory exports its cached descriptions and hands them to the
    /// nearest peer directory — or, if it was the last one, calls an
    /// election and hands over to the winner once it advertises. This is
    /// the paper's Figure 7 scenario ("a directory leaves ... another one
    /// is elected and has to host the set of service descriptions").
    void resign_directory(net::NodeId node);

    /// Provider-side publish: ships the description document to the
    /// nearest directory. Returns the publish id when acknowledged
    /// publishing is configured, 0 on fire-and-forget.
    std::uint64_t publish_service(net::NodeId provider,
                                  std::string document_xml);

    /// Provider-side bulk publish: ships every document in one
    /// "pub-batch" datagram so the directory takes the batched ingest
    /// path (SemanticDirectory::publish_batch). Fire-and-forget only —
    /// with acknowledged publishing configured each document needs its
    /// own retransmit state, so this falls back to per-document
    /// publish_service and returns the last publish id.
    std::uint64_t publish_batch(net::NodeId provider,
                                std::vector<std::string> documents);

    /// Client-side discovery; returns the request id whose outcome can be
    /// read after the simulation ran.
    std::uint64_t discover(net::NodeId client, std::string request_xml);

    /// Non-throwing publish for daemon-facing callers (peer input is
    /// untrusted): validates the document before touching protocol state
    /// and maps parse/lookup failures to ErrorInfo via support/catching —
    /// consistent with DiscoveryEngine::try_publish.
    Result<std::uint64_t> try_publish_service(net::NodeId provider,
                                              std::string document_xml);

    /// Non-throwing discover; the malformed-request twin of discover().
    Result<std::uint64_t> try_discover(net::NodeId client,
                                       std::string request_xml);

    /// A request document prepared for matching: parsed once and resolved
    /// against the knowledge base, so repeat documents (periodic
    /// rediscovery, retries, forwarded copies) skip both the XML parse and
    /// the per-capability signature resolution on the query hot path.
    struct PreparedRequest {
        desc::ServiceRequest request;
        std::vector<desc::ResolvedCapability> resolved;
        /// KnowledgeBase::environment_tag at resolution time; a mismatch
        /// (ontology registered/upgraded since) forces a re-resolve.
        std::uint64_t env_tag = 0;
    };

    /// Parse+resolve-memoized request document. desc::parse_request is
    /// pure — the parse depends only on the document bytes — so the parsed
    /// request is cached verbatim; the resolution additionally depends on
    /// the knowledge base and is stamped with its environment tag and
    /// refreshed when that tag moves. Reactor-thread only, like every
    /// handler (see the Transport threading contract).
    const PreparedRequest& prepared_request(const std::string& document);

    /// Drives the transport for `duration_ms` (virtual or real ms).
    void run_for(net::SimTime duration_ms);

    const DiscoveryOutcome& outcome(std::uint64_t request_id) const;

    std::vector<net::NodeId> directories() const;
    bool is_directory(net::NodeId node) const;

    /// Directory serving a node (nearest by hops), kNoNode when none.
    net::NodeId directory_for(net::NodeId node) const;

    const net::TrafficStats& traffic() const noexcept {
        return transport_->stats();
    }

    /// Live retry-state entries (requests still holding a retry budget);
    /// drains to zero once every request is satisfied or expired —
    /// regression surface for the retry-state leak.
    std::size_t retry_backlog() const noexcept { return retry_state_.size(); }

    /// Outstanding acknowledged publishes across all providers; drains to
    /// zero once every publish was acked or exhausted its retransmit
    /// budget (always zero with acks disabled).
    std::size_t publish_backlog() const noexcept;

    /// Fault-injection hook: delivers a raw `summary-push` wire image from
    /// `from` to `to` through the transport, exactly as a (possibly
    /// hostile or corrupt) peer would. Tests use it to assert that invalid
    /// wire data is contained instead of unwinding the event loop.
    void inject_summary_push(net::NodeId from, net::NodeId to,
                             std::vector<std::uint64_t> wire);

    /// Exact-backend twin of inject_summary_push: delivers a raw
    /// `summary-bitmap` (delta=false) or `summary-delta` (delta=true)
    /// image, bypassing the directory-side encoder.
    void inject_summary_image(net::NodeId from, net::NodeId to, bool delta,
                              std::vector<std::uint8_t> image);

    /// The attached registry, nullptr when the network is uninstrumented.
    obs::MetricsRegistry* metrics() const noexcept { return metrics_.registry; }

    /// Node fitness used by elections (deterministic pseudo-battery ×
    /// degree); exposed for tests.
    double fitness(net::NodeId node) const;

private:
    struct NodeState;

    struct PendingRequest {
        std::uint64_t request_id = 0;
        net::NodeId client = net::kNoNode;
        std::string request_xml;
        std::vector<directory::MatchHit> hits;
        bool local_satisfied = false;
        std::size_t outstanding = 0;
        double compute_ms = 0;
        std::uint32_t directories_asked = 0;
    };

    struct RetryState {
        net::NodeId client = net::kNoNode;
        std::string document;
        int retries_left = 0;
    };

    void node_check_advertisement(net::NodeId node);
    void republish(net::NodeId provider);
    void check_request_timeout(std::uint64_t request_id);
    /// Routes an outstanding acknowledged publish to the current nearest
    /// directory (or arms a deferral poll when none is reachable) and
    /// schedules its ack-timeout check.
    void send_publish(net::NodeId provider, std::uint64_t pub_id);
    void check_publish_timeout(net::NodeId provider, std::uint64_t pub_id,
                               std::uint64_t expected_attempt);
    /// Marks an outcome terminal exactly once: releases its retry state,
    /// reaps abandoned directory-side pending entries and settles the
    /// in-flight/expired accounting.
    void conclude_request(std::uint64_t request_id, DiscoveryOutcome& outcome,
                          bool expired);
    void node_start_election(net::NodeId node);
    void close_election(net::NodeId initiator);
    void become_directory(net::NodeId node);
    void directory_advertise(net::NodeId node);
    void push_summary(net::NodeId directory);
    /// Interval-backend push: full "summary-bitmap" on the first push,
    /// then "summary-delta" since the last pushed version unless the delta
    /// image would outweigh the snapshot.
    void push_exact_summary(net::NodeId directory);
    void handle_message(net::NodeId self, const net::Message& msg);
    void handle_publish(net::NodeId self, const net::Message& msg);
    void handle_publish_batch(net::NodeId self, const net::Message& msg);
    void handle_request(net::NodeId self, const net::Message& msg);
    void handle_forward(net::NodeId self, const net::Message& msg);
    void handle_forward_reply(net::NodeId self, const net::Message& msg);
    void finish_request(net::NodeId directory_node, PendingRequest& pending);
    std::vector<net::NodeId> forward_targets(net::NodeId self,
                                             const std::string& request_xml);
    /// Runs the local query of one directory (semantic or syntactic);
    /// returns per-capability hits and fills `compute_ms` with the real
    /// time spent. The semantic branch replays the memoized parse+resolve
    /// into the reactor's reused QueryResult scratch.
    std::vector<std::vector<directory::MatchHit>> local_query(
        directory::SemanticDirectory* semdir,
        directory::SyntacticDirectory* syndir, const std::string& document,
        double& compute_ms);

    /// Cached registry handles; all null when uninstrumented.
    struct Metrics {
        obs::MetricsRegistry* registry = nullptr;
        obs::Counter* requests_issued = nullptr;
        obs::Counter* requests_retried = nullptr;
        obs::Counter* requests_expired = nullptr;
        obs::Counter* requests_satisfied = nullptr;
        obs::Counter* requests_unsatisfied = nullptr;
        obs::Counter* responses = nullptr;
        obs::Counter* forwards = nullptr;
        obs::Counter* elections_started = nullptr;
        obs::Counter* directories_elected = nullptr;
        obs::Counter* handovers = nullptr;
        obs::Counter* summary_pushes = nullptr;
        obs::Counter* summary_pulls = nullptr;
        obs::Counter* summary_pull_replies = nullptr;
        obs::Counter* bloom_false_positives = nullptr;
        obs::Counter* bloom_wire_rejected = nullptr;
        obs::Counter* summary_bytes_sent = nullptr;
        obs::Counter* summary_delta_pushes = nullptr;
        obs::Counter* forwards_saved_exact = nullptr;
        obs::Counter* pending_reaped = nullptr;
        obs::Counter* publishes_acked = nullptr;
        obs::Counter* publishes_retried = nullptr;
        obs::Counter* publishes_expired = nullptr;
        obs::Counter* publish_nacks = nullptr;
        obs::Counter* duplicates_dropped = nullptr;
        obs::Counter* malformed_publishes = nullptr;
        obs::Counter* malformed_requests = nullptr;
        obs::Gauge* requests_in_flight = nullptr;
        obs::Gauge* directories = nullptr;
        obs::Gauge* retry_backlog = nullptr;
        obs::Gauge* publish_outstanding = nullptr;
        obs::Gauge* deferred_publishes = nullptr;
        obs::Gauge* deferred_requests = nullptr;
        obs::Histogram* response_ms = nullptr;
        obs::Histogram* directory_compute_ms = nullptr;
    };

    std::unique_ptr<Transport> transport_;
    ProtocolConfig config_;
    encoding::KnowledgeBase* kb_;
    Metrics metrics_;
    std::vector<std::unique_ptr<NodeState>> nodes_;
    std::unordered_map<std::uint64_t, DiscoveryOutcome> outcomes_;
    std::unordered_map<std::uint64_t, RetryState> retry_state_;
    /// prepared_request memo; bounded by wholesale reset (distinct request
    /// documents in any deployment are few, so eviction order is moot).
    std::unordered_map<std::string, PreparedRequest> request_parse_cache_;
    /// Reactor-thread query scratch: one QueryResult reused across every
    /// local semantic query, so a pipelined request burst recycles the hit
    /// vectors/strings instead of reallocating them per message.
    directory::QueryResult local_query_scratch_;
    std::uint64_t next_request_id_ = 1;
    std::uint64_t next_pub_id_ = 1;
    /// Retransmit-jitter source; consulted only on acknowledged-publish
    /// paths so ack-off runs replay the pre-ack protocol exactly.
    Rng jitter_rng_;
};

}  // namespace sariadne::ariadne
