// Transport-neutral vocabulary shared by the protocol layer and every
// concrete transport. These types describe *what* moves between nodes,
// not *how*: the discrete-event simulator (net/simulator.hpp) and the
// real socket transport (net/event_loop.hpp) both address `NodeId`s,
// deliver `Message`s, and account traffic in a `TrafficStats`. They live
// in src/ariadne (below src/net in the layer DAG) so the protocol layer
// compiles against this header alone — never against a concrete
// transport — and they stay in namespace sariadne::net because they name
// the network-facing contract, wherever a transport implements it.
#pragma once

#include <any>
#include <cstdint>
#include <map>
#include <string>

namespace sariadne::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0xFFFFFFFFu;

/// Milliseconds on the transport's clock: virtual time on the simulator,
/// real steady-clock time on the socket event loop.
using SimTime = double;

struct Message {
    NodeId source = kNoNode;
    std::string type;   ///< protocol dispatch tag
    std::any payload;   ///< protocol-defined content
    std::uint32_t size_bytes = 0;  ///< modeled wire size (traffic accounting)
    /// Per-send sequence id, assigned by the transport: every unicast or
    /// broadcast initiation gets a fresh id, and a fault-injected duplicate
    /// delivery carries the id of the send it echoes. Receivers deduplicate
    /// on it; retransmissions are distinct sends and get distinct ids.
    std::uint64_t wire_seq = 0;
};

/// Traffic counters, aggregated over the run. The simulator fills every
/// field; the socket transport has no radio, so the link/fault series stay
/// zero there and `bytes_transmitted` counts real socket bytes.
struct TrafficStats {
    std::uint64_t unicasts = 0;          ///< unicast sends
    std::uint64_t broadcasts = 0;        ///< broadcast initiations
    std::uint64_t deliveries = 0;        ///< messages handed to the protocol
    std::uint64_t link_transmissions = 0;///< per-hop radio transmissions
    std::uint64_t bytes_transmitted = 0; ///< size-weighted link transmissions
    std::uint64_t dropped_unreachable = 0;
    std::uint64_t faults_dropped = 0;    ///< deliveries lost to the FaultPlan
    std::uint64_t faults_duplicated = 0; ///< deliveries echoed by the FaultPlan
    std::uint64_t faults_crashes = 0;    ///< scheduled node downs executed
    std::uint64_t faults_recoveries = 0; ///< scheduled node ups executed
    std::map<std::string, std::uint64_t> per_type;  ///< deliveries by tag

    /// Replay determinism check: two runs with the same seed and fault
    /// plan must produce identical traffic.
    friend bool operator==(const TrafficStats&, const TrafficStats&) = default;
};

}  // namespace sariadne::net
