// lint:wire-decode — this translation unit is a wire-decode path: it must
// not contain a `throw`; every failure is reported through Result.
#include "ariadne/wire.hpp"

#include <bit>
#include <cstring>

#include "support/contracts.hpp"

namespace sariadne::ariadne::wire {

namespace {

// --- encoding helpers ---------------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
    out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

void put_double(std::vector<std::uint8_t>& out, double v) {
    put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
    put_u32(out, static_cast<std::uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

void put_hit(std::vector<std::uint8_t>& out, const Hit& hit) {
    put_u32(out, hit.service);
    put_string(out, hit.service_name);
    put_string(out, hit.capability_name);
    put_u32(out, static_cast<std::uint32_t>(hit.semantic_distance));
}

// --- decoding helpers ---------------------------------------------------

/// Bounded cursor over the datagram. Every read checks the remaining
/// length first and reports the field that fell short, so a hostile
/// length field can neither run past the buffer nor size an allocation
/// beyond what the datagram actually carries.
class Reader {
public:
    explicit Reader(std::span<const std::uint8_t> bytes) noexcept
        : data_(bytes.data()), size_(bytes.size()) {}

    bool failed() const noexcept { return failed_; }
    const std::string& context() const noexcept { return context_; }
    std::size_t remaining() const noexcept { return size_ - pos_; }

    std::uint8_t u8(const char* field) noexcept {
        if (!require(1, field)) return 0;
        return data_[pos_++];
    }

    std::uint32_t u32(const char* field) noexcept {
        if (!require(4, field)) return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            v |= std::uint32_t{data_[pos_ + i]} << (8 * i);
        }
        pos_ += 4;
        return v;
    }

    std::uint64_t u64(const char* field) noexcept {
        if (!require(8, field)) return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= std::uint64_t{data_[pos_ + i]} << (8 * i);
        }
        pos_ += 8;
        return v;
    }

    double f64(const char* field) noexcept {
        return std::bit_cast<double>(u64(field));
    }

    bool boolean(const char* field) {
        const std::uint8_t v = u8(field);
        if (!failed_ && v > 1) fail(field, "boolean byte not 0/1");
        return v == 1;
    }

    std::string string(const char* field) {
        const std::uint32_t len = u32(field);
        if (failed_) return {};
        if (len > remaining()) {
            fail(field, "string length exceeds remaining input");
            return {};
        }
        std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
        pos_ += len;
        return s;
    }

    /// Validates a vector count against the minimum wire size of one
    /// element before the caller allocates anything.
    std::uint32_t count(const char* field, std::size_t min_element_bytes) {
        const std::uint32_t n = u32(field);
        if (failed_) return 0;
        if (min_element_bytes != 0 &&
            n > remaining() / min_element_bytes) {
            fail(field, "element count exceeds remaining input");
            return 0;
        }
        return n;
    }

    void fail(const char* field, const char* why) {
        if (failed_) return;
        failed_ = true;
        context_ = std::string(field) + ": " + why;
    }

private:
    bool require(std::size_t n, const char* field) noexcept {
        if (failed_) return false;
        if (size_ - pos_ < n) {
            failed_ = true;
            context_ = std::string(field) + ": truncated input";
            return false;
        }
        return true;
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool failed_ = false;
    std::string context_;
};

Hit read_hit(Reader& in) {
    Hit hit;
    hit.service = in.u32("hit.service");
    hit.service_name = in.string("hit.service_name");
    hit.capability_name = in.string("hit.capability_name");
    hit.semantic_distance =
        static_cast<std::int32_t>(in.u32("hit.semantic_distance"));
    return hit;
}

std::vector<Hit> read_hits(Reader& in, const char* field) {
    // A hit is at least 12 bytes (u32 + two empty strings + u32).
    const std::uint32_t n = in.count(field, 12);
    std::vector<Hit> hits;
    hits.reserve(n);
    for (std::uint32_t i = 0; i < n && !in.failed(); ++i) {
        hits.push_back(read_hit(in));
    }
    return hits;
}

/// Length-prefixed opaque byte image (summary snapshots/deltas). The
/// length is validated like a string's, so a hostile count cannot size an
/// allocation beyond the datagram.
std::vector<std::uint8_t> read_image(Reader& in, const char* field) {
    const std::uint32_t len = in.u32(field);
    std::vector<std::uint8_t> image;
    if (in.failed()) return image;
    if (len > in.remaining()) {
        in.fail(field, "image length exceeds remaining input");
        return image;
    }
    image.reserve(len);
    for (std::uint32_t i = 0; i < len; ++i) {
        image.push_back(in.u8(field));
    }
    return image;
}

ErrorInfo parse_error(std::string message) {
    return ErrorInfo{ErrorCode::kParse,
                     "wire decode failed: " + std::move(message)};
}

}  // namespace

const char* to_string(MsgType type) noexcept {
    switch (type) {
        case MsgType::kDirAdv: return "dir-adv";
        case MsgType::kElectCall: return "elect-call";
        case MsgType::kElectCandidate: return "elect-cand";
        case MsgType::kElectAppoint: return "elect-appoint";
        case MsgType::kPublish: return "pub";
        case MsgType::kPubAck: return "pub-ack";
        case MsgType::kPubNack: return "pub-nack";
        case MsgType::kRequest: return "req";
        case MsgType::kResponse: return "resp";
        case MsgType::kForward: return "fwd";
        case MsgType::kForwardResponse: return "fwd-resp";
        case MsgType::kSummaryPush: return "summary-push";
        case MsgType::kSummaryPull: return "summary-pull";
        case MsgType::kHandover: return "handover";
        case MsgType::kPublishBatch: return "pub-batch";
        case MsgType::kSummaryBitmap: return "summary-bitmap";
        case MsgType::kSummaryDelta: return "summary-delta";
    }
    return "unknown";
}

std::vector<std::uint8_t> encode(const WireMessage& message) {
    std::vector<std::uint8_t> out;
    put_u8(out, kMagic0);
    put_u8(out, kMagic1);
    put_u8(out, kVersion);
    put_u8(out, static_cast<std::uint8_t>(message.type));

    const auto expect_type = [&](MsgType type) {
        SARIADNE_EXPECTS(message.type == type);
    };

    std::visit(
        [&](const auto& payload) {
            using P = std::decay_t<decltype(payload)>;
            if constexpr (std::is_same_v<P, DirAdv>) {
                expect_type(MsgType::kDirAdv);
                put_u32(out, payload.directory);
            } else if constexpr (std::is_same_v<P, ElectCall>) {
                expect_type(MsgType::kElectCall);
                put_u32(out, payload.initiator);
            } else if constexpr (std::is_same_v<P, ElectCandidate>) {
                expect_type(MsgType::kElectCandidate);
                put_u32(out, payload.candidate);
                put_double(out, payload.fitness);
            } else if constexpr (std::is_same_v<P, ElectAppoint>) {
                expect_type(MsgType::kElectAppoint);
            } else if constexpr (std::is_same_v<P, PublishDoc>) {
                expect_type(MsgType::kPublish);
                put_u64(out, payload.pub_id);
                put_string(out, payload.document);
            } else if constexpr (std::is_same_v<P, PubAck>) {
                expect_type(MsgType::kPubAck);
                put_u64(out, payload.pub_id);
            } else if constexpr (std::is_same_v<P, PubNack>) {
                expect_type(MsgType::kPubNack);
                put_u64(out, payload.pub_id);
                put_string(out, payload.document);
            } else if constexpr (std::is_same_v<P, Request>) {
                expect_type(MsgType::kRequest);
                put_u64(out, payload.request_id);
                put_u32(out, payload.client);
                put_string(out, payload.document);
            } else if constexpr (std::is_same_v<P, Response>) {
                expect_type(MsgType::kResponse);
                put_u64(out, payload.request_id);
                put_u32(out, static_cast<std::uint32_t>(payload.hits.size()));
                for (const Hit& hit : payload.hits) put_hit(out, hit);
                put_u8(out, payload.satisfied ? 1 : 0);
                put_double(out, payload.compute_ms);
                put_u32(out, payload.directories_asked);
            } else if constexpr (std::is_same_v<P, Forward>) {
                expect_type(MsgType::kForward);
                put_u64(out, payload.request_id);
                put_u32(out, payload.origin);
                put_string(out, payload.document);
            } else if constexpr (std::is_same_v<P, ForwardResponse>) {
                expect_type(MsgType::kForwardResponse);
                put_u64(out, payload.request_id);
                put_u32(out, static_cast<std::uint32_t>(
                                 payload.per_capability.size()));
                for (const auto& hits : payload.per_capability) {
                    put_u32(out, static_cast<std::uint32_t>(hits.size()));
                    for (const Hit& hit : hits) put_hit(out, hit);
                }
                put_double(out, payload.compute_ms);
            } else if constexpr (std::is_same_v<P, SummaryPush>) {
                expect_type(MsgType::kSummaryPush);
                put_u32(out, payload.from);
                put_u32(out, static_cast<std::uint32_t>(
                                 payload.summary_wire.size()));
                for (const std::uint64_t word : payload.summary_wire) {
                    put_u64(out, word);
                }
            } else if constexpr (std::is_same_v<P, SummaryPull>) {
                expect_type(MsgType::kSummaryPull);
            } else if constexpr (std::is_same_v<P, Handover>) {
                expect_type(MsgType::kHandover);
                put_string(out, payload.state_xml);
            } else if constexpr (std::is_same_v<P, PublishBatch>) {
                expect_type(MsgType::kPublishBatch);
                put_u32(out, static_cast<std::uint32_t>(payload.docs.size()));
                for (const PublishDoc& doc : payload.docs) {
                    put_u64(out, doc.pub_id);
                    put_string(out, doc.document);
                }
            } else if constexpr (std::is_same_v<P, SummaryBitmap>) {
                expect_type(MsgType::kSummaryBitmap);
                put_u32(out, payload.from);
                put_u32(out, static_cast<std::uint32_t>(payload.image.size()));
                out.insert(out.end(), payload.image.begin(),
                           payload.image.end());
            } else if constexpr (std::is_same_v<P, SummaryDelta>) {
                expect_type(MsgType::kSummaryDelta);
                put_u32(out, payload.from);
                put_u32(out, static_cast<std::uint32_t>(payload.image.size()));
                out.insert(out.end(), payload.image.begin(),
                           payload.image.end());
            }
        },
        message.payload);
    return out;
}

Result<WireMessage> try_decode(std::span<const std::uint8_t> bytes) noexcept {
    Reader in(bytes);
    const std::uint8_t m0 = in.u8("magic[0]");
    const std::uint8_t m1 = in.u8("magic[1]");
    if (!in.failed() && (m0 != kMagic0 || m1 != kMagic1)) {
        return parse_error("magic: not an Ariadne datagram");
    }
    const std::uint8_t version = in.u8("version");
    if (!in.failed() && version != kVersion) {
        return parse_error("version: unsupported (" +
                           std::to_string(int{version}) + ")");
    }
    const std::uint8_t type_byte = in.u8("type");
    if (in.failed()) return parse_error(in.context());
    if (type_byte < static_cast<std::uint8_t>(MsgType::kDirAdv) ||
        type_byte > static_cast<std::uint8_t>(MsgType::kSummaryDelta)) {
        return parse_error("type: unknown message type " +
                           std::to_string(int{type_byte}));
    }

    WireMessage message;
    message.type = static_cast<MsgType>(type_byte);
    switch (message.type) {
        case MsgType::kDirAdv: {
            DirAdv p;
            p.directory = in.u32("dir-adv.directory");
            message.payload = p;
            break;
        }
        case MsgType::kElectCall: {
            ElectCall p;
            p.initiator = in.u32("elect-call.initiator");
            message.payload = p;
            break;
        }
        case MsgType::kElectCandidate: {
            ElectCandidate p;
            p.candidate = in.u32("elect-cand.candidate");
            p.fitness = in.f64("elect-cand.fitness");
            message.payload = p;
            break;
        }
        case MsgType::kElectAppoint: {
            message.payload = ElectAppoint{};
            break;
        }
        case MsgType::kPublish: {
            PublishDoc p;
            p.pub_id = in.u64("pub.pub_id");
            p.document = in.string("pub.document");
            message.payload = std::move(p);
            break;
        }
        case MsgType::kPubAck: {
            PubAck p;
            p.pub_id = in.u64("pub-ack.pub_id");
            message.payload = p;
            break;
        }
        case MsgType::kPubNack: {
            PubNack p;
            p.pub_id = in.u64("pub-nack.pub_id");
            p.document = in.string("pub-nack.document");
            message.payload = std::move(p);
            break;
        }
        case MsgType::kRequest: {
            Request p;
            p.request_id = in.u64("req.request_id");
            p.client = in.u32("req.client");
            p.document = in.string("req.document");
            message.payload = std::move(p);
            break;
        }
        case MsgType::kResponse: {
            Response p;
            p.request_id = in.u64("resp.request_id");
            p.hits = read_hits(in, "resp.hits");
            p.satisfied = in.boolean("resp.satisfied");
            p.compute_ms = in.f64("resp.compute_ms");
            p.directories_asked = in.u32("resp.directories_asked");
            message.payload = std::move(p);
            break;
        }
        case MsgType::kForward: {
            Forward p;
            p.request_id = in.u64("fwd.request_id");
            p.origin = in.u32("fwd.origin");
            p.document = in.string("fwd.document");
            message.payload = std::move(p);
            break;
        }
        case MsgType::kForwardResponse: {
            ForwardResponse p;
            p.request_id = in.u64("fwd-resp.request_id");
            // An empty per-capability list is 4 bytes (its hit count).
            const std::uint32_t caps =
                in.count("fwd-resp.per_capability", 4);
            p.per_capability.reserve(caps);
            for (std::uint32_t i = 0; i < caps && !in.failed(); ++i) {
                p.per_capability.push_back(
                    read_hits(in, "fwd-resp.hits"));
            }
            p.compute_ms = in.f64("fwd-resp.compute_ms");
            message.payload = std::move(p);
            break;
        }
        case MsgType::kSummaryPush: {
            SummaryPush p;
            p.from = in.u32("summary-push.from");
            const std::uint32_t words = in.count("summary-push.words", 8);
            p.summary_wire.reserve(words);
            for (std::uint32_t i = 0; i < words && !in.failed(); ++i) {
                p.summary_wire.push_back(in.u64("summary-push.word"));
            }
            message.payload = std::move(p);
            break;
        }
        case MsgType::kSummaryPull: {
            message.payload = SummaryPull{};
            break;
        }
        case MsgType::kHandover: {
            Handover p;
            p.state_xml = in.string("handover.state_xml");
            message.payload = std::move(p);
            break;
        }
        case MsgType::kPublishBatch: {
            PublishBatch p;
            // A doc is at least 12 bytes (u64 pub_id + empty string's u32).
            const std::uint32_t docs = in.count("pub-batch.docs", 12);
            p.docs.reserve(docs);
            for (std::uint32_t i = 0; i < docs && !in.failed(); ++i) {
                PublishDoc doc;
                doc.pub_id = in.u64("pub-batch.pub_id");
                doc.document = in.string("pub-batch.document");
                p.docs.push_back(std::move(doc));
            }
            message.payload = std::move(p);
            break;
        }
        case MsgType::kSummaryBitmap: {
            SummaryBitmap p;
            p.from = in.u32("summary-bitmap.from");
            p.image = read_image(in, "summary-bitmap.image");
            message.payload = std::move(p);
            break;
        }
        case MsgType::kSummaryDelta: {
            SummaryDelta p;
            p.from = in.u32("summary-delta.from");
            p.image = read_image(in, "summary-delta.image");
            message.payload = std::move(p);
            break;
        }
    }

    if (in.failed()) return parse_error(in.context());
    if (in.remaining() != 0) {
        return parse_error("trailing bytes after payload (" +
                           std::to_string(in.remaining()) + ")");
    }
    return message;
}

}  // namespace sariadne::ariadne::wire
