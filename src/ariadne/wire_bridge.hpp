// Bridge between the protocol's in-process messages (net::Message carrying
// an ariadne/messages.hpp payload in std::any) and the byte-level wire
// codec (ariadne/wire.*). This is the single point where the two payload
// vocabularies meet, so a field drifting between messages.hpp and wire.hpp
// breaks here at compile time (or as a bridge test failure) instead of
// silently corrupting traffic. net/event_loop.* frames every socket
// message through these two functions.
//
// Both directions are non-throwing: the decode side faces hostile bytes
// (lint:wire-decode), and the encode side reports an unknown type string
// or a payload/type mismatch as ErrorInfo rather than crashing a daemon
// on a programming error in a caller.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ariadne/transport_types.hpp"
#include "support/result.hpp"

namespace sariadne::ariadne::wirebridge {

/// Serializes `message` (type tag + msg:: payload) into one wire datagram.
/// Fails with kInternal when the type string is not one of the protocol's
/// 14 messages or the payload's concrete type does not match the tag.
Result<std::vector<std::uint8_t>> encode_message(const net::Message& message);

/// Parses one complete datagram into a deliverable net::Message: type
/// string set from the wire id, payload rebuilt as the msg:: struct,
/// size_bytes = datagram size. source and wire_seq are left for the
/// transport to stamp. Never throws; malformed input yields kParse.
Result<net::Message> try_decode_message(
    std::span<const std::uint8_t> bytes) noexcept;

}  // namespace sariadne::ariadne::wirebridge
