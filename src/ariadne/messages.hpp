// In-memory payloads of the protocol messages. These used to be
// anonymous-namespace structs inside protocol.cpp; they are shared now
// because two parties besides the protocol itself need them:
//
//   * ariadne/wire_bridge.* converts between these structs and the
//     bounded binary codec (ariadne/wire.*) at the socket boundary, and
//   * net/event_loop.* re-frames them onto TCP connections.
//
// The structs travel inside net::Message::payload as std::any; the
// Message::type tag selects which one ("dir-adv", "pub", "request", ...).
// Field layout must stay convertible to the wire structs in
// ariadne/wire.hpp — wire_bridge.cpp is the single point asserting that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ariadne/transport_types.hpp"
#include "directory/types.hpp"

namespace sariadne::ariadne::msg {

struct DirAdv {
    net::NodeId directory;
};

struct ElectCall {
    net::NodeId initiator;
};

struct ElectCandidate {
    net::NodeId candidate;
    double fitness;
};

struct PublishDoc {
    std::string document;
    /// Non-zero when the provider expects a `pub-ack`; 0 on legacy
    /// fire-and-forget publishes (including periodic republications).
    std::uint64_t pub_id = 0;
};

struct PubAck {
    std::uint64_t pub_id;
};

/// Bounce for a `pub` that landed on a node that lost the directory role:
/// carries the document back so the provider can re-route immediately
/// instead of losing the service until the next republish period.
struct PubNack {
    std::uint64_t pub_id;
    std::string document;
};

/// Bulk publish: many documents in one message so the directory takes the
/// batched ingest path. Per-member pub_ids keep acks/nacks per-document.
struct PublishBatch {
    std::vector<PublishDoc> docs;
};

struct Request {
    std::uint64_t request_id;
    net::NodeId client;
    std::string document;
};

struct QueryHits {
    std::uint64_t request_id;
    std::vector<std::vector<directory::MatchHit>> per_capability;
    double compute_ms;
};

struct Response {
    std::uint64_t request_id;
    std::vector<directory::MatchHit> hits;
    bool satisfied;
    double compute_ms;
    std::uint32_t directories_asked;
};

struct Forward {
    std::uint64_t request_id;
    net::NodeId origin;
    std::string document;
};

struct SummaryPush {
    net::NodeId from;
    std::vector<std::uint64_t> wire;
};

/// Full exact-summary snapshot (interval backend). The image is the
/// summary codec's bounded format (summary/summary_wire.hpp), carried
/// opaquely past the outer frame.
struct SummaryBitmap {
    net::NodeId from;
    std::vector<std::uint8_t> image;
};

/// Since-version word runs against the receiver's held exact summary;
/// directories fall back to SummaryBitmap when the delta would outweigh
/// the snapshot.
struct SummaryDelta {
    net::NodeId from;
    std::vector<std::uint8_t> image;
};

struct Handover {
    std::string state_xml;
};

}  // namespace sariadne::ariadne::msg
