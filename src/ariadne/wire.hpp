// Ariadne protocol wire codec — the byte-level externalization of every
// message the discovery protocol exchanges (ariadne/protocol.cpp moves
// the same payloads in-process through net::Message; this module is the
// boundary a real deployment would ship them through, and the surface the
// protocol fuzz target attacks).
//
// Format (all integers little-endian):
//
//   magic 'S' 'A' | version u8 (=1) | type u8 | payload fields
//
// Strings are u32 length + bytes; vectors are u32 count + elements;
// doubles travel as their IEEE-754 bit pattern in a u64. Every length is
// validated against the remaining input before it is consumed, so a
// hostile length cannot trigger an allocation larger than the datagram
// that claims it. Decoding never throws — try_decode returns
// Result<WireMessage> with ErrorCode::kParse for any malformed input
// (see sariadne-analyze's wire-decode rule).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "support/result.hpp"

namespace sariadne::ariadne::wire {

inline constexpr std::uint8_t kMagic0 = 'S';
inline constexpr std::uint8_t kMagic1 = 'A';
inline constexpr std::uint8_t kVersion = 1;

/// Wire ids of the protocol's message types (the in-process
/// net::Message::type strings, numbered). Values are wire format —
/// append only, never renumber.
enum class MsgType : std::uint8_t {
    kDirAdv = 1,           ///< "dir-adv"
    kElectCall = 2,        ///< "elect-call"
    kElectCandidate = 3,   ///< "elect-cand"
    kElectAppoint = 4,     ///< "elect-appoint"
    kPublish = 5,          ///< "pub"
    kPubAck = 6,           ///< "pub-ack"
    kPubNack = 7,          ///< "pub-nack"
    kRequest = 8,          ///< "req"
    kResponse = 9,         ///< "resp"
    kForward = 10,         ///< "fwd"
    kForwardResponse = 11, ///< "fwd-resp"
    kSummaryPush = 12,     ///< "summary-push"
    kSummaryPull = 13,     ///< "summary-pull"
    kHandover = 14,        ///< "handover"
    kPublishBatch = 15,    ///< "pub-batch"
    kSummaryBitmap = 16,   ///< "summary-bitmap"
    kSummaryDelta = 17,    ///< "summary-delta"
};

/// The protocol's in-process type string for a wire id.
const char* to_string(MsgType type) noexcept;

// --- payloads (field-for-field mirrors of protocol.cpp's) ---------------

struct DirAdv {
    std::uint32_t directory = 0;
};

struct ElectCall {
    std::uint32_t initiator = 0;
};

struct ElectCandidate {
    std::uint32_t candidate = 0;
    double fitness = 0;
};

struct ElectAppoint {};

struct PublishDoc {
    std::string document;
    std::uint64_t pub_id = 0;  ///< 0 = fire-and-forget (no ack expected)
};

struct PubAck {
    std::uint64_t pub_id = 0;
};

struct PubNack {
    std::uint64_t pub_id = 0;
    std::string document;
};

struct Request {
    std::uint64_t request_id = 0;
    std::uint32_t client = 0;
    std::string document;
};

/// One match hit as it travels in responses.
struct Hit {
    std::uint32_t service = 0;
    std::string service_name;
    std::string capability_name;
    std::int32_t semantic_distance = 0;
};

struct Response {
    std::uint64_t request_id = 0;
    std::vector<Hit> hits;
    bool satisfied = false;
    double compute_ms = 0;
    std::uint32_t directories_asked = 0;
};

struct Forward {
    std::uint64_t request_id = 0;
    std::uint32_t origin = 0;
    std::string document;
};

struct ForwardResponse {
    std::uint64_t request_id = 0;
    std::vector<std::vector<Hit>> per_capability;
    double compute_ms = 0;
};

struct SummaryPush {
    std::uint32_t from = 0;
    std::vector<std::uint64_t> summary_wire;  ///< BloomFilter::serialize()
};

struct SummaryPull {};

struct Handover {
    std::string state_xml;
};

/// Bulk publish: many documents in one datagram so the directory can take
/// the batched ingest path (one service-table critical section, shard-run
/// DAG locking, at most one summary rebuild). Each member keeps its own
/// pub_id so acks/nacks stay per-document.
struct PublishBatch {
    std::vector<PublishDoc> docs;
};

/// Full exact-summary snapshot. The image is the summary codec's own
/// bounded format (summary/summary_wire.hpp) carried opaquely: the outer
/// frame validates only the byte length, the inner decoder re-validates
/// structure, so a hostile image is rejected at exactly one layer.
struct SummaryBitmap {
    std::uint32_t from = 0;
    std::vector<std::uint8_t> image;  ///< summary::encode_summary()
};

/// Since-version word runs against the receiver's held summary; falls
/// back to SummaryBitmap when the delta would outweigh the snapshot.
struct SummaryDelta {
    std::uint32_t from = 0;
    std::vector<std::uint8_t> image;  ///< summary::encode_delta()
};

using Payload =
    std::variant<DirAdv, ElectCall, ElectCandidate, ElectAppoint, PublishDoc,
                 PubAck, PubNack, Request, Response, Forward, ForwardResponse,
                 SummaryPush, SummaryPull, Handover, PublishBatch,
                 SummaryBitmap, SummaryDelta>;

struct WireMessage {
    MsgType type = MsgType::kDirAdv;
    Payload payload;
};

/// Serializes a message. The payload alternative must match `type`
/// (SARIADNE_EXPECTS enforces it).
std::vector<std::uint8_t> encode(const WireMessage& message);

/// Parses one complete datagram. Never throws: malformed, truncated, or
/// trailing-garbage input yields ErrorCode::kParse with a description of
/// the offending field.
Result<WireMessage> try_decode(std::span<const std::uint8_t> bytes) noexcept;

}  // namespace sariadne::ariadne::wire
