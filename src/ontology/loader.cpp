#include "ontology/loader.hpp"

#include <charconv>

#include "support/errors.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace sariadne::onto {

namespace {

std::uint32_t parse_version(std::string_view text) {
    std::uint32_t value = 1;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
        throw ParseError("malformed ontology version '" + std::string(text) + "'");
    }
    return value;
}

ConceptId resolve_class(const Ontology& ontology, const xml::XmlNode& node) {
    return ontology.require_class(node.required_attribute("name"));
}

}  // namespace

Ontology load_ontology(const xml::XmlNode& root) {
    if (root.name() != "ontology") {
        throw ParseError("expected <ontology> root element, got <" + root.name() +
                         ">");
    }
    Ontology ontology(std::string(root.required_attribute("uri")),
                      parse_version(root.attribute_or("version", "1")));

    // Pass 1: declare every class and property so axioms may forward-reference.
    for (const auto& node : root.children()) {
        if (node.name() == "class") {
            ontology.add_class(node.required_attribute("name"));
        } else if (node.name() == "property") {
            ontology.add_property(node.required_attribute("name"));
        } else {
            throw ParseError("unexpected element <" + node.name() +
                             "> inside <ontology>");
        }
    }

    // Pass 2: resolve axioms.
    for (const auto& node : root.children()) {
        if (node.name() == "class") {
            const ConceptId self = ontology.require_class(node.required_attribute("name"));
            for (const auto& axiom : node.children()) {
                if (axiom.name() == "subClassOf") {
                    ontology.add_subclass_of(self, resolve_class(ontology, axiom));
                } else if (axiom.name() == "equivalentTo") {
                    ontology.add_equivalent(self, resolve_class(ontology, axiom));
                } else if (axiom.name() == "disjointWith") {
                    ontology.add_disjoint(self, resolve_class(ontology, axiom));
                } else if (axiom.name() == "equivalentToIntersection") {
                    std::vector<ConceptId> parts;
                    for (const auto& part : axiom.children()) {
                        if (part.name() != "of") {
                            throw ParseError("expected <of> inside "
                                             "<equivalentToIntersection>");
                        }
                        parts.push_back(resolve_class(ontology, part));
                    }
                    ontology.define_intersection(self, std::move(parts));
                } else {
                    throw ParseError("unknown class axiom <" + axiom.name() + ">");
                }
            }
        } else {  // property
            const PropertyId self =
                ontology.add_property(node.required_attribute("name"));
            for (const auto& axiom : node.children()) {
                if (axiom.name() == "domain") {
                    ontology.set_property_domain(self, resolve_class(ontology, axiom));
                } else if (axiom.name() == "range") {
                    ontology.set_property_range(self, resolve_class(ontology, axiom));
                } else if (axiom.name() == "subPropertyOf") {
                    const PropertyId parent =
                        ontology.find_property(axiom.required_attribute("name"));
                    if (parent == kNoConcept) {
                        throw LookupError("unknown property '" +
                                          std::string(axiom.required_attribute("name")) +
                                          "'");
                    }
                    ontology.add_subproperty_of(self, parent);
                } else {
                    throw ParseError("unknown property axiom <" + axiom.name() + ">");
                }
            }
        }
    }
    return ontology;
}

Ontology load_ontology(std::string_view xml_text) {
    const xml::XmlDocument doc = xml::parse(xml_text);
    return load_ontology(doc.root);
}

std::string save_ontology(const Ontology& ontology) {
    xml::XmlNode root("ontology");
    root.set_attribute("uri", ontology.uri());
    root.set_attribute("version", std::to_string(ontology.version()));

    for (const auto& decl : ontology.classes()) {
        xml::XmlNode node("class");
        node.set_attribute("name", decl.name);
        for (const ConceptId parent : decl.told_parents) {
            xml::XmlNode axiom("subClassOf");
            axiom.set_attribute("name", std::string(ontology.class_name(parent)));
            node.add_child(std::move(axiom));
        }
        for (const ConceptId eq : decl.equivalents) {
            // Equivalence is stored symmetrically; emit each pair once.
            if (eq < ontology.find_class(decl.name)) continue;
            xml::XmlNode axiom("equivalentTo");
            axiom.set_attribute("name", std::string(ontology.class_name(eq)));
            node.add_child(std::move(axiom));
        }
        for (const ConceptId dis : decl.disjoints) {
            if (dis < ontology.find_class(decl.name)) continue;
            xml::XmlNode axiom("disjointWith");
            axiom.set_attribute("name", std::string(ontology.class_name(dis)));
            node.add_child(std::move(axiom));
        }
        if (!decl.intersection_of.empty()) {
            xml::XmlNode axiom("equivalentToIntersection");
            for (const ConceptId part : decl.intersection_of) {
                xml::XmlNode of("of");
                of.set_attribute("name", std::string(ontology.class_name(part)));
                axiom.add_child(std::move(of));
            }
            node.add_child(std::move(axiom));
        }
        root.add_child(std::move(node));
    }

    for (const auto& decl : ontology.properties()) {
        xml::XmlNode node("property");
        node.set_attribute("name", decl.name);
        if (decl.domain != kNoConcept) {
            xml::XmlNode axiom("domain");
            axiom.set_attribute("name", std::string(ontology.class_name(decl.domain)));
            node.add_child(std::move(axiom));
        }
        if (decl.range != kNoConcept) {
            xml::XmlNode axiom("range");
            axiom.set_attribute("name", std::string(ontology.class_name(decl.range)));
            node.add_child(std::move(axiom));
        }
        for (const PropertyId parent : decl.told_parents) {
            xml::XmlNode axiom("subPropertyOf");
            axiom.set_attribute("name", ontology.property_decl(parent).name);
            node.add_child(std::move(axiom));
        }
        root.add_child(std::move(node));
    }

    return xml::write(root);
}

}  // namespace sariadne::onto
