#include "ontology/registry.hpp"

#include "support/errors.hpp"

namespace sariadne::onto {

OntologyIndex OntologyRegistry::add(Ontology ontology) {
    ++epoch_;
    const auto it = by_uri_.find(ontology.uri());
    if (it != by_uri_.end()) {
        *ontologies_[it->second] = std::move(ontology);
        return it->second;
    }
    const auto index = static_cast<OntologyIndex>(ontologies_.size());
    by_uri_.emplace(ontology.uri(), index);
    ontologies_.push_back(std::make_unique<Ontology>(std::move(ontology)));
    return index;
}

OntologyIndex OntologyRegistry::find(std::string_view uri) const noexcept {
    // Transparent lookup would avoid the temporary string; the registry is
    // tiny and cold, so keep the simple map interface.
    const auto it = by_uri_.find(std::string(uri));
    return it == by_uri_.end() ? kNoOntology : it->second;
}

const Ontology& OntologyRegistry::at(OntologyIndex index) const {
    SARIADNE_EXPECTS(index < ontologies_.size());
    return *ontologies_[index];
}

const Ontology& OntologyRegistry::require(std::string_view uri) const {
    const OntologyIndex index = find(uri);
    if (index == kNoOntology) {
        throw LookupError("unknown ontology '" + std::string(uri) + "'");
    }
    return *ontologies_[index];
}

ConceptRef OntologyRegistry::resolve(std::string_view qualified_name) const {
    const QualifiedName parts = QualifiedName::split(qualified_name);
    const OntologyIndex index = find(parts.ontology_uri);
    if (index == kNoOntology) {
        throw LookupError("unknown ontology '" + std::string(parts.ontology_uri) +
                          "' referenced by '" + std::string(qualified_name) + "'");
    }
    return ConceptRef{index, ontologies_[index]->require_class(parts.local_name)};
}

std::string OntologyRegistry::qualified_name(ConceptRef ref) const {
    const Ontology& ontology = at(ref.ontology);
    return QualifiedName::join(ontology.uri(), ontology.class_name(ref.concept_id));
}

}  // namespace sariadne::onto
