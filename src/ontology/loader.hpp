// XML (de)serialization of ontologies. Document shape:
//
//   <ontology uri="http://example.org/media" version="3">
//     <class name="Resource"/>
//     <class name="VideoResource">
//       <subClassOf name="DigitalResource"/>
//     </class>
//     <class name="HDMovie">
//       <equivalentToIntersection>
//         <of name="VideoResource"/> <of name="HighDefinition"/>
//       </equivalentToIntersection>
//       <disjointWith name="AudioResource"/>
//     </class>
//     <class name="Film"><equivalentTo name="Movie"/></class>
//     <property name="hasTitle">
//       <domain name="Resource"/> <range name="Title"/>
//       <subPropertyOf name="hasLabel"/>
//     </property>
//   </ontology>
//
// Forward references are allowed: all names are declared in a first pass
// and axioms resolved in a second.
#pragma once

#include <string>
#include <string_view>

#include "ontology/ontology.hpp"
#include "xml/node.hpp"

namespace sariadne::onto {

/// Parses an ontology from XML text. Throws ParseError / LookupError.
Ontology load_ontology(std::string_view xml_text);

/// Builds an ontology from an already-parsed DOM subtree.
Ontology load_ontology(const xml::XmlNode& root);

/// Serializes an ontology back to XML.
std::string save_ontology(const Ontology& ontology);

}  // namespace sariadne::onto
