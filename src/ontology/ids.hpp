// Identifier vocabulary for the ontology layer. Concepts and properties are
// dense per-ontology indices; a QualifiedName ("<ontology-uri>#<local>")
// is the wire-format reference used inside service descriptions.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/errors.hpp"

namespace sariadne::onto {

/// Index of a class within one ontology.
using ConceptId = std::uint32_t;

/// Index of a property within one ontology.
using PropertyId = std::uint32_t;

/// Index of an ontology within a registry / knowledge base.
using OntologyIndex = std::uint32_t;

inline constexpr ConceptId kNoConcept = 0xFFFFFFFFu;
inline constexpr OntologyIndex kNoOntology = 0xFFFFFFFFu;

/// A concept fully qualified across ontologies: which registered ontology
/// it lives in and its index there. Comparable and hashable so it can key
/// directory structures.
struct ConceptRef {
    OntologyIndex ontology = kNoOntology;
    ConceptId concept_id = kNoConcept;

    bool valid() const noexcept {
        return ontology != kNoOntology && concept_id != kNoConcept;
    }

    friend bool operator==(ConceptRef, ConceptRef) noexcept = default;
    friend auto operator<=>(ConceptRef, ConceptRef) noexcept = default;
};

/// Splits "uri#Local" into its two parts. Throws ParseError when the '#'
/// separator is missing or either side is empty.
struct QualifiedName {
    std::string_view ontology_uri;
    std::string_view local_name;

    static QualifiedName split(std::string_view qualified) {
        const auto hash_pos = qualified.rfind('#');
        if (hash_pos == std::string_view::npos || hash_pos == 0 ||
            hash_pos + 1 == qualified.size()) {
            throw ParseError("malformed qualified concept name '" +
                             std::string(qualified) +
                             "' (expected '<ontology-uri>#<local-name>')");
        }
        return QualifiedName{qualified.substr(0, hash_pos),
                             qualified.substr(hash_pos + 1)};
    }

    static std::string join(std::string_view uri, std::string_view local) {
        std::string out;
        out.reserve(uri.size() + 1 + local.size());
        out += uri;
        out += '#';
        out += local;
        return out;
    }
};

}  // namespace sariadne::onto

template <>
struct std::hash<sariadne::onto::ConceptRef> {
    std::size_t operator()(const sariadne::onto::ConceptRef& ref) const noexcept {
        return (static_cast<std::size_t>(ref.ontology) << 32) ^ ref.concept_id;
    }
};
