// The ontology TBox model: named classes and properties plus the axiom
// fragment the discovery system reasons over. The fragment is an OWL-Lite
// style subset —
//   * told subsumption:        SubClassOf(A, B)
//   * class equivalence:       EquivalentClass(A, B)
//   * complete definitions:    EquivalentToIntersection(A, {B1..Bn})
//   * disjointness:            DisjointWith(A, B)
//   * object properties with domain/range and property subsumption
// — which is what Amigo-S service profiles in the paper draw on, and is
// rich enough that classification (reasoner/) performs non-trivial
// inference (intersection introduction, equivalence merging, disjointness
// consistency checking).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ontology/ids.hpp"
#include "support/contracts.hpp"

namespace sariadne::onto {

/// A named class declaration.
struct ClassDecl {
    std::string name;
    /// Told direct superclasses (SubClassOf axioms with this class on the left).
    std::vector<ConceptId> told_parents;
    /// Classes declared equivalent to this one.
    std::vector<ConceptId> equivalents;
    /// Classes declared disjoint with this one.
    std::vector<ConceptId> disjoints;
    /// If non-empty: this class is *defined* as the intersection of these
    /// classes (a complete definition, enabling subsumer introduction).
    std::vector<ConceptId> intersection_of;
};

/// A named object property declaration.
struct PropertyDecl {
    std::string name;
    ConceptId domain = kNoConcept;
    ConceptId range = kNoConcept;
    std::vector<PropertyId> told_parents;
};

/// One ontology document: a URI-named, versioned collection of class and
/// property declarations. Pure data; classification lives in reasoner/.
class Ontology {
public:
    Ontology() = default;
    Ontology(std::string uri, std::uint32_t version = 1)
        : uri_(std::move(uri)), version_(version) {}

    const std::string& uri() const noexcept { return uri_; }
    std::uint32_t version() const noexcept { return version_; }
    void set_version(std::uint32_t version) noexcept { version_ = version; }

    // --- construction ---------------------------------------------------
    /// Declares a class; returns its id. Re-declaring a name returns the
    /// existing id (declarations are idempotent).
    ConceptId add_class(std::string_view name);

    /// Declares an object property; returns its id (idempotent by name).
    PropertyId add_property(std::string_view name);

    void add_subclass_of(ConceptId child, ConceptId parent);
    void add_equivalent(ConceptId a, ConceptId b);
    void add_disjoint(ConceptId a, ConceptId b);
    void define_intersection(ConceptId defined, std::vector<ConceptId> parts);

    void set_property_domain(PropertyId prop, ConceptId domain);
    void set_property_range(PropertyId prop, ConceptId range);
    void add_subproperty_of(PropertyId child, PropertyId parent);

    // --- lookup -----------------------------------------------------------
    /// Id of the named class, or kNoConcept.
    ConceptId find_class(std::string_view name) const noexcept;

    /// Id of the named class; throws LookupError if absent.
    ConceptId require_class(std::string_view name) const;

    PropertyId find_property(std::string_view name) const noexcept;

    const ClassDecl& class_decl(ConceptId id) const {
        SARIADNE_EXPECTS(id < classes_.size());
        return classes_[id];
    }

    const PropertyDecl& property_decl(PropertyId id) const {
        SARIADNE_EXPECTS(id < properties_.size());
        return properties_[id];
    }

    std::string_view class_name(ConceptId id) const { return class_decl(id).name; }

    std::size_t class_count() const noexcept { return classes_.size(); }
    std::size_t property_count() const noexcept { return properties_.size(); }

    /// Total number of class axioms (subclass + equivalence + disjointness +
    /// intersection parts) — used by reasoner cost accounting.
    std::size_t axiom_count() const noexcept;

    const std::vector<ClassDecl>& classes() const noexcept { return classes_; }
    const std::vector<PropertyDecl>& properties() const noexcept {
        return properties_;
    }

private:
    std::string uri_;
    std::uint32_t version_ = 1;
    std::vector<ClassDecl> classes_;
    std::vector<PropertyDecl> properties_;
    // Name lookup index: resolution happens per concept mention during
    // publishing, so O(1) lookup matters for Figure 7/8 realism.
    std::unordered_map<std::string, ConceptId> class_index_;
    std::unordered_map<std::string, PropertyId> property_index_;
};

}  // namespace sariadne::onto
