// Taxonomy — the result of classifying an ontology: the complete
// subsumption relation over named classes, with equivalence classes merged,
// direct (transitively reduced) parent/child links, and level depths. This
// is the single interchange type between the reasoners (which produce it)
// and the interval encoder / matchers (which consume it). The paper's
// d(concept1, concept2) function (§2.3) is Taxonomy::distance.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ontology/ids.hpp"
#include "support/contracts.hpp"

namespace sariadne::reasoner {

using onto::ConceptId;

class Taxonomy {
public:
    Taxonomy() = default;

    /// Number of named classes in the classified ontology (not merged).
    std::size_t class_count() const noexcept { return canonical_.size(); }

    /// Canonical representative of a class's equivalence class.
    ConceptId canonical(ConceptId id) const {
        SARIADNE_EXPECTS(id < canonical_.size());
        return canonical_[id];
    }

    bool is_representative(ConceptId id) const {
        return canonical(id) == id;
    }

    /// True iff `subsumer` subsumes `subsumee` (subsumee ⊑ subsumer).
    /// Reflexive: every class subsumes itself (and its equivalents).
    bool subsumes(ConceptId subsumer, ConceptId subsumee) const;

    /// The paper's semantic distance d(subsumer, subsumee): the number of
    /// hierarchy levels separating the two concepts in the classified
    /// hierarchy — 0 when equivalent, the minimum direct-edge path length
    /// when subsumption holds, std::nullopt (the paper's NULL) otherwise.
    std::optional<int> distance(ConceptId subsumer, ConceptId subsumee) const;

    /// Direct (transitively reduced) superclasses of a class, as
    /// representatives. For a non-representative, its representative's.
    const std::vector<ConceptId>& direct_parents(ConceptId id) const {
        return parents_[canonical(id)];
    }

    const std::vector<ConceptId>& direct_children(ConceptId id) const {
        return children_[canonical(id)];
    }

    /// Representatives with no parents (top-level concepts).
    const std::vector<ConceptId>& roots() const noexcept { return roots_; }

    /// Depth of a class: 0 for roots, else 1 + min depth over parents.
    int depth(ConceptId id) const { return depths_[canonical(id)]; }

    /// All members (including itself) of a class's equivalence class.
    std::vector<ConceptId> equivalence_class(ConceptId id) const;

    /// Number of distinct representatives.
    std::size_t representative_count() const noexcept { return rep_count_; }

    /// Builder used by the reasoners: constructs a Taxonomy from the full
    /// subsumption closure given as row-major bitset rows — bit j of row i
    /// set means "class j subsumes class i" (i ⊑ j), reflexive bits set.
    /// Performs SCC merging, transitive reduction and depth computation.
    static Taxonomy from_closure(std::size_t class_count,
                                 const std::vector<std::uint64_t>& closure,
                                 std::size_t words_per_row);

private:
    bool closure_bit(ConceptId row, ConceptId col) const {
        return (closure_[row * words_ + col / 64] >> (col % 64)) & 1u;
    }

    std::vector<ConceptId> canonical_;           // class -> representative
    std::vector<std::vector<ConceptId>> parents_;   // representative -> reps
    std::vector<std::vector<ConceptId>> children_;  // representative -> reps
    std::vector<int> depths_;                    // representative -> depth
    std::vector<ConceptId> roots_;               // representatives
    std::vector<std::uint64_t> closure_;         // canonicalized closure
    std::size_t words_ = 0;
    std::size_t rep_count_ = 0;
};

}  // namespace sariadne::reasoner
