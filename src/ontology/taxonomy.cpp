#include "ontology/taxonomy.hpp"

#include <algorithm>
#include <queue>

namespace sariadne::reasoner {

bool Taxonomy::subsumes(ConceptId subsumer, ConceptId subsumee) const {
    const ConceptId a = canonical(subsumer);
    const ConceptId b = canonical(subsumee);
    return closure_bit(b, a);
}

std::optional<int> Taxonomy::distance(ConceptId subsumer,
                                      ConceptId subsumee) const {
    const ConceptId target = canonical(subsumer);
    const ConceptId start = canonical(subsumee);
    if (start == target) return 0;
    if (!closure_bit(start, target)) return std::nullopt;

    // BFS upward along direct-parent edges; the closure test above
    // guarantees reachability, so this always terminates with an answer.
    std::vector<int> dist(canonical_.size(), -1);
    std::queue<ConceptId> frontier;
    dist[start] = 0;
    frontier.push(start);
    while (!frontier.empty()) {
        const ConceptId node = frontier.front();
        frontier.pop();
        for (const ConceptId parent : parents_[node]) {
            if (dist[parent] != -1) continue;
            dist[parent] = dist[node] + 1;
            if (parent == target) return dist[parent];
            frontier.push(parent);
        }
    }
    return std::nullopt;  // unreachable, defensive
}

std::vector<ConceptId> Taxonomy::equivalence_class(ConceptId id) const {
    const ConceptId rep = canonical(id);
    std::vector<ConceptId> members;
    for (ConceptId c = 0; c < canonical_.size(); ++c) {
        if (canonical_[c] == rep) members.push_back(c);
    }
    return members;
}

Taxonomy Taxonomy::from_closure(std::size_t class_count,
                                const std::vector<std::uint64_t>& closure,
                                std::size_t words_per_row) {
    SARIADNE_EXPECTS(closure.size() == class_count * words_per_row);

    Taxonomy tax;
    const auto n = static_cast<ConceptId>(class_count);
    tax.words_ = words_per_row;
    tax.canonical_.resize(class_count);

    const auto bit = [&](ConceptId row, ConceptId col) {
        return (closure[row * words_per_row + col / 64] >> (col % 64)) & 1u;
    };

    // 1. Equivalence classes: i ~ j iff each subsumes the other. The
    // canonical representative is the smallest member.
    for (ConceptId i = 0; i < n; ++i) {
        ConceptId rep = i;
        for (ConceptId j = 0; j < i; ++j) {
            if (bit(i, j) && bit(j, i)) {
                rep = tax.canonical_[j];
                break;
            }
        }
        tax.canonical_[i] = rep;
    }

    tax.rep_count_ = 0;
    for (ConceptId i = 0; i < n; ++i) {
        if (tax.canonical_[i] == i) ++tax.rep_count_;
    }

    // 2. Canonicalized closure over representatives (stored dense over all
    // class ids for O(1) lookup; non-representative rows mirror their rep).
    tax.closure_.assign(class_count * words_per_row, 0);
    for (ConceptId i = 0; i < n; ++i) {
        const ConceptId irep = tax.canonical_[i];
        for (ConceptId j = 0; j < n; ++j) {
            if (bit(irep, j)) {
                const ConceptId jrep = tax.canonical_[j];
                tax.closure_[i * words_per_row + jrep / 64] |=
                    std::uint64_t{1} << (jrep % 64);
            }
        }
        // Reflexivity on the representative.
        tax.closure_[i * words_per_row + irep / 64] |= std::uint64_t{1}
                                                       << (irep % 64);
    }

    // 3. Direct parents: strict subsumers with no strict subsumer in between
    // (transitive reduction over representatives).
    tax.parents_.assign(class_count, {});
    tax.children_.assign(class_count, {});
    for (ConceptId i = 0; i < n; ++i) {
        if (tax.canonical_[i] != i) continue;  // representatives only
        std::vector<ConceptId> strict;
        for (ConceptId j = 0; j < n; ++j) {
            if (j == i || tax.canonical_[j] != j) continue;
            if (tax.closure_bit(i, j)) strict.push_back(j);
        }
        for (const ConceptId cand : strict) {
            bool direct = true;
            for (const ConceptId mid : strict) {
                if (mid == cand) continue;
                // cand subsumes mid (strictly) => cand not a direct parent.
                if (tax.closure_bit(mid, cand)) {
                    direct = false;
                    break;
                }
            }
            if (direct) {
                tax.parents_[i].push_back(cand);
                tax.children_[cand].push_back(i);
            }
        }
        std::sort(tax.parents_[i].begin(), tax.parents_[i].end());
    }
    for (auto& kids : tax.children_) std::sort(kids.begin(), kids.end());

    // 4. Roots and depths (min depth over parents).
    tax.depths_.assign(class_count, 0);
    std::vector<ConceptId> order;
    std::vector<std::size_t> pending(class_count, 0);
    for (ConceptId i = 0; i < n; ++i) {
        if (tax.canonical_[i] != i) continue;
        pending[i] = tax.parents_[i].size();
        if (pending[i] == 0) {
            tax.roots_.push_back(i);
            order.push_back(i);
        }
    }
    for (std::size_t head = 0; head < order.size(); ++head) {
        const ConceptId node = order[head];
        for (const ConceptId kid : tax.children_[node]) {
            const int candidate = tax.depths_[node] + 1;
            if (tax.depths_[kid] == 0 || candidate < tax.depths_[kid]) {
                tax.depths_[kid] = candidate;
            }
            if (--pending[kid] == 0) order.push_back(kid);
        }
    }

    return tax;
}

}  // namespace sariadne::reasoner
