// OntologyRegistry — the set of ontologies a directory (or client) knows
// about, keyed by URI. Registering a newer version of an existing URI
// replaces it and bumps the registry epoch; dependents (taxonomies, code
// tables) key their caches on (uri, version) so stale codes are detected,
// matching the paper's "services periodically check the version of codes
// that they are using" (§3.2).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ontology/ids.hpp"
#include "ontology/ontology.hpp"

namespace sariadne::onto {

class OntologyRegistry {
public:
    OntologyRegistry() = default;

    /// Registers (or upgrades) an ontology. Returns its stable index.
    /// Re-registering the same URI keeps the index and replaces the content;
    /// the registry epoch is bumped whenever content changes.
    OntologyIndex add(Ontology ontology);

    /// Index of the ontology with this URI, or kNoOntology.
    OntologyIndex find(std::string_view uri) const noexcept;

    /// True if an ontology with this URI is registered.
    bool contains(std::string_view uri) const noexcept {
        return find(uri) != kNoOntology;
    }

    const Ontology& at(OntologyIndex index) const;

    /// Ontology by URI; throws LookupError if unknown.
    const Ontology& require(std::string_view uri) const;

    /// Resolves "uri#LocalName" to a ConceptRef. Throws LookupError when
    /// either the ontology or the class is unknown.
    ConceptRef resolve(std::string_view qualified_name) const;

    /// Fully qualified name of a concept.
    std::string qualified_name(ConceptRef ref) const;

    std::size_t size() const noexcept { return ontologies_.size(); }

    /// Monotonic counter incremented on every content change; cache key
    /// component for taxonomy / code-table layers.
    std::uint64_t epoch() const noexcept { return epoch_; }

private:
    // unique_ptr: Ontology addresses stay stable across registry growth so
    // callers may hold `const Ontology&` while continuing to register.
    std::vector<std::unique_ptr<Ontology>> ontologies_;
    std::unordered_map<std::string, OntologyIndex> by_uri_;
    std::uint64_t epoch_ = 0;
};

}  // namespace sariadne::onto
