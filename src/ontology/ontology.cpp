#include "ontology/ontology.hpp"

#include <algorithm>

namespace sariadne::onto {

namespace {

void push_unique(std::vector<ConceptId>& items, ConceptId value) {
    if (std::find(items.begin(), items.end(), value) == items.end()) {
        items.push_back(value);
    }
}

void push_unique_prop(std::vector<PropertyId>& items, PropertyId value) {
    if (std::find(items.begin(), items.end(), value) == items.end()) {
        items.push_back(value);
    }
}

}  // namespace

ConceptId Ontology::add_class(std::string_view name) {
    SARIADNE_EXPECTS(!name.empty());
    if (const ConceptId existing = find_class(name); existing != kNoConcept) {
        return existing;
    }
    classes_.push_back(ClassDecl{std::string(name), {}, {}, {}, {}});
    const auto id = static_cast<ConceptId>(classes_.size() - 1);
    class_index_.emplace(std::string(name), id);
    return id;
}

PropertyId Ontology::add_property(std::string_view name) {
    SARIADNE_EXPECTS(!name.empty());
    if (const PropertyId existing = find_property(name); existing != kNoConcept) {
        return existing;
    }
    properties_.push_back(PropertyDecl{std::string(name), kNoConcept, kNoConcept, {}});
    const auto id = static_cast<PropertyId>(properties_.size() - 1);
    property_index_.emplace(std::string(name), id);
    return id;
}

void Ontology::add_subclass_of(ConceptId child, ConceptId parent) {
    SARIADNE_EXPECTS(child < classes_.size() && parent < classes_.size());
    SARIADNE_EXPECTS(child != parent);
    push_unique(classes_[child].told_parents, parent);
}

void Ontology::add_equivalent(ConceptId a, ConceptId b) {
    SARIADNE_EXPECTS(a < classes_.size() && b < classes_.size());
    SARIADNE_EXPECTS(a != b);
    push_unique(classes_[a].equivalents, b);
    push_unique(classes_[b].equivalents, a);
}

void Ontology::add_disjoint(ConceptId a, ConceptId b) {
    SARIADNE_EXPECTS(a < classes_.size() && b < classes_.size());
    SARIADNE_EXPECTS(a != b);
    push_unique(classes_[a].disjoints, b);
    push_unique(classes_[b].disjoints, a);
}

void Ontology::define_intersection(ConceptId defined,
                                   std::vector<ConceptId> parts) {
    SARIADNE_EXPECTS(defined < classes_.size());
    for (const ConceptId part : parts) {
        SARIADNE_EXPECTS(part < classes_.size());
        SARIADNE_EXPECTS(part != defined);
    }
    // Deduplicate: downstream engines count distinct satisfied parts.
    std::sort(parts.begin(), parts.end());
    parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
    SARIADNE_EXPECTS(parts.size() >= 2);
    classes_[defined].intersection_of = std::move(parts);
}

void Ontology::set_property_domain(PropertyId prop, ConceptId domain) {
    SARIADNE_EXPECTS(prop < properties_.size() && domain < classes_.size());
    properties_[prop].domain = domain;
}

void Ontology::set_property_range(PropertyId prop, ConceptId range) {
    SARIADNE_EXPECTS(prop < properties_.size() && range < classes_.size());
    properties_[prop].range = range;
}

void Ontology::add_subproperty_of(PropertyId child, PropertyId parent) {
    SARIADNE_EXPECTS(child < properties_.size() && parent < properties_.size());
    SARIADNE_EXPECTS(child != parent);
    push_unique_prop(properties_[child].told_parents, parent);
}

ConceptId Ontology::find_class(std::string_view name) const noexcept {
    const auto it = class_index_.find(std::string(name));
    return it == class_index_.end() ? kNoConcept : it->second;
}

ConceptId Ontology::require_class(std::string_view name) const {
    const ConceptId id = find_class(name);
    if (id == kNoConcept) {
        throw LookupError("ontology '" + uri_ + "' has no class named '" +
                          std::string(name) + "'");
    }
    return id;
}

PropertyId Ontology::find_property(std::string_view name) const noexcept {
    const auto it = property_index_.find(std::string(name));
    return it == property_index_.end() ? kNoConcept : it->second;
}

std::size_t Ontology::axiom_count() const noexcept {
    std::size_t count = 0;
    for (const auto& decl : classes_) {
        count += decl.told_parents.size();
        count += decl.equivalents.size();  // counted from both sides; fine for costing
        count += decl.disjoints.size();
        count += decl.intersection_of.size();
    }
    for (const auto& decl : properties_) {
        count += decl.told_parents.size();
        count += (decl.domain != kNoConcept ? 1u : 0u);
        count += (decl.range != kNoConcept ? 1u : 0u);
    }
    return count;
}

}  // namespace sariadne::onto
