// DagIndex — the collection of capability DAGs of one directory, indexed
// by ontology signature (§3.3). A new capability joins the DAG whose
// signature equals its own ontology set (creating one if needed); a query
// preselects the DAGs whose signature shares at least one ontology with
// the request — the paper's Figure 5 filtering step ("the requested
// capability uses O1, which filters out DAG2 as it is indexed with only
// O3") — and probes only their roots.
#pragma once

#include <memory>
#include <vector>

#include "directory/dag.hpp"

namespace sariadne::directory {

class DagIndex {
public:
    DagIndex() = default;

    /// Inserts a provided capability into its signature's DAG.
    void insert(DagEntry entry, matching::DistanceOracle& oracle,
                MatchStats& stats);

    /// Removes all capabilities of a service across DAGs; empty DAGs are
    /// dropped. Returns the number of capability entries removed.
    std::size_t remove_service(ServiceId service);

    /// Queries all candidate DAGs (signature intersects the request's
    /// ontology set) and returns the hits with the globally minimal
    /// semantic distance.
    std::vector<MatchHit> query(const ResolvedCapability& request,
                                matching::DistanceOracle& oracle,
                                MatchStats& stats) const;

    /// All matching hits across candidate DAGs, any distance (for
    /// constraint-filtered selection).
    std::vector<MatchHit> query_all(const ResolvedCapability& request,
                                    matching::DistanceOracle& oracle,
                                    MatchStats& stats) const;

    std::size_t dag_count() const noexcept { return dags_.size(); }

    std::size_t entry_count() const noexcept {
        std::size_t count = 0;
        for (const auto& dag : dags_) count += dag->entry_count();
        return count;
    }

    const std::vector<std::unique_ptr<CapabilityDag>>& dags() const noexcept {
        return dags_;
    }

private:
    CapabilityDag& dag_for(const FlatSet<OntologyIndex>& signature);

    std::vector<std::unique_ptr<CapabilityDag>> dags_;
};

}  // namespace sariadne::directory
