// DagIndex — the collection of capability DAGs of one directory, indexed
// by ontology signature (§3.3). A new capability joins the DAG whose
// signature equals its own ontology set (creating one if needed); a query
// preselects the DAGs whose signature shares at least one ontology with
// the request — the paper's Figure 5 filtering step ("the requested
// capability uses O1, which filters out DAG2 as it is indexed with only
// O3") — and probes only their roots.
//
// Concurrency: the index is sharded by the root (smallest) ontology of a
// DAG's signature, each shard guarded by its own std::shared_mutex.
// Queries — pure reads over interval codes — take shared locks and run
// fully in parallel with each other; an insert takes the unique lock of
// the single shard its signature hashes to, so publishes only contend
// with queries and publishes touching the same shard. remove_service
// locks shards one at a time (never two locks at once, so no ordering
// hazard). The DistanceOracle passed in must be private to the calling
// thread (callers use one per operation).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "directory/dag.hpp"
#include "obs/metrics.hpp"
#include "support/lock_rank.hpp"

namespace sariadne::directory {

/// Folds an ontology set into a 64-bit presence mask (index mod 64).
/// Two sets whose masks are disjoint share no ontology; the converse does
/// not hold (indices 64 apart collide), which is the safe direction for a
/// skip filter.
inline std::uint64_t ontology_mask_of(
    const FlatSet<OntologyIndex>& ontologies) noexcept {
    std::uint64_t mask = 0;
    for (const OntologyIndex index : ontologies) {
        mask |= std::uint64_t{1} << (index & 63U);
    }
    return mask;
}

class DagIndex {
public:
    static constexpr std::size_t kDefaultShardCount = 16;

    explicit DagIndex(std::size_t shard_count = kDefaultShardCount,
                      DagTuning tuning = {})
        : shard_count_(shard_count == 0 ? 1 : shard_count),
          shards_(std::make_unique<Shard[]>(shard_count_)),
          tuning_(tuning) {}

    DagIndex(const DagIndex&) = delete;
    DagIndex& operator=(const DagIndex&) = delete;

    /// Inserts a provided capability into its signature's DAG (unique lock
    /// on that signature's shard only).
    void insert(DagEntry entry, matching::DistanceOracle& oracle,
                MatchStats& stats);

    /// Bulk variant for SemanticDirectory::publish_batch: orders the batch
    /// deterministically — by shard, then signature, then a
    /// generality-first heuristic (see DESIGN.md §12) — and inserts it
    /// shard run by shard run, taking each shard's unique lock once per
    /// run instead of once per capability. Returns the number of entries
    /// inserted.
    std::size_t insert_batch(std::vector<DagEntry> entries,
                             matching::DistanceOracle& oracle,
                             MatchStats& stats);

    /// Removes all capabilities of a service across DAGs; empty DAGs are
    /// dropped. Returns the number of capability entries removed.
    std::size_t remove_service(ServiceId service);

    /// Signature-scoped removal: only the shards/DAGs named by
    /// `signatures` (the ontology sets the service published under) are
    /// locked and scanned, so a removal is O(its own capabilities), not
    /// O(directory). The signatures come from the publish-time record kept
    /// by SemanticDirectory.
    std::size_t remove_service(
        ServiceId service,
        const std::vector<FlatSet<OntologyIndex>>& signatures);

    /// Queries all candidate DAGs (signature intersects the request's
    /// ontology set) and returns the hits with the globally minimal
    /// semantic distance. Thread-safe against concurrent inserts/removals.
    std::vector<MatchHit> query(const ResolvedCapability& request,
                                matching::DistanceOracle& oracle,
                                MatchStats& stats) const;

    /// All matching hits across candidate DAGs, any distance (for
    /// constraint-filtered and top-k selection).
    std::vector<MatchHit> query_all(const ResolvedCapability& request,
                                    matching::DistanceOracle& oracle,
                                    MatchStats& stats) const;

    /// Zero-allocation variant: appends every matching hit as RawHits into
    /// the caller's arena-backed list (names pinned into `arena` under each
    /// shard's reader lock). Identical traversal, pruning and stats to
    /// query_all; the caller owns arena reset points. All selection
    /// (best-tier, top-k, max-distance) happens on the RawHits afterwards —
    /// query() is equivalent to the minimal-distance tier of this result.
    void query_all_into(const ResolvedCapability& request,
                        matching::DistanceOracle& oracle, MatchStats& stats,
                        support::Arena& arena,
                        support::ArenaVec<RawHit>& hits) const;

    std::size_t dag_count() const noexcept;
    std::size_t entry_count() const noexcept;
    std::size_t shard_count() const noexcept { return shard_count_; }

    /// Visits every live DAG under that shard's reader lock (introspection
    /// and tests; do not retain the reference past the callback).
    void for_each_dag(const std::function<void(const CapabilityDag&)>& visit) const;

    /// Counts shard-lock acquisitions that could not proceed immediately
    /// (try-lock failed before blocking) — the observable cost of sharing
    /// a shard between publishers and queriers. Set once, before the index
    /// sees concurrent traffic; nullptr disables counting.
    void set_contention_counter(obs::Counter* counter) noexcept {
        contention_ = counter;
    }

private:
    struct Shard {
        /// All shards share one rank — probes hold a single shard lock at
        /// a time (remove_service iterates, never nests), and the oracle
        /// calls made under it only acquire higher-ranked KB locks.
        mutable support::RankedSharedMutex mutex{
            support::LockRank::kDagShard};
        std::vector<std::unique_ptr<CapabilityDag>> dags;
        /// Lock-free emptiness probe: queries skip a shard without touching
        /// its mutex when no DAG lives there (most shards, for small
        /// ontology universes). Updated under the unique lock; a query that
        /// misses a concurrent first-insert simply linearizes before it.
        std::atomic<std::size_t> dag_count{0};
        /// Union of ontology_mask() over the signatures of the shard's
        /// DAGs. Queries skip the shard — mutex untouched — when this is
        /// disjoint from the request's mask: the union being a superset of
        /// every signature, disjointness proves the per-DAG intersects()
        /// test would have pruned every DAG here. Bit collisions (index
        /// folded mod 64) only ever keep a shard visitable, never skip a
        /// live candidate. Maintained under the unique lock (grown on DAG
        /// creation, recomputed exactly when empty DAGs are dropped); a
        /// query racing a first insert linearizes before it, as with
        /// dag_count.
        std::atomic<std::uint64_t> ontology_mask{0};
    };

    /// A DAG lives in the shard of its signature's smallest ontology
    /// index; queries intersect against every shard anyway, so the mapping
    /// only needs to spread unrelated signatures apart.
    std::size_t shard_of(const FlatSet<OntologyIndex>& signature) const noexcept {
        if (signature.empty()) return 0;
        return static_cast<std::size_t>(*signature.begin()) % shard_count_;
    }

    CapabilityDag& dag_for_locked(Shard& shard,
                                  const FlatSet<OntologyIndex>& signature);

    std::size_t shard_count_;
    std::unique_ptr<Shard[]> shards_;
    DagTuning tuning_;
    obs::Counter* contention_ = nullptr;
};

}  // namespace sariadne::directory
