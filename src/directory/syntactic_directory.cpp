#include "directory/syntactic_directory.hpp"

#include "support/stopwatch.hpp"
#include "xml/parser.hpp"

namespace sariadne::directory {

ServiceId SyntacticDirectory::publish_xml(std::string xml_text) {
    const desc::WsdlDescription parsed = desc::parse_wsdl(xml_text);
    // Re-advertisement replaces the stored document of the same service.
    std::erase_if(documents_, [&](const StoredService& stored) {
        return stored.service_name == parsed.service_name;
    });
    const ServiceId id = next_id_++;
    documents_.push_back(
        StoredService{id, parsed.service_name, std::move(xml_text)});
    return id;
}

std::vector<MatchHit> SyntacticDirectory::query(
    const desc::WsdlDescription& request, QueryTiming& timing) {
    Stopwatch stopwatch;
    std::vector<MatchHit> hits;
    for (const StoredService& stored : documents_) {
        const desc::WsdlDescription provided = desc::parse_wsdl(stored.document);
        if (desc::wsdl_conforms(provided, request)) {
            hits.push_back(MatchHit{stored.id, provided.service_name,
                                    request.operations.empty()
                                        ? std::string()
                                        : request.operations.front().name,
                                    0});
        }
    }
    timing.match_ms = stopwatch.elapsed_ms();
    return hits;
}

std::vector<MatchHit> SyntacticDirectory::query_xml(std::string_view request_xml,
                                                    QueryTiming& timing) {
    Stopwatch stopwatch;
    const desc::WsdlDescription request = desc::parse_wsdl(request_xml);
    timing.parse_ms = stopwatch.elapsed_ms();
    return query(request, timing);
}

}  // namespace sariadne::directory
