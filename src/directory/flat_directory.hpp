// FlatDirectory — the "without classification" baseline of Figure 9: the
// same encoded semantic matching as SemanticDirectory, but advertisements
// are kept in a flat list, so every query evaluates Match against *every*
// cached capability instead of probing DAG roots. The paper measures the
// flat variant at roughly +50 % matching time, growing with directory
// size.
#pragma once

#include <string_view>
#include <vector>

#include "description/amigos_io.hpp"
#include "description/resolved.hpp"
#include "directory/types.hpp"
#include "reasoner/knowledge_base.hpp"
#include "matching/oracles.hpp"

namespace sariadne::directory {

class FlatDirectory {
public:
    explicit FlatDirectory(encoding::KnowledgeBase& kb) : kb_(&kb), oracle_(kb) {}

    PublishReceipt publish_xml(std::string_view xml_text);
    ServiceId publish(const desc::ServiceDescription& service);

    /// Linear-scan matching: every cached capability is evaluated; hits
    /// with the minimum distance are returned per requested capability.
    std::vector<std::vector<MatchHit>> query(
        const std::vector<desc::ResolvedCapability>& request, MatchStats& stats,
        QueryTiming& timing);

    std::size_t capability_count() const noexcept { return entries_.size(); }

private:
    struct Entry {
        desc::ResolvedCapability capability;
        ServiceId service;
    };

    encoding::KnowledgeBase* kb_;
    matching::EncodedOracle oracle_;
    std::vector<Entry> entries_;
    ServiceId next_id_ = 1;
};

}  // namespace sariadne::directory
