#include "directory/semantic_directory.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "description/conversation.hpp"
#include "support/arena.hpp"
#include "support/errors.hpp"
#include "support/stopwatch.hpp"

namespace sariadne::directory {

PublishReceipt SemanticDirectory::publish_xml(std::string_view xml_text) {
    Stopwatch stopwatch;
    desc::ServiceDescription service = desc::parse_service(xml_text);
    const double parse_ms = stopwatch.elapsed_ms();
    if (metrics_.publish_parse_ms) metrics_.publish_parse_ms->observe(parse_ms);
    PublishReceipt receipt = publish(std::move(service));
    receipt.timing.parse_ms = parse_ms;
    return receipt;
}

namespace {

/// Everything publish derives from one description before touching shared
/// state — resolution, version check, summary URI sets and the DAG
/// signatures the removal path will need later.
struct PreparedService {
    desc::ServiceDescription description;
    std::vector<desc::ResolvedCapability> provided;
    std::vector<std::vector<std::string>> uri_sets;
    std::vector<FlatSet<onto::OntologyIndex>> signatures;
    std::vector<summary::CapabilityProjection> projections;
    ServiceId id = 0;
};

PreparedService prepare_service(desc::ServiceDescription service,
                                encoding::KnowledgeBase& kb,
                                bool project_codes) {
    PreparedService prepared;
    prepared.provided = desc::resolve_provided(service, kb);
    prepared.uri_sets.reserve(prepared.provided.size());
    prepared.signatures.reserve(prepared.provided.size());
    if (project_codes) prepared.projections.reserve(prepared.provided.size());
    for (const auto& cap : prepared.provided) {
        // §3.2 consistency: a description carrying pre-computed codes must
        // have been encoded against the current ontology versions (the
        // attached signature's tag is exactly that environment tag).
        if (cap.code_version != 0 &&
            cap.code_version != cap.signature.environment_tag) {
            throw VersionMismatchError(
                "capability '" + cap.name + "' of service '" +
                service.profile.service_name +
                "' carries codes for a stale ontology version — the "
                "advertiser must refresh its codes");
        }
        prepared.uri_sets.push_back(desc::ontology_uris(cap, kb.registry()));
        prepared.signatures.push_back(cap.ontologies);
        if (project_codes) {
            prepared.projections.push_back(summary::project_capability(cap, kb));
        }
    }
    prepared.description = std::move(service);
    return prepared;
}

/// Refcount key for one capability's ontology-URI set. The URIs come out
/// of resolution in a deterministic order, so identical sets always map to
/// the same key; an order-sensitive false distinction is harmless (it can
/// only trigger a spare rebuild, never skip a needed one).
std::string uri_set_key(const std::vector<std::string>& uris) {
    std::string key;
    for (const std::string& uri : uris) {
        key += uri;
        key += '\n';
    }
    return key;
}

}  // namespace

PublishReceipt SemanticDirectory::publish(desc::ServiceDescription service) {
    Stopwatch stopwatch;
    // Resolve (with flat-layout code signatures attached) and version-check
    // before touching any shared state: a rejected description leaves the
    // directory untouched.
    PreparedService prepared = prepare_service(
        std::move(service), *kb_,
        summary_backend_ == summary::SummaryBackend::kInterval);

    // Re-advertisement: a service is identified by its name; a fresh
    // description replaces the cached one (services periodically re-publish
    // to their vicinity directory in the protocol). The lookup, erase and
    // insert are one critical section so two same-name publishers cannot
    // both survive.
    const std::string name = prepared.description.profile.service_name;
    ServiceId replaced = 0;
    std::vector<FlatSet<OntologyIndex>> replaced_signatures;
    std::vector<std::vector<std::string>> replaced_uri_sets;
    std::vector<summary::CapabilityProjection> replaced_projections;
    ServiceId id = 0;
    {
        std::unique_lock lock(services_mutex_);
        const auto named = by_name_.find(name);
        if (named != by_name_.end()) {
            replaced = named->second;
            const auto it = services_.find(replaced);
            replaced_signatures = std::move(it->second.signatures);
            replaced_uri_sets = std::move(it->second.summary_uri_sets);
            replaced_projections = std::move(it->second.projections);
            services_.erase(it);
        }
        id = next_id_.fetch_add(1, std::memory_order_acq_rel);
        services_.emplace(id,
                          StoredService{std::move(prepared.description),
                                        prepared.uri_sets,
                                        prepared.signatures,
                                        prepared.projections});
        by_name_[name] = id;
    }
    if (replaced != 0) dags_.remove_service(replaced, replaced_signatures);

    {
        std::lock_guard lock(summary_mutex_);
        // Retain before release so a set the replacement still uses never
        // transiently drops to zero holders.
        retain_uri_sets_locked(prepared.uri_sets);
        if (replaced != 0 && release_uri_sets_locked(replaced_uri_sets)) {
            rebuild_summary_locked();
        } else {
            for (const auto& uris : prepared.uri_sets) {
                summary_.insert_ontology_set(uris);
            }
        }
        if (summary_backend_ == summary::SummaryBackend::kInterval) {
            if (exact_tag_conflict_locked(prepared.projections)) {
                // Codes crossed a table generation: re-project everything
                // (the table already holds the new service, so the rebuild
                // covers it; the replaced one is already gone).
                rebuild_interval_summary_locked();
            } else {
                for (const auto& proj : prepared.projections) {
                    exact_summary_.retain_projection(proj);
                }
                for (const auto& proj : replaced_projections) {
                    exact_summary_.release_projection(proj);
                }
            }
        }
    }

    matching::EncodedOracle oracle(*kb_);
    MatchStats stats;
    for (auto& cap : prepared.provided) {
        dags_.insert(DagEntry{std::move(cap), id}, oracle, stats);
    }
    stats.concept_queries = oracle.queries();
    accumulate_lifetime(stats);

    PublishReceipt receipt;
    receipt.id = id;
    receipt.timing.insert_ms = stopwatch.elapsed_ms();
    if (metrics_.publishes) metrics_.publishes->inc();
    if (metrics_.services && replaced == 0) metrics_.services->add(1);
    if (metrics_.publish_insert_ms) {
        metrics_.publish_insert_ms->observe(receipt.timing.insert_ms);
    }
    return receipt;
}

std::vector<PublishReceipt> SemanticDirectory::publish_batch(
    std::vector<desc::ServiceDescription> batch) {
    std::vector<PublishReceipt> receipts;
    if (batch.empty()) return receipts;
    Stopwatch stopwatch;

    // Resolve and version-check the whole batch before mutating anything:
    // one bad description rejects the batch with the directory untouched.
    std::vector<PreparedService> prepared;
    prepared.reserve(batch.size());
    const bool project_codes =
        summary_backend_ == summary::SummaryBackend::kInterval;
    for (auto& service : batch) {
        prepared.push_back(
            prepare_service(std::move(service), *kb_, project_codes));
    }

    // One critical section updates the service table for every member.
    // Later duplicates of a name (inside the batch or against the cached
    // table) replace earlier ones, matching sequential publish semantics.
    struct Replaced {
        ServiceId id;
        std::vector<FlatSet<OntologyIndex>> signatures;
        std::vector<std::vector<std::string>> uri_sets;
        std::vector<summary::CapabilityProjection> projections;
    };
    std::vector<Replaced> replaced;
    std::size_t fresh_names = 0;
    {
        std::unique_lock lock(services_mutex_);
        for (auto& p : prepared) {
            const std::string name = p.description.profile.service_name;
            const auto named = by_name_.find(name);
            if (named != by_name_.end()) {
                const auto it = services_.find(named->second);
                replaced.push_back(
                    Replaced{named->second, std::move(it->second.signatures),
                             std::move(it->second.summary_uri_sets),
                             std::move(it->second.projections)});
                services_.erase(it);
            } else {
                ++fresh_names;
            }
            p.id = next_id_.fetch_add(1, std::memory_order_acq_rel);
            services_.emplace(p.id,
                              StoredService{std::move(p.description),
                                            p.uri_sets,
                                            p.signatures,
                                            p.projections});
            by_name_[name] = p.id;
        }
    }
    for (const auto& r : replaced) dags_.remove_service(r.id, r.signatures);

    // Summary maintenance, at most once per batch: every member retains
    // its URI sets, every replaced service (pre-batch or superseded inside
    // the batch) releases its own. The batch only needs the full rebuild
    // when some replaced service held the last reference to a set (Bloom
    // filters cannot subtract); otherwise the new sets fold in additively.
    {
        std::lock_guard summary_lock(summary_mutex_);
        // Retain before release: a set carried over from a replaced
        // service to its replacement never transiently reaches zero.
        for (const auto& p : prepared) retain_uri_sets_locked(p.uri_sets);
        bool needs_rebuild = false;
        for (const auto& r : replaced) {
            if (release_uri_sets_locked(r.uri_sets)) needs_rebuild = true;
        }
        if (needs_rebuild) {
            rebuild_summary_locked();
        } else {
            for (const auto& p : prepared) {
                for (const auto& uris : p.uri_sets) {
                    summary_.insert_ontology_set(uris);
                }
            }
        }
        if (summary_backend_ == summary::SummaryBackend::kInterval) {
            bool conflict = false;
            for (const auto& p : prepared) {
                if (exact_tag_conflict_locked(p.projections)) {
                    conflict = true;
                    break;
                }
            }
            if (conflict) {
                rebuild_interval_summary_locked();
            } else {
                // Same retain-before-release discipline as the URI sets:
                // codes carried from a replaced service to its replacement
                // never transiently drop to zero.
                for (const auto& p : prepared) {
                    for (const auto& proj : p.projections) {
                        exact_summary_.retain_projection(proj);
                    }
                }
                for (const auto& r : replaced) {
                    for (const auto& proj : r.projections) {
                        exact_summary_.release_projection(proj);
                    }
                }
            }
        }
    }

    // Members superseded inside their own batch never reach the DAGs
    // (their table entry is already gone).
    std::unordered_set<ServiceId> superseded;
    for (const auto& r : replaced) superseded.insert(r.id);

    std::size_t capability_total = 0;
    for (const auto& p : prepared) capability_total += p.provided.size();
    std::vector<DagEntry> entries;
    entries.reserve(capability_total);
    for (auto& p : prepared) {
        if (superseded.count(p.id) != 0) continue;
        for (auto& cap : p.provided) {
            entries.push_back(DagEntry{std::move(cap), p.id});
        }
    }

    matching::EncodedOracle oracle(*kb_);
    MatchStats stats;
    dags_.insert_batch(std::move(entries), oracle, stats);
    stats.concept_queries = oracle.queries();
    accumulate_lifetime(stats);

    const double insert_ms = stopwatch.elapsed_ms();
    const double amortized_ms =
        insert_ms / static_cast<double>(prepared.size());
    receipts.reserve(prepared.size());
    for (const auto& p : prepared) {
        PublishReceipt receipt;
        receipt.id = p.id;
        receipt.timing.insert_ms = amortized_ms;
        receipts.push_back(receipt);
        if (metrics_.publish_insert_ms) {
            metrics_.publish_insert_ms->observe(amortized_ms);
        }
    }
    if (metrics_.publishes) metrics_.publishes->inc(prepared.size());
    if (metrics_.publish_batches) metrics_.publish_batches->inc();
    if (metrics_.services && fresh_names > 0) {
        metrics_.services->add(static_cast<std::int64_t>(fresh_names));
    }
    return receipts;
}

bool SemanticDirectory::remove(ServiceId service) {
    std::vector<FlatSet<OntologyIndex>> signatures;
    std::vector<std::vector<std::string>> uri_sets;
    std::vector<summary::CapabilityProjection> projections;
    {
        std::unique_lock lock(services_mutex_);
        const auto it = services_.find(service);
        if (it == services_.end()) return false;
        const auto named =
            by_name_.find(it->second.description.profile.service_name);
        if (named != by_name_.end() && named->second == service) {
            by_name_.erase(named);
        }
        signatures = std::move(it->second.signatures);
        uri_sets = std::move(it->second.summary_uri_sets);
        projections = std::move(it->second.projections);
        services_.erase(it);
    }
    dags_.remove_service(service, signatures);
    {
        std::lock_guard lock(summary_mutex_);
        if (release_uri_sets_locked(uri_sets)) rebuild_summary_locked();
        // Exact-summary removal is refcount-exact: no rebuild, ever. The
        // cached projections are kept consistent with the summary's table
        // generation by the publish-path conflict check.
        for (const auto& proj : projections) {
            exact_summary_.release_projection(proj);
        }
    }
    if (metrics_.removals) metrics_.removals->inc();
    if (metrics_.services) metrics_.services->sub(1);
    return true;
}

QueryResult SemanticDirectory::query_xml(std::string_view xml_text,
                                         const QueryOptions& options) const {
    Stopwatch stopwatch;
    const desc::ServiceRequest request = desc::parse_request(xml_text);
    const double parse_ms = stopwatch.elapsed_ms();
    if (metrics_.query_parse_ms) metrics_.query_parse_ms->observe(parse_ms);
    QueryResult result = query(request, options);
    result.timing.parse_ms = parse_ms;
    return result;
}

QueryResult SemanticDirectory::query(const desc::ServiceRequest& request,
                                     const QueryOptions& options) const {
    QueryResult result;
    query_prepared(request, desc::resolve_request(request, *kb_), options,
                   result);
    return result;
}

void SemanticDirectory::query_prepared(
    const desc::ServiceRequest& request,
    const std::vector<desc::ResolvedCapability>& resolved,
    const QueryOptions& options, QueryResult& out) const {
    const bool constrained = !request.qos_constraints.empty() ||
                             !request.context_constraints.empty() ||
                             request.process.has_value();
    run_query(constrained ? &request : nullptr, resolved, options, out);
}

QueryResult SemanticDirectory::query_resolved(
    const std::vector<desc::ResolvedCapability>& capabilities,
    const QueryOptions& options) const {
    QueryResult result;
    run_query(nullptr, capabilities, options, result);
    return result;
}

void SemanticDirectory::query_resolved(
    const std::vector<desc::ResolvedCapability>& capabilities,
    const QueryOptions& options, QueryResult& out) const {
    run_query(nullptr, capabilities, options, out);
}

void SemanticDirectory::run_query(
    const desc::ServiceRequest* constraints,
    const std::vector<desc::ResolvedCapability>& resolved,
    const QueryOptions& options, QueryResult& out) const {
    Stopwatch stopwatch;
    out.stats = MatchStats{};
    out.timing = QueryTiming{};
    // Recycle the per-capability vectors (and their MatchHit strings):
    // resize only moves when the request shape changes, so a caller that
    // keeps one QueryResult across a burst allocates nothing steady-state.
    if (out.per_capability.size() != resolved.size()) {
        out.per_capability.resize(resolved.size());
    }
    for (std::size_t i = 0; i < resolved.size(); ++i) {
        query_capability_into(resolved[i], constraints, options, out.stats,
                              out.per_capability[i]);
    }
    apply_require_all(out, options);
    out.timing.match_ms = stopwatch.elapsed_ms();
    if (metrics_.queries) metrics_.queries->inc();
    if (metrics_.query_match_ms) {
        metrics_.query_match_ms->observe(out.timing.match_ms);
    }
}

std::vector<MatchHit> SemanticDirectory::query_capability(
    const desc::ResolvedCapability& capability,
    const desc::ServiceRequest* constraints, const QueryOptions& options,
    MatchStats& stats) const {
    std::vector<MatchHit> hits;
    query_capability_into(capability, constraints, options, stats, hits);
    return hits;
}

void SemanticDirectory::query_capability_into(
    const desc::ResolvedCapability& capability,
    const desc::ServiceRequest* constraints, const QueryOptions& options,
    MatchStats& stats, std::vector<MatchHit>& out) const {
    matching::EncodedOracle oracle(*kb_);
    // Callers that resolved against the bare registry carry no code
    // signature and take the per-pair oracle path at each vertex, with
    // mask/emptiness quick rejects only (the geometry needs both sides'
    // codes). Signing a copy here would cost more than the walk saves;
    // resolve through the KnowledgeBase to get the batched kernel.
    MatchStats local;
    match_one_into(capability, constraints, options, oracle, local, out);
    local.concept_queries = oracle.queries();
    stats.capability_matches += local.capability_matches;
    stats.concept_queries += local.concept_queries;
    stats.dags_visited += local.dags_visited;
    stats.dags_pruned += local.dags_pruned;
    stats.quick_rejects += local.quick_rejects;
    stats.reachability_prunes += local.reachability_prunes;
    stats.scratch_allocs += local.scratch_allocs;
    accumulate_lifetime(local);
}

void SemanticDirectory::match_one_into(
    const desc::ResolvedCapability& capability,
    const desc::ServiceRequest* constraints, const QueryOptions& options,
    matching::DistanceOracle& oracle, MatchStats& stats,
    std::vector<MatchHit>& out) const {
    // All scratch for this capability lives in the thread's arena; reset
    // recycles the chunks previous queries grew, and the chunk-count delta
    // is the query's allocation bill (0 steady-state, gated in CI).
    support::Arena& arena = support::query_scratch_arena();
    arena.reset();
    const std::uint64_t allocs_before = arena.chunk_allocs();

    support::ArenaVec<RawHit> hits(arena);
    dags_.query_all_into(capability, oracle, stats, arena, hits);
    // (The former dags_.query() fast path is subsumed: per-DAG best-tier
    // merging visits exactly the vertices query_all_into visits, so stats
    // are identical and selection below reproduces its result.)

    // max_distance is *inclusive*: a hit at exactly max_distance survives.
    // This is the only distance-bound filter site on any query path — the
    // oracle path, the encoded kernel and its memo never see the bound
    // (they compute distances; admissibility is decided here), so the
    // boundary rule cannot diverge between resolution paths.
    std::size_t kept = 0;
    if (options.max_distance >= 0) {
        for (std::size_t i = 0; i < hits.size(); ++i) {
            if (hits[i].semantic_distance <= options.max_distance) {
                hits[kept++] = hits[i];
            }
        }
        hits.truncate(kept);
    }

    if (constraints != nullptr && !hits.empty()) {
        // Drop hits whose advertised profile violates a QoS/context
        // constraint or whose published process cannot realize the
        // client's conversation. A provider that publishes no process
        // model claims nothing about its conversation and is kept
        // (lenient default). The reader lock keeps the descriptions
        // stable for the duration of the scan.
        std::shared_lock lock(services_mutex_);
        kept = 0;
        for (std::size_t i = 0; i < hits.size(); ++i) {
            const auto it = services_.find(hits[i].service);
            if (it == services_.end() ||
                !desc::satisfies_constraints(it->second.description.profile,
                                             *constraints)) {
                continue;
            }
            if (constraints->process.has_value() &&
                it->second.description.process.has_value() &&
                !desc::conversation_compatible(
                    *constraints->process, *it->second.description.process)) {
                continue;
            }
            hits[kept++] = hits[i];
        }
        hits.truncate(kept);
    }

    // Deterministic rank shared by *both* selection modes: (distance,
    // service, capability). top_k=1 and the default best-tier answer lead
    // with the identical hit — the tie-break rule is pinned by
    // differential_test.
    const auto by_rank = [](const RawHit& a, const RawHit& b) {
        if (a.semantic_distance != b.semantic_distance) {
            return a.semantic_distance < b.semantic_distance;
        }
        if (a.service != b.service) return a.service < b.service;
        return a.capability_name < b.capability_name;
    };

    if (!hits.empty()) {
        if (options.top_k > 0) {
            // Bounded max-heap selection: O(n log k) like partial_sort but
            // over the arena (no internal buffer), and the heap never
            // exceeds k entries. sort_heap leaves the winners in ascending
            // rank — element-for-element what partial_sort produced.
            const std::size_t k = std::min(options.top_k, hits.size());
            RawHit* heap = hits.begin();
            std::make_heap(heap, heap + k, by_rank);
            for (std::size_t i = k; i < hits.size(); ++i) {
                if (by_rank(hits[i], heap[0])) {
                    std::pop_heap(heap, heap + k, by_rank);
                    heap[k - 1] = hits[i];
                    std::push_heap(heap, heap + k, by_rank);
                }
            }
            std::sort_heap(heap, heap + k, by_rank);
            hits.truncate(k);
        } else {
            // Default shape: only the minimal-distance tier — min scan,
            // one compaction pass, then the same deterministic order as
            // the top-k path (all distances equal, so rank reduces to
            // (service, capability)).
            int best = hits[0].semantic_distance;
            for (const RawHit& hit : hits) {
                best = std::min(best, hit.semantic_distance);
            }
            kept = 0;
            for (std::size_t i = 0; i < hits.size(); ++i) {
                if (hits[i].semantic_distance == best) hits[kept++] = hits[i];
            }
            hits.truncate(kept);
            std::sort(hits.begin(), hits.end(), by_rank);
        }
    }

    // Materialize into the caller's vector, recycling element strings
    // (assign reuses capacity). Shrinking destroys only the excess
    // elements; growth constructs — both cold-path events under a
    // steady workload.
    if (out.size() > hits.size()) {
        out.resize(hits.size());
    }
    while (out.size() < hits.size()) out.emplace_back();
    for (std::size_t i = 0; i < hits.size(); ++i) {
        MatchHit& dst = out[i];
        dst.service = hits[i].service;
        dst.service_name.assign(hits[i].service_name.data(),
                                hits[i].service_name.size());
        dst.capability_name.assign(hits[i].capability_name.data(),
                                   hits[i].capability_name.size());
        dst.semantic_distance = hits[i].semantic_distance;
    }
    stats.scratch_allocs += arena.chunk_allocs() - allocs_before;
}

void SemanticDirectory::apply_require_all(QueryResult& result,
                                          const QueryOptions& options) const {
    if (!options.require_all_capabilities || result.fully_satisfied()) return;
    for (auto& hits : result.per_capability) hits.clear();
}

void SemanticDirectory::accumulate_lifetime(const MatchStats& stats) const noexcept {
    lifetime_capability_matches_.fetch_add(stats.capability_matches,
                                           std::memory_order_relaxed);
    lifetime_concept_queries_.fetch_add(stats.concept_queries,
                                        std::memory_order_relaxed);
    lifetime_dags_visited_.fetch_add(stats.dags_visited,
                                     std::memory_order_relaxed);
    lifetime_dags_pruned_.fetch_add(stats.dags_pruned,
                                    std::memory_order_relaxed);
    lifetime_quick_rejects_.fetch_add(stats.quick_rejects,
                                      std::memory_order_relaxed);
    lifetime_reachability_prunes_.fetch_add(stats.reachability_prunes,
                                            std::memory_order_relaxed);
    lifetime_scratch_allocs_.fetch_add(stats.scratch_allocs,
                                       std::memory_order_relaxed);
    // Mirror the same relaxed deltas into the registry so external sinks
    // see live work counters without a snapshot call.
    if (metrics_.capability_matches) {
        metrics_.capability_matches->inc(stats.capability_matches);
    }
    if (metrics_.concept_queries) {
        metrics_.concept_queries->inc(stats.concept_queries);
    }
    if (metrics_.dags_visited) metrics_.dags_visited->inc(stats.dags_visited);
    if (metrics_.dags_pruned) metrics_.dags_pruned->inc(stats.dags_pruned);
    if (metrics_.quick_rejects) metrics_.quick_rejects->inc(stats.quick_rejects);
    if (metrics_.reachability_prunes) {
        metrics_.reachability_prunes->inc(stats.reachability_prunes);
    }
    if (metrics_.query_allocs) metrics_.query_allocs->inc(stats.scratch_allocs);
}

MatchStats SemanticDirectory::lifetime_stats() const noexcept {
    MatchStats stats;
    stats.capability_matches =
        lifetime_capability_matches_.load(std::memory_order_relaxed);
    stats.concept_queries =
        lifetime_concept_queries_.load(std::memory_order_relaxed);
    stats.dags_visited = lifetime_dags_visited_.load(std::memory_order_relaxed);
    stats.dags_pruned = lifetime_dags_pruned_.load(std::memory_order_relaxed);
    stats.quick_rejects = lifetime_quick_rejects_.load(std::memory_order_relaxed);
    stats.reachability_prunes =
        lifetime_reachability_prunes_.load(std::memory_order_relaxed);
    stats.scratch_allocs =
        lifetime_scratch_allocs_.load(std::memory_order_relaxed);
    return stats;
}

std::size_t SemanticDirectory::service_count() const {
    std::shared_lock lock(services_mutex_);
    return services_.size();
}

const desc::ServiceDescription* SemanticDirectory::service(ServiceId id) const {
    std::shared_lock lock(services_mutex_);
    const auto it = services_.find(id);
    return it == services_.end() ? nullptr : &it->second.description;
}

std::optional<desc::Grounding> SemanticDirectory::grounding(ServiceId id) const {
    std::shared_lock lock(services_mutex_);
    const auto it = services_.find(id);
    if (it == services_.end()) return std::nullopt;
    return it->second.description.grounding;
}

bloom::BloomFilter SemanticDirectory::summary() const {
    std::lock_guard lock(summary_mutex_);
    return summary_;
}

void SemanticDirectory::rebuild_summary() {
    std::lock_guard summary_lock(summary_mutex_);
    rebuild_summary_locked();
}

void SemanticDirectory::rebuild_summary_locked() {
    if (metrics_.summary_rebuilds) metrics_.summary_rebuilds->inc();
    // Lock order (summary before services-shared) matches every other path
    // that holds both; publish touches them one at a time.
    std::shared_lock services_lock(services_mutex_);
    summary_.clear();
    // The per-capability ontology-URI sets were resolved once at publish
    // time and cached with the description, so a rebuild is a pure
    // re-insertion — no parsing or resolution per stored service.
    for (const auto& [id, stored] : services_) {
        for (const auto& uris : stored.summary_uri_sets) {
            summary_.insert_ontology_set(uris);
        }
    }
}

void SemanticDirectory::retain_uri_sets_locked(
    const std::vector<std::vector<std::string>>& sets) {
    for (const auto& uris : sets) ++summary_refcounts_[uri_set_key(uris)];
}

bool SemanticDirectory::release_uri_sets_locked(
    const std::vector<std::vector<std::string>>& sets) {
    bool lost = false;
    for (const auto& uris : sets) {
        const auto it = summary_refcounts_.find(uri_set_key(uris));
        if (it == summary_refcounts_.end()) {
            // Unknown set: never counted in (should not happen). Rebuild
            // defensively rather than risk a stale filter.
            lost = true;
            continue;
        }
        if (--it->second == 0) {
            summary_refcounts_.erase(it);
            lost = true;
        }
    }
    return lost;
}

summary::IntervalSummary SemanticDirectory::interval_summary() const {
    std::lock_guard lock(summary_mutex_);
    return exact_summary_.snapshot();
}

std::uint64_t SemanticDirectory::interval_summary_version() const {
    std::lock_guard lock(summary_mutex_);
    return exact_summary_.version();
}

std::size_t SemanticDirectory::interval_code_count() const {
    std::lock_guard lock(summary_mutex_);
    return exact_summary_.code_count();
}

std::size_t SemanticDirectory::summary_refcount_entries() const {
    std::lock_guard lock(summary_mutex_);
    return summary_refcounts_.size();
}

bool SemanticDirectory::exact_tag_conflict_locked(
    const std::vector<summary::CapabilityProjection>& projections) const {
    for (const auto& proj : projections) {
        if (exact_summary_.tag_conflict(proj)) return true;
    }
    return false;
}

void SemanticDirectory::rebuild_interval_summary_locked() {
    if (metrics_.summary_rebuilds) metrics_.summary_rebuilds->inc();
    // Unlike the Bloom rebuild, this one re-resolves every description:
    // the trigger is a code-table generation change, which invalidates the
    // cached canonical codes themselves, not just the summary. It takes
    // the service table exclusively (same summary→services lock order as
    // rebuild_summary_locked) so the refreshed projections can be written
    // back. Rare by design — ontology registration is quiesced.
    std::unique_lock services_lock(services_mutex_);
    exact_summary_.clear_retaining_version();
    for (auto& [id, stored] : services_) {
        stored.projections.clear();
        const auto resolved = desc::resolve_provided(stored.description, *kb_);
        stored.projections.reserve(resolved.size());
        for (const auto& cap : resolved) {
            stored.projections.push_back(summary::project_capability(cap, *kb_));
        }
        for (const auto& proj : stored.projections) {
            exact_summary_.retain_projection(proj);
        }
    }
}

}  // namespace sariadne::directory
