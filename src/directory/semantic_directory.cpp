#include "directory/semantic_directory.hpp"

#include <algorithm>
#include <utility>

#include "description/conversation.hpp"
#include "support/errors.hpp"
#include "support/stopwatch.hpp"

namespace sariadne::directory {

PublishReceipt SemanticDirectory::publish_xml(std::string_view xml_text) {
    Stopwatch stopwatch;
    desc::ServiceDescription service = desc::parse_service(xml_text);
    const double parse_ms = stopwatch.elapsed_ms();
    if (metrics_.publish_parse_ms) metrics_.publish_parse_ms->observe(parse_ms);
    PublishReceipt receipt = publish(std::move(service));
    receipt.timing.parse_ms = parse_ms;
    return receipt;
}

PublishReceipt SemanticDirectory::publish(desc::ServiceDescription service) {
    Stopwatch stopwatch;
    // Resolve (with flat-layout code signatures attached) and version-check
    // before touching any shared state: a rejected description leaves the
    // directory untouched.
    std::vector<desc::ResolvedCapability> provided =
        desc::resolve_provided(service, *kb_);
    std::vector<std::vector<std::string>> uri_sets;
    uri_sets.reserve(provided.size());
    for (const auto& cap : provided) {
        // §3.2 consistency: a description carrying pre-computed codes must
        // have been encoded against the current ontology versions (the
        // attached signature's tag is exactly that environment tag).
        if (cap.code_version != 0 &&
            cap.code_version != cap.signature.environment_tag) {
            throw VersionMismatchError(
                "capability '" + cap.name + "' of service '" +
                service.profile.service_name +
                "' carries codes for a stale ontology version — the "
                "advertiser must refresh its codes");
        }
        uri_sets.push_back(desc::ontology_uris(cap, kb_->registry()));
    }

    // Re-advertisement: a service is identified by its name; a fresh
    // description replaces the cached one (services periodically re-publish
    // to their vicinity directory in the protocol). The scan, erase and
    // insert are one critical section so two same-name publishers cannot
    // both survive.
    const std::string name = service.profile.service_name;
    ServiceId replaced = 0;
    ServiceId id = 0;
    {
        std::unique_lock lock(services_mutex_);
        for (const auto& [existing_id, existing] : services_) {
            if (existing.description.profile.service_name == name) {
                replaced = existing_id;
                break;
            }
        }
        if (replaced != 0) services_.erase(replaced);
        id = next_id_.fetch_add(1, std::memory_order_acq_rel);
        services_.emplace(id, StoredService{std::move(service), uri_sets});
    }
    if (replaced != 0) {
        dags_.remove_service(replaced);
        rebuild_summary();
    }

    {
        std::lock_guard lock(summary_mutex_);
        for (const auto& uris : uri_sets) summary_.insert_ontology_set(uris);
    }

    matching::EncodedOracle oracle(*kb_);
    MatchStats stats;
    for (auto& cap : provided) {
        dags_.insert(DagEntry{std::move(cap), id}, oracle, stats);
    }
    stats.concept_queries = oracle.queries();
    accumulate_lifetime(stats);

    PublishReceipt receipt;
    receipt.id = id;
    receipt.timing.insert_ms = stopwatch.elapsed_ms();
    if (metrics_.publishes) metrics_.publishes->inc();
    if (metrics_.services && replaced == 0) metrics_.services->add(1);
    if (metrics_.publish_insert_ms) {
        metrics_.publish_insert_ms->observe(receipt.timing.insert_ms);
    }
    return receipt;
}

bool SemanticDirectory::remove(ServiceId service) {
    {
        std::unique_lock lock(services_mutex_);
        const auto it = services_.find(service);
        if (it == services_.end()) return false;
        services_.erase(it);
    }
    dags_.remove_service(service);
    rebuild_summary();
    if (metrics_.removals) metrics_.removals->inc();
    if (metrics_.services) metrics_.services->sub(1);
    return true;
}

QueryResult SemanticDirectory::query_xml(std::string_view xml_text,
                                         const QueryOptions& options) const {
    Stopwatch stopwatch;
    const desc::ServiceRequest request = desc::parse_request(xml_text);
    const double parse_ms = stopwatch.elapsed_ms();
    if (metrics_.query_parse_ms) metrics_.query_parse_ms->observe(parse_ms);
    QueryResult result = query(request, options);
    result.timing.parse_ms = parse_ms;
    return result;
}

QueryResult SemanticDirectory::query(const desc::ServiceRequest& request,
                                     const QueryOptions& options) const {
    const bool constrained = !request.qos_constraints.empty() ||
                             !request.context_constraints.empty() ||
                             request.process.has_value();
    const auto resolved = desc::resolve_request(request, *kb_);
    const desc::ServiceRequest* constraints = constrained ? &request : nullptr;

    QueryResult result;
    Stopwatch stopwatch;
    result.per_capability.reserve(resolved.size());
    for (const auto& cap : resolved) {
        result.per_capability.push_back(
            query_capability(cap, constraints, options, result.stats));
    }
    apply_require_all(result, options);
    result.timing.match_ms = stopwatch.elapsed_ms();
    if (metrics_.queries) metrics_.queries->inc();
    if (metrics_.query_match_ms) {
        metrics_.query_match_ms->observe(result.timing.match_ms);
    }
    return result;
}

QueryResult SemanticDirectory::query_resolved(
    const std::vector<desc::ResolvedCapability>& capabilities,
    const QueryOptions& options) const {
    QueryResult result;
    Stopwatch stopwatch;
    result.per_capability.reserve(capabilities.size());
    for (const auto& cap : capabilities) {
        result.per_capability.push_back(
            query_capability(cap, nullptr, options, result.stats));
    }
    apply_require_all(result, options);
    result.timing.match_ms = stopwatch.elapsed_ms();
    if (metrics_.queries) metrics_.queries->inc();
    if (metrics_.query_match_ms) {
        metrics_.query_match_ms->observe(result.timing.match_ms);
    }
    return result;
}

std::vector<MatchHit> SemanticDirectory::query_capability(
    const desc::ResolvedCapability& capability,
    const desc::ServiceRequest* constraints, const QueryOptions& options,
    MatchStats& stats) const {
    matching::EncodedOracle oracle(*kb_);
    // Callers that resolved against the bare registry carry no code
    // signature and take the per-pair oracle path at each vertex, with
    // mask/emptiness quick rejects only (the geometry needs both sides'
    // codes). Signing a copy here would cost more than the walk saves;
    // resolve through the KnowledgeBase to get the batched kernel.
    MatchStats local;
    std::vector<MatchHit> hits =
        match_one(capability, constraints, options, oracle, local);
    local.concept_queries = oracle.queries();
    stats.capability_matches += local.capability_matches;
    stats.concept_queries += local.concept_queries;
    stats.dags_visited += local.dags_visited;
    stats.dags_pruned += local.dags_pruned;
    stats.quick_rejects += local.quick_rejects;
    accumulate_lifetime(local);
    return hits;
}

std::vector<MatchHit> SemanticDirectory::match_one(
    const desc::ResolvedCapability& capability,
    const desc::ServiceRequest* constraints, const QueryOptions& options,
    matching::DistanceOracle& oracle, MatchStats& stats) const {
    // Beyond the minimal-distance tier is needed whenever hits may be
    // re-filtered (constraints, max_distance) or re-ranked (top_k).
    const bool need_all = options.top_k > 0 || options.max_distance >= 0 ||
                          constraints != nullptr;
    std::vector<MatchHit> hits = need_all
                                     ? dags_.query_all(capability, oracle, stats)
                                     : dags_.query(capability, oracle, stats);

    if (options.max_distance >= 0) {
        std::erase_if(hits, [&](const MatchHit& hit) {
            return hit.semantic_distance > options.max_distance;
        });
    }

    if (constraints != nullptr) {
        // Drop hits whose advertised profile violates a QoS/context
        // constraint or whose published process cannot realize the
        // client's conversation. A provider that publishes no process
        // model claims nothing about its conversation and is kept
        // (lenient default). The reader lock keeps the descriptions
        // stable for the duration of the scan.
        std::shared_lock lock(services_mutex_);
        std::erase_if(hits, [&](const MatchHit& hit) {
            const auto it = services_.find(hit.service);
            if (it == services_.end() ||
                !desc::satisfies_constraints(it->second.description.profile,
                                             *constraints)) {
                return true;
            }
            if (constraints->process.has_value() &&
                it->second.description.process.has_value() &&
                !desc::conversation_compatible(
                    *constraints->process, *it->second.description.process)) {
                return true;
            }
            return false;
        });
    }

    if (need_all && !hits.empty()) {
        if (options.top_k > 0) {
            // Only the top k hits need ordering: partial_sort keeps the
            // selection O(n log k). Ties break deterministically on
            // (distance, service, capability) so repeated queries agree.
            const auto by_rank = [](const MatchHit& a, const MatchHit& b) {
                if (a.semantic_distance != b.semantic_distance) {
                    return a.semantic_distance < b.semantic_distance;
                }
                if (a.service != b.service) return a.service < b.service;
                return a.capability_name < b.capability_name;
            };
            const std::size_t k = std::min(options.top_k, hits.size());
            std::partial_sort(hits.begin(),
                              hits.begin() + static_cast<std::ptrdiff_t>(k),
                              hits.end(), by_rank);
            hits.resize(k);
        } else {
            // Legacy shape: only the minimal-distance tier, in traversal
            // order (no sort needed — a min scan plus one filter pass).
            int best = hits.front().semantic_distance;
            for (const MatchHit& hit : hits) {
                best = std::min(best, hit.semantic_distance);
            }
            std::erase_if(hits, [best](const MatchHit& hit) {
                return hit.semantic_distance != best;
            });
        }
    }
    return hits;
}

void SemanticDirectory::apply_require_all(QueryResult& result,
                                          const QueryOptions& options) const {
    if (!options.require_all_capabilities || result.fully_satisfied()) return;
    for (auto& hits : result.per_capability) hits.clear();
}

void SemanticDirectory::accumulate_lifetime(const MatchStats& stats) const noexcept {
    lifetime_capability_matches_.fetch_add(stats.capability_matches,
                                           std::memory_order_relaxed);
    lifetime_concept_queries_.fetch_add(stats.concept_queries,
                                        std::memory_order_relaxed);
    lifetime_dags_visited_.fetch_add(stats.dags_visited,
                                     std::memory_order_relaxed);
    lifetime_dags_pruned_.fetch_add(stats.dags_pruned,
                                    std::memory_order_relaxed);
    lifetime_quick_rejects_.fetch_add(stats.quick_rejects,
                                      std::memory_order_relaxed);
    // Mirror the same relaxed deltas into the registry so external sinks
    // see live work counters without a snapshot call.
    if (metrics_.capability_matches) {
        metrics_.capability_matches->inc(stats.capability_matches);
    }
    if (metrics_.concept_queries) {
        metrics_.concept_queries->inc(stats.concept_queries);
    }
    if (metrics_.dags_visited) metrics_.dags_visited->inc(stats.dags_visited);
    if (metrics_.dags_pruned) metrics_.dags_pruned->inc(stats.dags_pruned);
    if (metrics_.quick_rejects) metrics_.quick_rejects->inc(stats.quick_rejects);
}

MatchStats SemanticDirectory::lifetime_stats() const noexcept {
    MatchStats stats;
    stats.capability_matches =
        lifetime_capability_matches_.load(std::memory_order_relaxed);
    stats.concept_queries =
        lifetime_concept_queries_.load(std::memory_order_relaxed);
    stats.dags_visited = lifetime_dags_visited_.load(std::memory_order_relaxed);
    stats.dags_pruned = lifetime_dags_pruned_.load(std::memory_order_relaxed);
    stats.quick_rejects = lifetime_quick_rejects_.load(std::memory_order_relaxed);
    return stats;
}

std::size_t SemanticDirectory::service_count() const {
    std::shared_lock lock(services_mutex_);
    return services_.size();
}

const desc::ServiceDescription* SemanticDirectory::service(ServiceId id) const {
    std::shared_lock lock(services_mutex_);
    const auto it = services_.find(id);
    return it == services_.end() ? nullptr : &it->second.description;
}

std::optional<desc::Grounding> SemanticDirectory::grounding(ServiceId id) const {
    std::shared_lock lock(services_mutex_);
    const auto it = services_.find(id);
    if (it == services_.end()) return std::nullopt;
    return it->second.description.grounding;
}

bloom::BloomFilter SemanticDirectory::summary() const {
    std::lock_guard lock(summary_mutex_);
    return summary_;
}

void SemanticDirectory::rebuild_summary() {
    if (metrics_.summary_rebuilds) metrics_.summary_rebuilds->inc();
    // Lock order (summary before services-shared) matches every other path
    // that holds both; publish touches them one at a time.
    std::lock_guard summary_lock(summary_mutex_);
    std::shared_lock services_lock(services_mutex_);
    summary_.clear();
    // The per-capability ontology-URI sets were resolved once at publish
    // time and cached with the description, so a rebuild is a pure
    // re-insertion — no parsing or resolution per stored service.
    for (const auto& [id, stored] : services_) {
        for (const auto& uris : stored.summary_uri_sets) {
            summary_.insert_ontology_set(uris);
        }
    }
}

}  // namespace sariadne::directory
