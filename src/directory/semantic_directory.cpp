#include "directory/semantic_directory.hpp"

#include <algorithm>

#include "description/conversation.hpp"
#include "support/errors.hpp"
#include "support/stopwatch.hpp"

namespace sariadne::directory {

std::pair<ServiceId, PublishTiming> SemanticDirectory::publish_xml(
    std::string_view xml_text) {
    Stopwatch stopwatch;
    desc::ServiceDescription service = desc::parse_service(xml_text);
    PublishTiming timing;
    timing.parse_ms = stopwatch.elapsed_ms();
    const ServiceId id = publish(std::move(service), &timing);
    return {id, timing};
}

ServiceId SemanticDirectory::publish(desc::ServiceDescription service,
                                     PublishTiming* timing) {
    Stopwatch stopwatch;
    // Re-advertisement: a service is identified by its name; a fresh
    // description replaces the cached one (services periodically re-publish
    // to their vicinity directory in the protocol).
    for (const auto& [existing_id, existing] : services_) {
        if (existing.profile.service_name == service.profile.service_name) {
            remove(existing_id);
            break;
        }
    }
    const ServiceId id = next_id_++;

    std::vector<desc::ResolvedCapability> provided =
        desc::resolve_provided(service, kb_->registry());
    MatchStats stats;
    for (auto& cap : provided) {
        // §3.2 consistency: a description carrying pre-computed codes must
        // have been encoded against the current ontology versions.
        if (cap.code_version != 0 &&
            cap.code_version != kb_->environment_tag(cap.ontologies)) {
            throw VersionMismatchError(
                "capability '" + cap.name + "' of service '" +
                service.profile.service_name +
                "' carries codes for a stale ontology version — the "
                "advertiser must refresh its codes");
        }
        const std::vector<std::string> uris =
            desc::ontology_uris(cap, kb_->registry());
        summary_.insert_ontology_set(uris);
        dags_.insert(DagEntry{std::move(cap), id}, oracle_, stats);
    }
    lifetime_stats_.capability_matches += stats.capability_matches;
    services_.emplace(id, std::move(service));
    if (timing != nullptr) timing->insert_ms = stopwatch.elapsed_ms();
    return id;
}

bool SemanticDirectory::remove(ServiceId service) {
    const auto it = services_.find(service);
    if (it == services_.end()) return false;
    dags_.remove_service(service);
    services_.erase(it);
    rebuild_summary();
    return true;
}

QueryResult SemanticDirectory::query_xml(std::string_view xml_text) {
    Stopwatch stopwatch;
    const desc::ServiceRequest request = desc::parse_request(xml_text);
    const double parse_ms = stopwatch.elapsed_ms();
    QueryResult result = query(request);
    result.timing.parse_ms = parse_ms;
    return result;
}

QueryResult SemanticDirectory::query(const desc::ServiceRequest& request) {
    const bool constrained = !request.qos_constraints.empty() ||
                             !request.context_constraints.empty() ||
                             request.process.has_value();
    if (!constrained) {
        return query_resolved(desc::resolve_request(request, kb_->registry()));
    }

    // Constraint-aware path: gather every semantic match, drop hits whose
    // advertised profile violates a QoS/context constraint or whose
    // published process cannot realize the client's conversation, then
    // keep the closest admissible hits per capability. A provider that
    // publishes no process model claims nothing about its conversation and
    // is kept (lenient default).
    const auto resolved = desc::resolve_request(request, kb_->registry());
    QueryResult result;
    Stopwatch stopwatch;
    result.per_capability.reserve(resolved.size());
    for (const auto& cap : resolved) {
        std::vector<MatchHit> hits = dags_.query_all(cap, oracle_, result.stats);
        std::erase_if(hits, [&](const MatchHit& hit) {
            const desc::ServiceDescription* advertised = service(hit.service);
            if (advertised == nullptr ||
                !desc::satisfies_constraints(advertised->profile, request)) {
                return true;
            }
            if (request.process.has_value() && advertised->process.has_value() &&
                !desc::conversation_compatible(*request.process,
                                               *advertised->process)) {
                return true;
            }
            return false;
        });
        if (!hits.empty()) {
            int best = hits.front().semantic_distance;
            for (const MatchHit& hit : hits) {
                best = std::min(best, hit.semantic_distance);
            }
            std::erase_if(hits, [best](const MatchHit& hit) {
                return hit.semantic_distance != best;
            });
        }
        result.per_capability.push_back(std::move(hits));
    }
    result.timing.match_ms = stopwatch.elapsed_ms();
    result.stats.concept_queries = oracle_.queries();
    lifetime_stats_.capability_matches += result.stats.capability_matches;
    return result;
}

QueryResult SemanticDirectory::query_resolved(
    const std::vector<desc::ResolvedCapability>& capabilities) {
    QueryResult result;
    Stopwatch stopwatch;
    result.per_capability.reserve(capabilities.size());
    for (const auto& cap : capabilities) {
        result.per_capability.push_back(dags_.query(cap, oracle_, result.stats));
    }
    result.timing.match_ms = stopwatch.elapsed_ms();
    result.stats.concept_queries = oracle_.queries();
    lifetime_stats_.capability_matches += result.stats.capability_matches;
    return result;
}

const desc::ServiceDescription* SemanticDirectory::service(ServiceId id) const {
    const auto it = services_.find(id);
    return it == services_.end() ? nullptr : &it->second;
}

void SemanticDirectory::rebuild_summary() {
    summary_.clear();
    for (const auto& [id, service] : services_) {
        const auto provided = desc::resolve_provided(service, kb_->registry());
        for (const auto& cap : provided) {
            summary_.insert_ontology_set(desc::ontology_uris(cap, kb_->registry()));
        }
    }
}

}  // namespace sariadne::directory
