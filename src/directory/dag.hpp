// CapabilityDag — one directed acyclic graph of related capabilities
// (§3.3). Vertices are *equivalence classes*: capabilities where Match
// holds both ways with semantic distance 0 share a vertex. A directed edge
// u → v means Match(u, v): u is more generic and can substitute v. Roots
// (no predecessors) are the most generic capabilities; the paper's query
// algorithm only probes roots and descends, and its insertion algorithm
// probes roots downward and leaves upward.
//
// Both algorithms rely on the transitivity of Match (provable from the
// transitivity of concept subsumption, see matching/match.hpp): if
// Match(v, C) fails, it fails for every successor of v, so whole
// sub-hierarchies are pruned without evaluation — that is where the "few
// semantic matches per request" of Figure 9 comes from.
//
// On top of the structural pruning, every vertex carries ancestor and
// descendant reachability bitsets (DESIGN.md §12), maintained exactly
// across insert/remove. They answer is_reachable(u, v) in O(1) and drive
// three things: transitivity-based probe pruning during classification and
// query (a failed Match dooms a whole cone of the DAG, counted as
// `reachability_prunes`), suppression of the transitively redundant edges
// the remove_service splice would otherwise accumulate under churn, and
// the strict redundant-edge invariant validate() now enforces.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "description/resolved.hpp"
#include "directory/types.hpp"
#include "matching/match.hpp"
#include "support/arena.hpp"
#include "support/dyn_bitset.hpp"
#include "support/flat_set.hpp"

namespace sariadne::directory {

using desc::ResolvedCapability;
using onto::OntologyIndex;

/// One advertised capability instance living in the DAG.
struct DagEntry {
    ResolvedCapability capability;
    ServiceId service = 0;
};

/// Allocation-free match hit: the name fields view bytes copied into the
/// query's scratch arena (pinned under the shard lock — the DagEntry
/// strings they mirror may die once the lock drops). A RawHit is only
/// valid until the owning arena's next reset; callers materialize into
/// MatchHit (caller-owned strings) before returning across the API.
struct RawHit {
    ServiceId service = 0;
    std::string_view service_name;
    std::string_view capability_name;
    int semantic_distance = 0;
};

using VertexId = std::uint32_t;
inline constexpr VertexId kNoVertex = 0xFFFFFFFFu;

/// A/B knobs threaded from SemanticDirectory down to every DAG it owns.
/// Only the probe-side use of the reachability bitsets is optional: the
/// bitsets themselves and the redundant-edge suppression they enable are
/// structural (a correctness fix), so they are always maintained.
struct DagTuning {
    /// Skip classification/query probes of vertices provably doomed by an
    /// earlier failed Match (transitivity), counting them as
    /// `MatchStats::reachability_prunes` instead.
    bool reachability_pruning = true;
};

/// Quick-reject aggregates of one capability role (inputs, outputs or
/// properties). The mask and concept count are always meaningful; the
/// interval fields are only meaningful when the owning MatchSummary carries
/// a nonzero code_tag (built from a valid CodeSignature) and are only
/// *comparable* between two summaries whose role concepts live in the same
/// single ontology (interval coordinates are per-table).
struct RoleSummary {
    std::uint64_t mask = 0;        ///< OR of 1 << (ontology % 64)
    std::uint32_t concepts = 0;    ///< number of concepts in the role
    std::int64_t sole_ontology = -1;  ///< the one ontology, or −1 if mixed/empty

    // Extremes over all interval occurrences of all role concepts.
    double occ_lo_min = 0.0;
    double occ_lo_max = 0.0;
    double occ_hi_min = 0.0;
    double occ_hi_max = 0.0;

    // Per-concept aggregates (min/max over concepts of per-concept
    // extremes) — the tight sides of the necessary containment conditions.
    double maxlo_min = 0.0;  ///< min over concepts of max occurrence lo
    double minhi_max = 0.0;  ///< max over concepts of min occurrence hi
    double minlo_max = 0.0;  ///< max over concepts of min occurrence lo
    double maxhi_min = 0.0;  ///< min over concepts of max occurrence hi
};

/// Per-capability quick-reject summary: one RoleSummary per Match clause
/// plus the whole-environment (global) tag of the CodeSignature the
/// interval fields were built from (0 = no signature; interval fields
/// unusable).
struct MatchSummary {
    RoleSummary inputs;
    RoleSummary outputs;
    RoleSummary properties;
    std::uint64_t code_tag = 0;
};

/// Builds the quick-reject summary of a resolved capability. Interval
/// fields are populated (and code_tag set) only when the capability carries
/// a valid CodeSignature.
MatchSummary make_match_summary(const ResolvedCapability& capability);

/// True iff Match(provider, requester) *provably* fails on summaries alone:
/// a required role is empty on the offering side, an ontology needed by one
/// side is absent from the other (mask test — always sound), or — when
/// `codes_fresh` and both sides of a clause draw from the same single
/// ontology — the interval bounding boxes rule out every containment pair.
/// Never rejects a pair that Match would accept.
bool quick_reject(const MatchSummary& provider, const MatchSummary& requester,
                  bool codes_fresh);

class CapabilityDag {
public:
    explicit CapabilityDag(FlatSet<OntologyIndex> signature,
                           DagTuning tuning = {})
        : signature_(std::move(signature)), tuning_(tuning) {}

    /// The ontology set indexing this DAG (§3.3 "graphs are indexed
    /// according to the ontologies being used in the capabilities").
    const FlatSet<OntologyIndex>& signature() const noexcept { return signature_; }

    /// Inserts an advertised capability, merging into an equivalent vertex
    /// when one exists, otherwise wiring the new vertex between its lowest
    /// matching ancestors and highest matched descendants.
    VertexId insert(DagEntry entry, matching::DistanceOracle& oracle,
                    MatchStats& stats);

    /// Removes every entry advertised by `service`; empty vertices are
    /// dropped and their parents reconnected to their children (skipping
    /// splice edges the surviving graph already implies). Returns the
    /// number of entries removed.
    std::size_t remove_service(ServiceId service);

    /// The paper's query algorithm: probe roots; on a match descend through
    /// successors collecting matching vertices; return the hits with the
    /// minimum semantic distance (all entries of the best vertices).
    std::vector<MatchHit> query(const ResolvedCapability& request,
                                matching::DistanceOracle& oracle,
                                MatchStats& stats) const;

    /// Same traversal, but returns the entries of *every* matching vertex
    /// (still pruning non-matching sub-hierarchies). Used when hits must
    /// additionally pass QoS/context constraints, so the closest admissible
    /// advertisement may not be the globally closest one.
    std::vector<MatchHit> query_all(const ResolvedCapability& request,
                                    matching::DistanceOracle& oracle,
                                    MatchStats& stats) const;

    /// The zero-allocation traversal behind both query flavors: identical
    /// probe order, pruning and stats to query_all, but every piece of
    /// scratch (visited map, BFS frontier, doom bitset, hit names) lives
    /// in `arena`, and hits append to the caller's arena-backed list as
    /// RawHits. Never resets the arena — the caller owns reset points.
    void query_all_into(const ResolvedCapability& request,
                        matching::DistanceOracle& oracle, MatchStats& stats,
                        support::Arena& arena,
                        support::ArenaVec<RawHit>& hits) const;

    std::vector<VertexId> root_ids() const;
    std::vector<VertexId> leaf_ids() const;

    std::size_t vertex_count() const noexcept { return live_vertices_; }
    std::size_t entry_count() const noexcept { return live_entries_; }

    bool empty() const noexcept { return live_entries_ == 0; }

    /// O(1): true iff a directed path `from` → … → `to` exists (a vertex
    /// reaches itself). Both ids must be live.
    bool is_reachable(VertexId from, VertexId to) const noexcept {
        return from == to || vertices_[from].desc.test(to);
    }

    /// Entries of one vertex (test access).
    const std::vector<DagEntry>& entries(VertexId vertex) const;
    const std::vector<VertexId>& parents(VertexId vertex) const;
    const std::vector<VertexId>& children(VertexId vertex) const;

    /// Structural invariant check for tests: every edge implies Match, no
    /// cycles, no self-edges, no transitively redundant edges, parent/child
    /// lists mirror each other, live counters agree with a full scan, and
    /// the reachability bitsets agree with per-vertex BFS ground truth.
    /// Returns true when all invariants hold.
    bool validate(matching::DistanceOracle& oracle) const;

private:
    struct Vertex {
        std::vector<DagEntry> entries;
        std::vector<VertexId> parents;
        std::vector<VertexId> children;
        /// Exact transitive closure, indexed by VertexId (slot, so dead
        /// slots own a bit too — always clear): anc holds every vertex with
        /// a path *to* this one, desc every vertex with a path *from* it.
        support::DynBitset anc;
        support::DynBitset desc;
        MatchSummary summary;  ///< of the representative (entries.front())
        bool alive = true;
    };

    const ResolvedCapability& representative(VertexId vertex) const {
        return vertices_[vertex].entries.front().capability;
    }

    void add_edge(VertexId from, VertexId to);
    void remove_edge(VertexId from, VertexId to);

    /// Recomputes every live vertex's anc/desc from the edge lists (one
    /// topological pass each way). Dead slots come out empty.
    void rebuild_reachability();

    /// True iff the graph implies `parent` → `child` without the direct
    /// edge, i.e. some other child of `parent` reaches `child`. Only valid
    /// while the bitsets are exact for the current edge set.
    bool edge_redundant(VertexId parent, VertexId child) const;

    FlatSet<OntologyIndex> signature_;
    DagTuning tuning_;
    std::vector<Vertex> vertices_;
    /// Slots of dead vertices, reused by the next insert. Without reuse a
    /// republish-heavy workload (remove + insert per refresh) grows
    /// vertices_ by one dead slot per cycle, and every full-vector walk —
    /// insert's root/leaf scans, remove_service, query_all's visited
    /// bitmap — degrades linearly with publish *history* instead of live
    /// directory size.
    std::vector<VertexId> free_;
    std::size_t live_vertices_ = 0;
    std::size_t live_entries_ = 0;
};

}  // namespace sariadne::directory
