// SyntacticDirectory — the original Ariadne baseline (Figure 10): services
// are advertised as WSDL documents kept in their textual form; answering a
// request re-parses every stored document and checks exact syntactic
// conformance of operation signatures. Response time therefore grows
// linearly with the number of cached services — the behaviour the paper
// contrasts with S-Ariadne's near-constant classified/encoded matching.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "description/wsdl.hpp"
#include "directory/types.hpp"

namespace sariadne::directory {

class SyntacticDirectory {
public:
    SyntacticDirectory() = default;

    /// Stores the raw WSDL document (validated by a parse).
    ServiceId publish_xml(std::string xml_text);

    /// Matches a WSDL request against every stored document, re-parsing
    /// each — Ariadne keeps descriptions as documents and compares them
    /// syntactically, which is precisely its measured cost.
    std::vector<MatchHit> query(const desc::WsdlDescription& request,
                                QueryTiming& timing);

    std::vector<MatchHit> query_xml(std::string_view request_xml,
                                    QueryTiming& timing);

    std::size_t service_count() const noexcept { return documents_.size(); }

private:
    struct StoredService {
        ServiceId id;
        std::string service_name;  ///< for O(1) re-advertisement dedup
        std::string document;
    };

    std::vector<StoredService> documents_;
    ServiceId next_id_ = 1;
};

}  // namespace sariadne::directory
