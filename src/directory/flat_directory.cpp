#include "directory/flat_directory.hpp"

#include <limits>

#include "support/stopwatch.hpp"

namespace sariadne::directory {

PublishReceipt FlatDirectory::publish_xml(std::string_view xml_text) {
    Stopwatch stopwatch;
    const desc::ServiceDescription service = desc::parse_service(xml_text);
    PublishReceipt receipt;
    receipt.timing.parse_ms = stopwatch.elapsed_ms();
    stopwatch.restart();
    receipt.id = publish(service);
    receipt.timing.insert_ms = stopwatch.elapsed_ms();
    return receipt;
}

ServiceId FlatDirectory::publish(const desc::ServiceDescription& service) {
    const ServiceId id = next_id_++;
    for (auto& cap : desc::resolve_provided(service, *kb_)) {
        entries_.push_back(Entry{std::move(cap), id});
    }
    return id;
}

std::vector<std::vector<MatchHit>> FlatDirectory::query(
    const std::vector<desc::ResolvedCapability>& request, MatchStats& stats,
    QueryTiming& timing) {
    Stopwatch stopwatch;
    std::vector<std::vector<MatchHit>> result;
    result.reserve(request.size());
    for (const auto& requested : request) {
        // Sign unsigned request capabilities once so the flat scan measures
        // the directory organization, not a different matching path than
        // SemanticDirectory's (Figure 9 compares organizations).
        desc::ResolvedCapability signed_copy;
        const desc::ResolvedCapability* wanted_ptr = &requested;
        if (!requested.signature.valid) {
            signed_copy = requested;
            desc::attach_code_signature(signed_copy, *kb_);
            wanted_ptr = &signed_copy;
        }
        const desc::ResolvedCapability& wanted = *wanted_ptr;
        int best = std::numeric_limits<int>::max();
        std::vector<MatchHit> hits;
        for (const Entry& entry : entries_) {
            ++stats.capability_matches;
            const auto outcome =
                matching::match_capability(entry.capability, wanted, oracle_);
            if (!outcome.matched) continue;
            if (outcome.semantic_distance < best) {
                best = outcome.semantic_distance;
                hits.clear();
            }
            if (outcome.semantic_distance == best) {
                hits.push_back(MatchHit{entry.service,
                                        entry.capability.service_name,
                                        entry.capability.name, best});
            }
        }
        result.push_back(std::move(hits));
    }
    timing.match_ms = stopwatch.elapsed_ms();
    stats.concept_queries = oracle_.queries();
    return result;
}

}  // namespace sariadne::directory
