// Directory state transfer. The paper's Figure 7 scenario — "a directory
// leaves the network and ... another one is elected and has to host the
// set of service descriptions available in its vicinity" — needs the
// cached descriptions to move between directories. A state document is a
// single XML bundle of service descriptions:
//
//   <directory-state services="N">
//     <service .../>  ...
//   </directory-state>
//
// Import re-parses and re-classifies each description (that is precisely
// the cost Figure 7 measures). Export/import are also what the protocol's
// graceful handover ships when a directory resigns.
#pragma once

#include <string>
#include <string_view>

#include "directory/semantic_directory.hpp"

namespace sariadne::directory {

/// Serializes every cached service description of `directory` into one
/// state document.
std::string export_state(const SemanticDirectory& directory);

/// Imports a state document into `directory` (existing content is kept;
/// same-name services are replaced per re-advertisement semantics).
/// Returns the number of services imported.
std::size_t import_state(SemanticDirectory& directory,
                         std::string_view state_xml);

}  // namespace sariadne::directory
