// SemanticDirectory — the S-Ariadne local directory (§3.3, §4): caches
// Amigo-S service descriptions, classifies their provided capabilities
// into ontology-indexed capability DAGs at *publish* time (parse once,
// resolve once, no reasoning on the query path), and answers requests by
// probing DAG roots with interval-code matching. Also maintains the
// Bloom-filter summary of its content that the distributed protocol
// exchanges between directories.
//
// Thread safety: publish / publish_xml / remove / query* /
// query_capability and the introspection counters may be called from any
// number of threads concurrently. The capability-DAG index is sharded
// with per-shard reader–writer locks (see DagIndex), so queries — pure
// reads over interval codes — run fully in parallel and only contend
// with publishes touching the same shard; the service table and the
// Bloom summary carry their own locks. Two operations are excluded from
// the guarantee and require quiescence: registering/upgrading ontologies
// in the shared KnowledgeBase, and retaining the pointer returned by
// service() across a concurrent remove/re-publish of that service.
#pragma once

#include <atomic>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "description/amigos_io.hpp"
#include "description/resolved.hpp"
#include "directory/dag_index.hpp"
#include "directory/types.hpp"
#include "reasoner/knowledge_base.hpp"
#include "matching/oracles.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "summary/interval_summary.hpp"
#include "support/lock_rank.hpp"

namespace sariadne::directory {

/// Result of a request against one directory.
struct QueryResult {
    /// Hits per requested capability, in request order (closest first;
    /// with default QueryOptions, only the minimal-distance tier). An
    /// empty inner vector means that capability could not be satisfied.
    std::vector<std::vector<MatchHit>> per_capability;
    MatchStats stats;
    QueryTiming timing;

    bool fully_satisfied() const noexcept {
        for (const auto& hits : per_capability) {
            if (hits.empty()) return false;
        }
        return !per_capability.empty();
    }
};

/// Which routing summary the directory maintains. The Bloom filter is
/// always kept (it is the default wire format and the state-transfer
/// snapshot); selecting the interval backend additionally maintains the
/// exact concept-code summary that the protocol pushes instead.
struct SummaryConfig {
    summary::SummaryBackend backend = summary::SummaryBackend::kBloom;
    bloom::BloomParams bloom{};

    SummaryConfig() = default;
    /// Implicit from BloomParams so legacy `SemanticDirectory(kb, params)`
    /// call sites keep compiling (and keep the Bloom backend).
    SummaryConfig(bloom::BloomParams bloom_params)  // NOLINT(runtime/explicit)
        : bloom(bloom_params) {}
    SummaryConfig(summary::SummaryBackend backend_,
                  bloom::BloomParams bloom_params = {})
        : backend(backend_), bloom(bloom_params) {}
};

class SemanticDirectory {
public:
    /// The directory consults (and shares) a knowledge base of ontologies;
    /// the caller keeps ownership (several directories of one simulated
    /// node set typically share one KB). When `metrics` is non-null the
    /// directory reports `directory.*` phase latencies and work counters
    /// into it; several directories may share one registry (their counts
    /// aggregate). The registry must outlive the directory.
    explicit SemanticDirectory(encoding::KnowledgeBase& kb,
                               SummaryConfig summary_config = {},
                               obs::MetricsRegistry* metrics = nullptr,
                               DagTuning tuning = {})
        : kb_(&kb),
          dags_(DagIndex::kDefaultShardCount, tuning),
          summary_(summary_config.bloom),
          summary_backend_(summary_config.backend) {
        if (metrics != nullptr) {
            metrics_.registry = metrics;
            metrics_.publishes = &metrics->counter(obs::names::kDirectoryPublishes);
            metrics_.removals = &metrics->counter(obs::names::kDirectoryRemovals);
            metrics_.queries = &metrics->counter(obs::names::kDirectoryQueries);
            metrics_.summary_rebuilds =
                &metrics->counter(obs::names::kDirectorySummaryRebuilds);
            metrics_.capability_matches =
                &metrics->counter(obs::names::kDirectoryCapabilityMatches);
            metrics_.concept_queries =
                &metrics->counter(obs::names::kDirectoryConceptQueries);
            metrics_.dags_visited = &metrics->counter(obs::names::kDirectoryDagsVisited);
            metrics_.dags_pruned = &metrics->counter(obs::names::kDirectoryDagsPruned);
            metrics_.quick_rejects = &metrics->counter(obs::names::kMatchingQuickRejects);
            metrics_.reachability_prunes =
                &metrics->counter(obs::names::kMatchingReachabilityPrunes);
            metrics_.query_allocs =
                &metrics->counter(obs::names::kMatchingQueryAllocs);
            metrics_.publish_batches =
                &metrics->counter(obs::names::kDirectoryPublishBatches);
            metrics_.services = &metrics->gauge(obs::names::kDirectoryServices);
            metrics_.publish_parse_ms =
                &metrics->histogram(obs::names::kDirectoryPublishParseMs);
            metrics_.publish_insert_ms =
                &metrics->histogram(obs::names::kDirectoryPublishInsertMs);
            metrics_.query_parse_ms =
                &metrics->histogram(obs::names::kDirectoryQueryParseMs);
            metrics_.query_match_ms =
                &metrics->histogram(obs::names::kDirectoryQueryMatchMs);
            dags_.set_contention_counter(
                &metrics->counter(obs::names::kDirectoryShardContention));
        }
    }

    SemanticDirectory(const SemanticDirectory&) = delete;
    SemanticDirectory& operator=(const SemanticDirectory&) = delete;

    // --- publish --------------------------------------------------------
    /// Parses and publishes an Amigo-S service description document.
    /// Returns the service handle and the Figure 7/8 timing breakdown.
    PublishReceipt publish_xml(std::string_view xml_text);

    /// Publishes an already-parsed description (parse_ms stays 0).
    PublishReceipt publish(desc::ServiceDescription service);

    /// Publishes a whole batch in one pass: every description is resolved
    /// and version-checked up front (a rejected one throws before any
    /// shared state changes), the service table is updated in a single
    /// critical section, the capability DAGs take one shard lock per shard
    /// run (DagIndex::insert_batch), and the Bloom summary is refreshed at
    /// most once for the whole batch — additively unless a replaced
    /// service held the last reference to one of its URI sets, one
    /// rebuild_summary() then — instead of once per
    /// publish. Receipts come back in batch order; insert_ms is the batch
    /// cost amortized per service. Later duplicates of a name inside the
    /// batch replace earlier ones, exactly as sequential publishes would.
    std::vector<PublishReceipt> publish_batch(
        std::vector<desc::ServiceDescription> batch);

    /// Withdraws a service (departure from the vicinity). Returns false if
    /// the handle is unknown.
    bool remove(ServiceId service);

    // --- query ----------------------------------------------------------
    /// Parses a request document and matches it (timing includes parse).
    QueryResult query_xml(std::string_view xml_text,
                          const QueryOptions& options = {}) const;

    /// Matches a request. When the request carries QoS/context
    /// constraints, hits are additionally filtered by the advertised
    /// service profiles (Amigo-S QoS-/context-awareness), and the best
    /// *admissible* distances win per capability.
    QueryResult query(const desc::ServiceRequest& request,
                      const QueryOptions& options = {}) const;

    /// Matches pre-resolved capabilities (protocol-internal fast path).
    QueryResult query_resolved(
        const std::vector<desc::ResolvedCapability>& capabilities,
        const QueryOptions& options = {}) const;

    /// Reuse variant of query_resolved: fills `out` in place, recycling
    /// its vectors and strings, so a caller that keeps one QueryResult
    /// across a request burst performs no steady-state heap allocations
    /// (the per-request scratch lives in the thread's arena; results
    /// materialize into `out`'s retained capacity). `out` is fully
    /// overwritten — previous hits, stats and timing do not leak through.
    void query_resolved(
        const std::vector<desc::ResolvedCapability>& capabilities,
        const QueryOptions& options, QueryResult& out) const;

    /// Matches a request whose capabilities were already resolved (the
    /// daemon's prepared-request path: the protocol memoizes parse +
    /// resolve per document and replays this with the cached resolution,
    /// amortizing signature resolution across a pipelined burst).
    /// `request` still supplies the QoS/context/conversation constraints;
    /// `resolved` must be its capabilities resolved against this
    /// directory's knowledge base.
    void query_prepared(const desc::ServiceRequest& request,
                        const std::vector<desc::ResolvedCapability>& resolved,
                        const QueryOptions& options, QueryResult& out) const;

    /// Matches one resolved capability — the unit the parallel query path
    /// of DiscoveryEngine fans across its worker pool. `constraints`, when
    /// non-null, applies that request's QoS/context/conversation filters.
    /// Work counters are accumulated into `stats`. Thread-safe.
    std::vector<MatchHit> query_capability(
        const desc::ResolvedCapability& capability,
        const desc::ServiceRequest* constraints, const QueryOptions& options,
        MatchStats& stats) const;

    /// Reuse variant: fills `out` (cleared first) instead of returning a
    /// fresh vector, recycling its element strings.
    void query_capability_into(const desc::ResolvedCapability& capability,
                               const desc::ServiceRequest* constraints,
                               const QueryOptions& options, MatchStats& stats,
                               std::vector<MatchHit>& out) const;

    // --- introspection ---------------------------------------------------
    std::size_t service_count() const;
    std::size_t capability_count() const { return dags_.entry_count(); }
    std::size_t dag_count() const { return dags_.dag_count(); }
    const DagIndex& dags() const noexcept { return dags_; }

    /// Pointer into the service table; stays valid only until the service
    /// is removed or replaced by a re-advertisement. Quiescent use only —
    /// concurrent readers must copy what they need via grounding() (or
    /// their own locked accessor) instead of retaining this pointer.
    const desc::ServiceDescription* service(ServiceId id) const;

    /// Copy of a service's grounding taken under the reader lock — the
    /// race-free way to materialize invocation details for a hit while
    /// publishers may be replacing the service.
    std::optional<desc::Grounding> grounding(ServiceId id) const;

    /// One past the largest handle ever issued (state-transfer iteration).
    ServiceId next_service_id() const noexcept {
        return next_id_.load(std::memory_order_acquire);
    }

    /// Snapshot of the Bloom summary of the ontology sets used by cached
    /// capabilities (§4).
    bloom::BloomFilter summary() const;

    /// Which summary backend this directory maintains for routing.
    summary::SummaryBackend summary_backend() const noexcept {
        return summary_backend_;
    }

    /// Snapshot of the exact concept-code summary (no refcounts). Empty
    /// unless the interval backend is selected.
    summary::IntervalSummary interval_summary() const;

    /// Content version of the exact summary — the protocol's cheap
    /// "coverage changed since last push" probe. 0 under the Bloom backend.
    std::uint64_t interval_summary_version() const;

    /// Distinct (ontology, role, code) bits in the exact summary —
    /// drain-to-zero churn assertions in tests.
    std::size_t interval_code_count() const;

    /// Live keys in the Bloom URI-set refcount map. Churn regression tests
    /// pin this to baseline: zero-count keys must be erased on release or
    /// long remove/republish runs grow the map unboundedly.
    std::size_t summary_refcount_entries() const;

    /// Rebuilds the summary from live content (after removals — Bloom
    /// filters do not support deletion). Removal paths call this only when
    /// a departing service held the last reference to one of its URI sets;
    /// otherwise the filter provably did not change and the O(services)
    /// walk is skipped (see summary_refcounts_).
    void rebuild_summary();

    /// Snapshot of the cumulative match statistics across all operations.
    MatchStats lifetime_stats() const noexcept;

    encoding::KnowledgeBase& knowledge_base() noexcept { return *kb_; }

private:
    /// The per-capability matching kernel behind every query entry point:
    /// one arena-scratch DAG traversal, then max-distance compaction,
    /// constraint filtering and top-k / best-tier selection on the RawHits
    /// before materializing into `out` (capacity-recycling assign).
    void match_one_into(const desc::ResolvedCapability& capability,
                        const desc::ServiceRequest* constraints,
                        const QueryOptions& options,
                        matching::DistanceOracle& oracle, MatchStats& stats,
                        std::vector<MatchHit>& out) const;

    /// Shared body of the query_* entry points: matches every capability
    /// into `out` (recycled), applies require_all, stamps timing/metrics.
    void run_query(const desc::ServiceRequest* constraints,
                   const std::vector<desc::ResolvedCapability>& resolved,
                   const QueryOptions& options, QueryResult& out) const;

    void accumulate_lifetime(const MatchStats& stats) const noexcept;
    void apply_require_all(QueryResult& result,
                           const QueryOptions& options) const;

    /// rebuild_summary() with summary_mutex_ already held by the caller
    /// (takes services_mutex_ shared internally).
    void rebuild_summary_locked();
    /// Counts URI sets into / out of summary_refcounts_. Callers hold
    /// summary_mutex_. release returns true when some set lost its last
    /// holder — the Bloom summary now over-approximates and needs a
    /// rebuild before the next push.
    void retain_uri_sets_locked(
        const std::vector<std::vector<std::string>>& sets);
    bool release_uri_sets_locked(
        const std::vector<std::vector<std::string>>& sets);

    /// True when some projection was produced under a different code-table
    /// generation than the exact summary's entries — the env-tag
    /// invalidation trigger. Caller holds summary_mutex_.
    bool exact_tag_conflict_locked(
        const std::vector<summary::CapabilityProjection>& projections) const;

    /// Re-resolves every cached service against the current knowledge base,
    /// refreshes the cached projections, and rebuilds the exact summary
    /// from scratch (env-tag invalidation path). Caller holds
    /// summary_mutex_; takes services_mutex_ unique internally.
    void rebuild_interval_summary_locked();

    /// Cached registry handles; all null when uninstrumented.
    struct Metrics {
        obs::MetricsRegistry* registry = nullptr;
        obs::Counter* publishes = nullptr;
        obs::Counter* removals = nullptr;
        obs::Counter* queries = nullptr;
        obs::Counter* summary_rebuilds = nullptr;
        obs::Counter* capability_matches = nullptr;
        obs::Counter* concept_queries = nullptr;
        obs::Counter* dags_visited = nullptr;
        obs::Counter* dags_pruned = nullptr;
        obs::Counter* quick_rejects = nullptr;
        obs::Counter* reachability_prunes = nullptr;
        obs::Counter* query_allocs = nullptr;
        obs::Counter* publish_batches = nullptr;
        obs::Gauge* services = nullptr;
        obs::Histogram* publish_parse_ms = nullptr;
        obs::Histogram* publish_insert_ms = nullptr;
        obs::Histogram* query_parse_ms = nullptr;
        obs::Histogram* query_match_ms = nullptr;
    };

    encoding::KnowledgeBase* kb_;
    Metrics metrics_;
    DagIndex dags_;

    /// A cached description plus what publish resolved from it: the
    /// ontology-URI set of each provided capability (so rebuild_summary()
    /// re-feeds the Bloom filter without re-resolving — it used to be
    /// O(services × resolve)) and the ontology signatures the capabilities
    /// were classified under (so a removal only visits the DAG shards the
    /// service actually touched instead of the whole index).
    struct StoredService {
        desc::ServiceDescription description;
        std::vector<std::vector<std::string>> summary_uri_sets;
        std::vector<FlatSet<OntologyIndex>> signatures;
        /// Per-capability provided-side code projections (interval backend
        /// only) — lets remove/replace release exact-summary codes without
        /// re-resolving the description.
        std::vector<summary::CapabilityProjection> projections;
    };

    /// Guards services_ and by_name_. Ranked above summary:
    /// rebuild_summary holds the summary lock while it walks the table
    /// under this one (shared).
    mutable support::RankedSharedMutex services_mutex_{
        support::LockRank::kDirectoryServices};
    std::unordered_map<ServiceId, StoredService> services_;
    /// Re-advertisement index: a service is identified by name, and the
    /// replacement lookup used to be a linear scan of services_ per
    /// publish — quadratic across a bulk load.
    std::unordered_map<std::string, ServiceId> by_name_;
    std::atomic<ServiceId> next_id_{1};

    /// Guards summary_; the outermost directory lock (see services_mutex_).
    mutable support::RankedMutex summary_mutex_{
        support::LockRank::kDirectorySummary};
    bloom::BloomFilter summary_;
    /// How many live services feed each distinct capability URI set into
    /// the summary (keyed by the set's joined form; guarded by
    /// summary_mutex_). Under churn the same ontology sets repeat across
    /// thousands of services, so most removals release no last reference
    /// and keep the filter as-is instead of paying the O(services)
    /// rebuild.
    std::unordered_map<std::string, std::uint64_t> summary_refcounts_;
    /// Exact concept-code summary (interval backend only; guarded by
    /// summary_mutex_). Carries its own per-(ontology, role, code)
    /// refcounts, so removals release exactly and never rebuild unless a
    /// code-table generation change invalidates the projections.
    summary::IntervalSummary exact_summary_;
    const summary::SummaryBackend summary_backend_;

    /// Lifetime counters, relaxed — totals are exact once writers quiesce.
    mutable std::atomic<std::uint64_t> lifetime_capability_matches_{0};
    mutable std::atomic<std::uint64_t> lifetime_concept_queries_{0};
    mutable std::atomic<std::uint64_t> lifetime_dags_visited_{0};
    mutable std::atomic<std::uint64_t> lifetime_dags_pruned_{0};
    mutable std::atomic<std::uint64_t> lifetime_quick_rejects_{0};
    mutable std::atomic<std::uint64_t> lifetime_reachability_prunes_{0};
    mutable std::atomic<std::uint64_t> lifetime_scratch_allocs_{0};
};

}  // namespace sariadne::directory
