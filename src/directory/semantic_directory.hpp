// SemanticDirectory — the S-Ariadne local directory (§3.3, §4): caches
// Amigo-S service descriptions, classifies their provided capabilities
// into ontology-indexed capability DAGs at *publish* time (parse once,
// resolve once, no reasoning on the query path), and answers requests by
// probing DAG roots with interval-code matching. Also maintains the
// Bloom-filter summary of its content that the distributed protocol
// exchanges between directories.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "description/amigos_io.hpp"
#include "description/resolved.hpp"
#include "directory/dag_index.hpp"
#include "directory/types.hpp"
#include "encoding/knowledge_base.hpp"
#include "matching/oracles.hpp"

namespace sariadne::directory {

/// Result of a request against one directory.
struct QueryResult {
    /// Best hits per requested capability, in request order. An empty
    /// inner vector means that capability could not be satisfied.
    std::vector<std::vector<MatchHit>> per_capability;
    MatchStats stats;
    QueryTiming timing;

    bool fully_satisfied() const noexcept {
        for (const auto& hits : per_capability) {
            if (hits.empty()) return false;
        }
        return !per_capability.empty();
    }
};

class SemanticDirectory {
public:
    /// The directory consults (and shares) a knowledge base of ontologies;
    /// the caller keeps ownership (several directories of one simulated
    /// node set typically share one KB).
    explicit SemanticDirectory(encoding::KnowledgeBase& kb,
                               bloom::BloomParams bloom_params = {})
        : kb_(&kb), oracle_(kb), summary_(bloom_params) {}

    // --- publish --------------------------------------------------------
    /// Parses and publishes an Amigo-S service description document.
    /// Returns the service handle and the Figure 7/8 timing breakdown.
    std::pair<ServiceId, PublishTiming> publish_xml(std::string_view xml_text);

    /// Publishes an already-parsed description (no parse timing).
    ServiceId publish(desc::ServiceDescription service, PublishTiming* timing = nullptr);

    /// Withdraws a service (departure from the vicinity). Returns false if
    /// the handle is unknown.
    bool remove(ServiceId service);

    // --- query ----------------------------------------------------------
    /// Parses a request document and matches it (timing includes parse).
    QueryResult query_xml(std::string_view xml_text);

    /// Matches a request. When the request carries QoS/context
    /// constraints, hits are additionally filtered by the advertised
    /// service profiles (Amigo-S QoS-/context-awareness), and the best
    /// *admissible* distance wins per capability.
    QueryResult query(const desc::ServiceRequest& request);

    /// Matches pre-resolved capabilities (protocol-internal fast path).
    QueryResult query_resolved(
        const std::vector<desc::ResolvedCapability>& capabilities);

    // --- introspection ---------------------------------------------------
    std::size_t service_count() const noexcept { return services_.size(); }
    std::size_t capability_count() const noexcept { return dags_.entry_count(); }
    std::size_t dag_count() const noexcept { return dags_.dag_count(); }
    const DagIndex& dags() const noexcept { return dags_; }

    const desc::ServiceDescription* service(ServiceId id) const;

    /// One past the largest handle ever issued (state-transfer iteration).
    ServiceId next_service_id() const noexcept { return next_id_; }

    /// Bloom summary of the ontology sets used by cached capabilities (§4).
    const bloom::BloomFilter& summary() const noexcept { return summary_; }

    /// Rebuilds the summary from live content (after removals — Bloom
    /// filters do not support deletion).
    void rebuild_summary();

    /// Cumulative match statistics across all queries.
    const MatchStats& lifetime_stats() const noexcept { return lifetime_stats_; }

    encoding::KnowledgeBase& knowledge_base() noexcept { return *kb_; }

private:
    encoding::KnowledgeBase* kb_;
    matching::EncodedOracle oracle_;
    DagIndex dags_;
    std::unordered_map<ServiceId, desc::ServiceDescription> services_;
    ServiceId next_id_ = 1;
    bloom::BloomFilter summary_;
    MatchStats lifetime_stats_;
};

}  // namespace sariadne::directory
