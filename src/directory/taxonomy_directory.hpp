// TaxonomyDirectory — the annotated-taxonomy baseline in the style of
// Srinivasan, Paolucci & Sycara's OWL-S/UDDI matcher ([13] in the paper,
// discussed in §3.1). Publishing pre-computes, for every concept of every
// classified ontology, which advertisements would match a request pointing
// at that concept (and at what degree/distance): the concept taxonomy is
// annotated with per-concept advertisement lists for outputs and inputs.
// Publishing therefore walks concept neighbourhoods (the measured ~7x
// publish overhead), while queries reduce to list lookups + intersections
// — milliseconds, no reasoning. Used by the ablation bench to compare the
// paper's DAG classification against this alternative design point.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "description/resolved.hpp"
#include "directory/types.hpp"
#include "reasoner/knowledge_base.hpp"

namespace sariadne::directory {

class TaxonomyDirectory {
public:
    explicit TaxonomyDirectory(encoding::KnowledgeBase& kb) : kb_(&kb) {}

    /// Annotates the taxonomy with the service's provided capabilities.
    /// Returns the publish work done (concept annotations written).
    std::size_t publish(const desc::ServiceDescription& service);

    /// Full publish pipeline from a document: parse + resolve + annotate.
    std::size_t publish_xml(std::string_view xml_text);

    /// Answers one requested capability via annotation-list intersection.
    std::vector<MatchHit> query(const desc::ResolvedCapability& request,
                                MatchStats& stats);

    std::size_t capability_count() const noexcept {
        return static_cast<std::size_t>(next_entry_);
    }

private:
    struct Annotation {
        std::uint32_t entry;  ///< advertised capability index
        int distance;         ///< subsumption level distance to the concept
    };

    struct StoredCapability {
        desc::ResolvedCapability capability;
        ServiceId service;
    };

    // Per-concept advertisement lists. Key: (ontology, concept).
    using AnnotationMap =
        std::unordered_map<onto::ConceptRef, std::vector<Annotation>>;

    encoding::KnowledgeBase* kb_;
    AnnotationMap output_lists_;    ///< request output concept -> candidates
    AnnotationMap input_lists_;     ///< request input concept  -> candidates
    AnnotationMap property_lists_;  ///< request property concept -> candidates
    std::vector<StoredCapability> entries_;
    std::uint32_t next_entry_ = 0;
    ServiceId next_service_ = 1;
};

}  // namespace sariadne::directory
