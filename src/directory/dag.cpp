#include "directory/dag.hpp"

#include <algorithm>
#include <cstring>
#include <queue>

#include "support/arena.hpp"
#include "support/contracts.hpp"

namespace sariadne::directory {

namespace {

bool contains(const std::vector<VertexId>& items, VertexId value) {
    return std::find(items.begin(), items.end(), value) != items.end();
}

void erase_value(std::vector<VertexId>& items, VertexId value) {
    items.erase(std::remove(items.begin(), items.end(), value), items.end());
}

/// FIFO over arena storage — the BFS frontier of classification and query
/// traversals. Pops advance a head index instead of shifting elements; the
/// backing ArenaVec is recycled wholesale at the arena's next reset.
struct ArenaQueue {
    explicit ArenaQueue(support::Arena& arena) : items(arena) {}
    support::ArenaVec<VertexId> items;
    std::size_t head = 0;

    bool empty() const noexcept { return head == items.size(); }
    void push(VertexId v) { items.push_back(v); }
    VertexId pop() noexcept { return items[head++]; }
    void restart() noexcept {
        items.clear();
        head = 0;
    }
};

RoleSummary make_role_summary(const std::vector<onto::ConceptRef>& role,
                              const std::vector<desc::CodedConceptSpan>& spans,
                              const std::vector<encoding::CodedInterval>& intervals,
                              bool with_geometry) {
    RoleSummary s;
    s.concepts = static_cast<std::uint32_t>(role.size());
    for (const onto::ConceptRef ref : role) {
        s.mask |= std::uint64_t{1} << (ref.ontology & 63u);
        if (s.sole_ontology == -1) {
            s.sole_ontology = static_cast<std::int64_t>(ref.ontology);
        } else if (s.sole_ontology != static_cast<std::int64_t>(ref.ontology)) {
            s.sole_ontology = -2;  // mixed
        }
    }
    if (s.sole_ontology == -2 || role.empty()) s.sole_ontology = -1;
    if (!with_geometry || role.empty()) return s;

    bool first = true;
    for (const desc::CodedConceptSpan& span : spans) {
        double c_lo_min = 0.0, c_lo_max = 0.0, c_hi_min = 0.0, c_hi_max = 0.0;
        for (std::uint32_t k = 0; k < span.count; ++k) {
            const encoding::Interval& occ = intervals[span.begin + k].interval;
            if (k == 0) {
                c_lo_min = c_lo_max = occ.lo;
                c_hi_min = c_hi_max = occ.hi;
            } else {
                c_lo_min = std::min(c_lo_min, occ.lo);
                c_lo_max = std::max(c_lo_max, occ.lo);
                c_hi_min = std::min(c_hi_min, occ.hi);
                c_hi_max = std::max(c_hi_max, occ.hi);
            }
        }
        if (first) {
            s.occ_lo_min = c_lo_min;
            s.occ_lo_max = c_lo_max;
            s.occ_hi_min = c_hi_min;
            s.occ_hi_max = c_hi_max;
            s.maxlo_min = c_lo_max;
            s.minhi_max = c_hi_min;
            s.minlo_max = c_lo_min;
            s.maxhi_min = c_hi_max;
            first = false;
        } else {
            s.occ_lo_min = std::min(s.occ_lo_min, c_lo_min);
            s.occ_lo_max = std::max(s.occ_lo_max, c_lo_max);
            s.occ_hi_min = std::min(s.occ_hi_min, c_hi_min);
            s.occ_hi_max = std::max(s.occ_hi_max, c_hi_max);
            s.maxlo_min = std::min(s.maxlo_min, c_lo_max);
            s.minhi_max = std::max(s.minhi_max, c_hi_min);
            s.minlo_max = std::max(s.minlo_max, c_lo_min);
            s.maxhi_min = std::min(s.maxhi_min, c_hi_max);
        }
    }
    return s;
}

}  // namespace

MatchSummary make_match_summary(const ResolvedCapability& capability) {
    const desc::CodeSignature& sig = capability.signature;
    const bool geometry =
        sig.valid && sig.global_tag != 0 &&
        sig.inputs.size() == capability.inputs.size() &&
        sig.outputs.size() == capability.outputs.size() &&
        sig.properties.size() == capability.properties.size();
    MatchSummary m;
    m.inputs = make_role_summary(capability.inputs, sig.inputs, sig.intervals,
                                 geometry);
    m.outputs = make_role_summary(capability.outputs, sig.outputs,
                                  sig.intervals, geometry);
    m.properties = make_role_summary(capability.properties, sig.properties,
                                     sig.intervals, geometry);
    m.code_tag = geometry ? sig.global_tag : 0;
    return m;
}

bool quick_reject(const MatchSummary& provider, const MatchSummary& requester,
                  bool codes_fresh) {
    // Emptiness: a clause that expects concepts fails outright when the
    // offering side has none (no oracle call could ever find a partner).
    if (provider.inputs.concepts > 0 && requester.inputs.concepts == 0) {
        return true;
    }
    if (requester.outputs.concepts > 0 && provider.outputs.concepts == 0) {
        return true;
    }
    if (requester.properties.concepts > 0 && provider.properties.concepts == 0) {
        return true;
    }

    // Masks: every expected concept needs a partner in its own ontology
    // (cross-ontology d() is NULL for every oracle), so an ontology bit set
    // on the expecting side but absent from the offering side is fatal.
    // Sound regardless of code versions.
    if ((provider.inputs.mask & ~requester.inputs.mask) != 0) return true;
    if ((requester.outputs.mask & ~provider.outputs.mask) != 0) return true;
    if ((requester.properties.mask & ~provider.properties.mask) != 0) {
        return true;
    }

    if (!codes_fresh) return false;

    // Geometry: containment op ⊇ or needs op.lo <= or.lo and or.hi <= op.hi.
    // Only comparable when both sides of the clause draw from the same
    // single ontology (interval coordinates are per-table).
    //
    // Provider-expects clause (inputs): every provider concept must contain
    // some requester occurrence, so even the provider concept with the
    // largest minimum-lo (minlo_max) needs a requester occurrence starting
    // at or after it, and the one with the smallest maximum-hi (maxhi_min)
    // needs a requester occurrence ending at or before it.
    const auto reject_provider_expects = [](const RoleSummary& p,
                                            const RoleSummary& r) {
        if (p.concepts == 0 || r.concepts == 0) return false;
        if (p.sole_ontology < 0 || p.sole_ontology != r.sole_ontology) {
            return false;
        }
        return p.minlo_max > r.occ_lo_max || p.maxhi_min < r.occ_hi_min;
    };
    // Requester-expects clauses (outputs, properties): every requester
    // concept must be contained in some provider occurrence — dually, the
    // requester concept whose occurrences start earliest (maxlo_min) needs
    // a provider occurrence starting at or before it, and the one ending
    // latest (minhi_max) needs a provider occurrence ending at or after it.
    const auto reject_requester_expects = [](const RoleSummary& r,
                                             const RoleSummary& p) {
        if (p.concepts == 0 || r.concepts == 0) return false;
        if (p.sole_ontology < 0 || p.sole_ontology != r.sole_ontology) {
            return false;
        }
        return r.maxlo_min < p.occ_lo_min || r.minhi_max > p.occ_hi_max;
    };
    if (reject_provider_expects(provider.inputs, requester.inputs)) return true;
    if (reject_requester_expects(requester.outputs, provider.outputs)) {
        return true;
    }
    return reject_requester_expects(requester.properties, provider.properties);
}

void CapabilityDag::add_edge(VertexId from, VertexId to) {
    SARIADNE_EXPECTS(from != to);
    if (!contains(vertices_[from].children, to)) {
        vertices_[from].children.push_back(to);
        vertices_[to].parents.push_back(from);
    }
}

void CapabilityDag::remove_edge(VertexId from, VertexId to) {
    erase_value(vertices_[from].children, to);
    erase_value(vertices_[to].parents, from);
}

VertexId CapabilityDag::insert(DagEntry entry, matching::DistanceOracle& oracle,
                               MatchStats& stats) {
    const ResolvedCapability& cap = entry.capability;

    // Quick-reject context: summaries stamp the whole-environment tag they
    // were built under, so one oracle read covers both sides.
    const MatchSummary cap_summary = make_match_summary(cap);
    const std::uint64_t current_tag = oracle.global_environment_tag();
    const bool cap_fresh =
        current_tag != 0 && cap_summary.code_tag == current_tag;
    const auto vertex_fresh = [&](VertexId v) {
        return cap_fresh && vertices_[v].summary.code_tag == current_tag;
    };

    // Transitivity-doomed cones. Match(v, cap) failing dooms every
    // descendant of v downward (Match(v, w) ∧ Match(w, cap) would imply
    // Match(v, cap)); Match(cap, v) failing dooms every ancestor upward.
    // Only full oracle failures are folded into the doom sets: a
    // quick-rejected vertex is just as provably failed, but its
    // descendants would quick-reject for pennies anyway, and there are
    // orders of magnitude more quick rejects than oracle probes — ORing a
    // cone per quick reject costs more than the prunes it buys. Oracle
    // failures are rare (the summary filter already passed), so the
    // per-failure cone OR is cheap and the per-encounter doom check stays
    // a single bitset test. Each encounter of a vertex bumps exactly one
    // of capability_matches / quick_rejects / reachability_prunes, so the
    // three-way sum equals the number of probe encounters whether pruning
    // is on or off.
    const bool pruning = tuning_.reachability_pruning;

    // All classification scratch (doom bitsets, visited maps, BFS frontier,
    // predecessor/successor lists) lives in the per-thread arena; the reset
    // here recycles the chunks the previous operation grew.
    support::Arena& arena = support::query_scratch_arena();
    arena.reset();
    support::ArenaBitset doomed_down(arena, vertices_.size());
    support::ArenaBitset doomed_up(arena, vertices_.size());

    // Per-vertex dispatch hoisting: a fresh vertex summary (code_tag ==
    // current nonzero tag) proves both CodeSignatures valid and stamped
    // with the oracle's tag — exactly match_capability's fast-path guard —
    // so the encoded kernel is entered directly, skipping the per-call
    // virtual tag probe. Identical outcomes and queries() accounting.
    const auto match_down = [&](VertexId v) -> matching::MatchOutcome {
        const bool fresh = vertex_fresh(v);
        if (quick_reject(vertices_[v].summary, cap_summary, fresh)) {
            ++stats.quick_rejects;
            return {false, 0};
        }
        ++stats.capability_matches;
        const auto outcome =
            fresh ? matching::match_capability_encoded(representative(v), cap,
                                                       oracle)
                  : matching::match_capability(representative(v), cap, oracle);
        if (pruning && !outcome.matched) {
            doomed_down.set(v);
            doomed_down.or_with_clamped(vertices_[v].desc.words(),
                                        vertices_[v].desc.word_count());
        }
        return outcome;
    };
    const auto match_up = [&](VertexId v) -> matching::MatchOutcome {
        const bool fresh = vertex_fresh(v);
        if (quick_reject(cap_summary, vertices_[v].summary, fresh)) {
            ++stats.quick_rejects;
            return {false, 0};
        }
        ++stats.capability_matches;
        const auto outcome =
            fresh ? matching::match_capability_encoded(cap, representative(v),
                                                       oracle)
                  : matching::match_capability(cap, representative(v), oracle);
        if (pruning && !outcome.matched) {
            doomed_up.set(v);
            doomed_up.or_with_clamped(vertices_[v].anc.words(),
                                      vertices_[v].anc.word_count());
        }
        return outcome;
    };

    // Phase 1 — find the lowest matching ancestors: descend from every
    // matching root; a vertex is a direct predecessor of the new capability
    // if Match(vertex, cap) holds but no child of it also matches.
    // Transitivity makes pruning at non-matching vertices sound.
    support::ArenaVec<VertexId> predecessors(arena);
    char* visited_down = arena.alloc_array<char>(vertices_.size());
    std::memset(visited_down, 0, vertices_.size());
    ArenaQueue frontier(arena);

    for (VertexId v = 0; v < vertices_.size(); ++v) {
        if (!vertices_[v].alive || !vertices_[v].parents.empty()) continue;
        const auto outcome = match_down(v);
        if (!outcome.matched) continue;
        // Equivalence short-circuit at the root itself.
        if (outcome.semantic_distance == 0) {
            const auto backward = match_up(v);
            if (backward.matched && backward.semantic_distance == 0) {
                vertices_[v].entries.push_back(std::move(entry));
                ++live_entries_;
                return v;
            }
        }
        visited_down[v] = 1;
        frontier.push(v);
    }

    while (!frontier.empty()) {
        const VertexId v = frontier.pop();
        bool has_matching_child = false;
        for (const VertexId child : vertices_[v].children) {
            if (visited_down[child]) {
                has_matching_child = true;
                continue;
            }
            if (pruning && doomed_down.test(child)) {
                // Provably fails Match(child, cap): an ancestor (or a prior
                // probe of child itself) already failed.
                ++stats.reachability_prunes;
                continue;
            }
            const auto outcome = match_down(child);
            if (!outcome.matched) continue;
            if (outcome.semantic_distance == 0) {
                const auto backward = match_up(child);
                if (backward.matched && backward.semantic_distance == 0) {
                    vertices_[child].entries.push_back(std::move(entry));
                    ++live_entries_;
                    return child;
                }
            }
            has_matching_child = true;
            visited_down[child] = 1;
            frontier.push(child);
        }
        if (!has_matching_child) predecessors.push_back(v);
    }

    // Phase 2 — find the highest matched descendants: ascend from every
    // leaf the new capability matches; a vertex is a direct successor if
    // Match(cap, vertex) holds but no parent of it also matches. (A leaf
    // cannot have been visited by the ascent — it has no children — but it
    // may already be doomed by a failed backward probe in Phase 1.)
    support::ArenaVec<VertexId> successors(arena);
    char* visited_up = arena.alloc_array<char>(vertices_.size());
    std::memset(visited_up, 0, vertices_.size());
    frontier.restart();
    for (VertexId v = 0; v < vertices_.size(); ++v) {
        if (!vertices_[v].alive || !vertices_[v].children.empty()) continue;
        if (pruning && doomed_up.test(v)) {
            ++stats.reachability_prunes;
            continue;
        }
        if (!match_up(v).matched) continue;
        visited_up[v] = 1;
        frontier.push(v);
    }
    while (!frontier.empty()) {
        const VertexId v = frontier.pop();
        bool has_matching_parent = false;
        for (const VertexId parent : vertices_[v].parents) {
            if (visited_up[parent]) {
                has_matching_parent = true;
                continue;
            }
            if (pruning && doomed_up.test(parent)) {
                ++stats.reachability_prunes;
                continue;
            }
            if (match_up(parent).matched) {
                has_matching_parent = true;
                visited_up[parent] = 1;
                frontier.push(parent);
            }
        }
        if (!has_matching_parent) successors.push_back(v);
    }

    // Mutual-match guard: a vertex v with Match(v, cap) AND Match(cap, v)
    // at nonzero distance would create a cycle if wired below the new
    // vertex. Every vertex matching cap downward was flagged in Phase 1
    // (all such vertices sit under a matching root, by transitivity), so
    // dropping flagged successors removes exactly the cycle-forming edges;
    // reachability is preserved because those vertices already sit above.
    std::size_t kept = 0;
    for (std::size_t k = 0; k < successors.size(); ++k) {
        if (visited_down[successors[k]] == 0) successors[kept++] = successors[k];
    }
    successors.truncate(kept);

    // Phase 3 — wire the new vertex in. Dead slots are recycled first so
    // the vertex vector tracks live size, not publish history.
    VertexId id;
    if (!free_.empty()) {
        id = free_.back();
        free_.pop_back();
        vertices_[id] = Vertex{};
    } else {
        id = static_cast<VertexId>(vertices_.size());
        vertices_.push_back(Vertex{});
    }
    vertices_[id].entries.push_back(std::move(entry));
    vertices_[id].summary = cap_summary;
    ++live_vertices_;
    ++live_entries_;

    // Closure of the new vertex from its neighbors' (still-exact) sets:
    // its ancestors are the predecessors and everything above them, its
    // descendants the successors and everything below them.
    for (const VertexId pred : predecessors) {
        vertices_[id].anc.or_with(vertices_[pred].anc);
        vertices_[id].anc.set(pred);
    }
    for (const VertexId succ : successors) {
        vertices_[id].desc.or_with(vertices_[succ].desc);
        vertices_[id].desc.set(succ);
    }

    for (const VertexId pred : predecessors) add_edge(pred, id);
    for (const VertexId succ : successors) add_edge(id, succ);

    // Propagate: every ancestor now also reaches id and id's whole cone;
    // mirror for descendants. (Predecessors form an antichain — a matching
    // path between two of them would make every intermediate vertex match,
    // contradicting the "no matching child" condition — so the new edges
    // themselves are never redundant; likewise successors.)
    vertices_[id].anc.for_each_set([&](std::size_t a) {
        vertices_[a].desc.set(id);
        vertices_[a].desc.or_with(vertices_[id].desc);
    });
    vertices_[id].desc.for_each_set([&](std::size_t d) {
        vertices_[d].anc.set(id);
        vertices_[d].anc.or_with(vertices_[id].anc);
    });

    // Drop every edge the new vertex now mediates: any ancestor's direct
    // child inside id's cone has a replacement path through id (which
    // cannot contain the dropped edge — that would close a cycle). This
    // subsumes the old predecessor×successor removal and keeps the DAG
    // transitively reduced under insertion: with edges X→P and X→S, wiring
    // a new C between P and S used to leave the now-redundant X→S behind.
    vertices_[id].anc.for_each_set([&](std::size_t a) {
        const std::vector<VertexId> direct = vertices_[a].children;
        for (const VertexId c : direct) {
            if (c != id && vertices_[id].desc.test(c)) {
                remove_edge(static_cast<VertexId>(a), c);
            }
        }
    });
    return id;
}

std::size_t CapabilityDag::remove_service(ServiceId service) {
    std::size_t removed = 0;
    bool needs_rebuild = false;
    // Edges actually created by splicing — the only candidates for
    // transitive redundancy afterwards (removal never grows reachability,
    // so a surviving pre-existing edge cannot become redundant).
    std::vector<std::pair<VertexId, VertexId>> spliced;

    for (VertexId v = 0; v < vertices_.size(); ++v) {
        Vertex& vertex = vertices_[v];
        if (!vertex.alive) continue;
        const auto old_size = vertex.entries.size();
        // The summary only mirrors entries.front(); capture whether that
        // representative is about to be evicted before erasing.
        const bool representative_leaving =
            !vertex.entries.empty() &&
            vertex.entries.front().service == service;
        vertex.entries.erase(
            std::remove_if(vertex.entries.begin(), vertex.entries.end(),
                           [&](const DagEntry& e) { return e.service == service; }),
            vertex.entries.end());
        const std::size_t dropped = old_size - vertex.entries.size();
        removed += dropped;
        live_entries_ -= dropped;
        if (!vertex.entries.empty()) {
            if (representative_leaving) {
                vertex.summary = make_match_summary(representative(v));
            }
            continue;
        }

        // Vertex died: splice parents to children to preserve reachability.
        // Chained deaths resolve because the loop runs in slot order — a
        // later-dying parent re-splices its own parents over these edges.
        // Splices may duplicate paths the surviving graph already has;
        // those edges are culled against the rebuilt closure below.
        for (const VertexId parent : vertex.parents) {
            erase_value(vertices_[parent].children, v);
            for (const VertexId child : vertex.children) {
                if (!contains(vertices_[parent].children, child)) {
                    vertices_[parent].children.push_back(child);
                    vertices_[child].parents.push_back(parent);
                    spliced.emplace_back(parent, child);
                }
            }
        }
        for (const VertexId child : vertex.children) {
            erase_value(vertices_[child].parents, v);
        }
        if (vertex.parents.empty() || vertex.children.empty()) {
            // No path ran *through* a source/sink vertex, so the closure
            // only loses v itself: clear its bit from both directions.
            vertex.anc.for_each_set([&](std::size_t a) {
                vertices_[a].desc.reset(v);
            });
            vertex.desc.for_each_set([&](std::size_t d) {
                vertices_[d].anc.reset(v);
            });
        } else {
            needs_rebuild = true;
        }
        vertex.anc.clear();
        vertex.desc.clear();
        vertex.parents.clear();
        vertex.children.clear();
        vertex.entries.shrink_to_fit();
        vertex.alive = false;
        --live_vertices_;
        free_.push_back(v);
    }

    // An interior death invalidates the closure wholesale (paths through
    // the dead vertex may or may not survive via splices): recompute once
    // for the whole removal, then use the exact closure to drop the splice
    // edges the surviving graph already implies.
    if (needs_rebuild) rebuild_reachability();
    for (const auto& [parent, child] : spliced) {
        if (!vertices_[parent].alive || !vertices_[child].alive) continue;
        if (!contains(vertices_[parent].children, child)) continue;
        if (edge_redundant(parent, child)) remove_edge(parent, child);
    }
    return removed;
}

bool CapabilityDag::edge_redundant(VertexId parent, VertexId child) const {
    // The direct edge is implied iff some *other* child of `parent`
    // reaches `child` (such a path cannot itself use the direct edge:
    // sibling → … → parent would close a cycle). Removing an implied edge
    // leaves the closure — and hence the bitsets — unchanged.
    for (const VertexId sibling : vertices_[parent].children) {
        if (sibling != child && is_reachable(sibling, child)) return true;
    }
    return false;
}

void CapabilityDag::rebuild_reachability() {
    std::vector<std::size_t> pending(vertices_.size(), 0);
    std::vector<VertexId> order;
    order.reserve(live_vertices_);
    std::queue<VertexId> ready;
    for (VertexId v = 0; v < vertices_.size(); ++v) {
        Vertex& vertex = vertices_[v];
        vertex.anc.clear();
        vertex.desc.clear();
        if (!vertex.alive) continue;
        pending[v] = vertex.parents.size();
        if (pending[v] == 0) ready.push(v);
    }
    while (!ready.empty()) {
        const VertexId v = ready.front();
        ready.pop();
        order.push_back(v);
        for (const VertexId child : vertices_[v].children) {
            if (--pending[child] == 0) ready.push(child);
        }
    }
    SARIADNE_EXPECTS(order.size() == live_vertices_);
    // Ancestors flow top-down, descendants bottom-up — one pass each.
    for (const VertexId v : order) {
        for (const VertexId child : vertices_[v].children) {
            vertices_[child].anc.or_with(vertices_[v].anc);
            vertices_[child].anc.set(v);
        }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        for (const VertexId child : vertices_[*it].children) {
            vertices_[*it].desc.or_with(vertices_[child].desc);
            vertices_[*it].desc.set(child);
        }
    }
}

void CapabilityDag::query_all_into(const ResolvedCapability& request,
                                   matching::DistanceOracle& oracle,
                                   MatchStats& stats, support::Arena& arena,
                                   support::ArenaVec<RawHit>& hits) const {
    // Collect all matching vertices reachable from matching roots, pruning
    // sub-hierarchies whose top fails (sound by transitivity of Match).
    char* visited = arena.alloc_array<char>(vertices_.size());
    std::memset(visited, 0, vertices_.size());
    ArenaQueue frontier(arena);

    // Quick-reject context, computed once per query: summaries stamp the
    // whole-environment tag they were built under, so both sides compare
    // against one oracle read.
    const MatchSummary request_summary = make_match_summary(request);
    const std::uint64_t current_tag = oracle.global_environment_tag();
    const bool request_fresh =
        current_tag != 0 && request_summary.code_tag == current_tag;

    // An oracle-failed vertex dooms its whole descendant cone
    // (transitivity): a later encounter of a doomed vertex via another
    // matching parent is settled by one bitset test and counted as a
    // reachability_prune. Quick-rejected vertices are not folded in —
    // their descendants quick-reject on their own for less than the cone
    // OR would cost. Each encountered vertex bumps exactly one of the
    // three probe counters, pruning on or off.
    const bool pruning = tuning_.reachability_pruning;
    support::ArenaBitset doomed(arena, vertices_.size());

    const auto try_vertex = [&](VertexId v) {
        visited[v] = 1;
        const bool fresh = request_fresh &&
                           vertices_[v].summary.code_tag == current_tag;
        if (quick_reject(vertices_[v].summary, request_summary, fresh)) {
            // Provably no Match at v, hence (by transitivity) none below:
            // prune the subtree without touching the oracle.
            ++stats.quick_rejects;
            return;
        }
        ++stats.capability_matches;
        // `fresh` proves both CodeSignatures valid and stamped with the
        // oracle's current nonzero tag — match_capability's fast-path
        // guard — so the encoded kernel is entered directly, skipping the
        // per-vertex virtual tag probe (identical outcome and accounting).
        const auto outcome =
            fresh ? matching::match_capability_encoded(representative(v),
                                                       request, oracle)
                  : matching::match_capability(representative(v), request,
                                               oracle);
        if (outcome.matched) {
            for (const DagEntry& entry : vertices_[v].entries) {
                // Pin the names into the arena: the DagEntry strings die
                // with a concurrent remove once the shard lock drops.
                const std::string& svc = entry.capability.service_name;
                const std::string& cap = entry.capability.name;
                hits.push_back(RawHit{
                    entry.service,
                    std::string_view(arena.copy_bytes(svc.data(), svc.size()),
                                     svc.size()),
                    std::string_view(arena.copy_bytes(cap.data(), cap.size()),
                                     cap.size()),
                    outcome.semantic_distance});
            }
            frontier.push(v);
        } else if (pruning) {
            doomed.or_with_clamped(vertices_[v].desc.words(),
                                   vertices_[v].desc.word_count());
        }
    };

    for (VertexId v = 0; v < vertices_.size(); ++v) {
        if (vertices_[v].alive && vertices_[v].parents.empty()) try_vertex(v);
    }
    while (!frontier.empty()) {
        const VertexId v = frontier.pop();
        for (const VertexId child : vertices_[v].children) {
            if (visited[child]) continue;
            if (pruning && doomed.test(child)) {
                visited[child] = 1;
                ++stats.reachability_prunes;
                continue;
            }
            try_vertex(child);
        }
    }
}

std::vector<MatchHit> CapabilityDag::query_all(
    const ResolvedCapability& request, matching::DistanceOracle& oracle,
    MatchStats& stats) const {
    support::Arena& arena = support::query_scratch_arena();
    arena.reset();
    support::ArenaVec<RawHit> raw(arena);
    query_all_into(request, oracle, stats, arena, raw);
    std::vector<MatchHit> hits;
    hits.reserve(raw.size());
    for (const RawHit& hit : raw) {
        hits.push_back(MatchHit{hit.service, std::string(hit.service_name),
                                std::string(hit.capability_name),
                                hit.semantic_distance});
    }
    return hits;
}

std::vector<MatchHit> CapabilityDag::query(const ResolvedCapability& request,
                                           matching::DistanceOracle& oracle,
                                           MatchStats& stats) const {
    std::vector<MatchHit> all = query_all(request, oracle, stats);
    if (all.empty()) return all;
    int best = all.front().semantic_distance;
    for (const MatchHit& hit : all) best = std::min(best, hit.semantic_distance);
    std::erase_if(all,
                  [best](const MatchHit& hit) {
                      return hit.semantic_distance != best;
                  });
    return all;
}

std::vector<VertexId> CapabilityDag::root_ids() const {
    std::vector<VertexId> roots;
    for (VertexId v = 0; v < vertices_.size(); ++v) {
        if (vertices_[v].alive && vertices_[v].parents.empty()) roots.push_back(v);
    }
    return roots;
}

std::vector<VertexId> CapabilityDag::leaf_ids() const {
    std::vector<VertexId> leaves;
    for (VertexId v = 0; v < vertices_.size(); ++v) {
        if (vertices_[v].alive && vertices_[v].children.empty()) {
            leaves.push_back(v);
        }
    }
    return leaves;
}

const std::vector<DagEntry>& CapabilityDag::entries(VertexId vertex) const {
    SARIADNE_EXPECTS(vertex < vertices_.size() && vertices_[vertex].alive);
    return vertices_[vertex].entries;
}

const std::vector<VertexId>& CapabilityDag::parents(VertexId vertex) const {
    SARIADNE_EXPECTS(vertex < vertices_.size() && vertices_[vertex].alive);
    return vertices_[vertex].parents;
}

const std::vector<VertexId>& CapabilityDag::children(VertexId vertex) const {
    SARIADNE_EXPECTS(vertex < vertices_.size() && vertices_[vertex].alive);
    return vertices_[vertex].children;
}

bool CapabilityDag::validate(matching::DistanceOracle& oracle) const {
    std::size_t live_seen = 0;
    std::size_t entries_seen = 0;
    for (VertexId v = 0; v < vertices_.size(); ++v) {
        const Vertex& vertex = vertices_[v];
        if (!vertex.alive) {
            if (!vertex.parents.empty() || !vertex.children.empty()) return false;
            // Dead slots must hold no closure bits, or slot reuse would
            // resurrect stale reachability.
            if (!vertex.anc.none() || !vertex.desc.none()) return false;
            continue;
        }
        ++live_seen;
        entries_seen += vertex.entries.size();
        if (vertex.entries.empty()) return false;
        for (const VertexId child : vertex.children) {
            if (child == v) return false;
            if (child >= vertices_.size() || !vertices_[child].alive) return false;
            if (!contains(vertices_[child].parents, v)) return false;
            // Edge semantics: Match(parent, child) must hold.
            if (!matching::matches(representative(v), representative(child),
                                   oracle)) {
                return false;
            }
        }
        for (const VertexId parent : vertex.parents) {
            if (!contains(vertices_[parent].children, v)) return false;
        }
        // Entries sharing the vertex must be equivalent to the representative.
        for (const DagEntry& entry : vertex.entries) {
            if (!matching::equivalent_capabilities(representative(v),
                                                   entry.capability, oracle)) {
                return false;
            }
        }
    }

    // Acyclicity via Kahn's algorithm over live vertices.
    std::vector<std::size_t> pending(vertices_.size(), 0);
    std::queue<VertexId> ready;
    std::size_t live = 0;
    for (VertexId v = 0; v < vertices_.size(); ++v) {
        if (!vertices_[v].alive) continue;
        ++live;
        pending[v] = vertices_[v].parents.size();
        if (pending[v] == 0) ready.push(v);
    }
    std::size_t processed = 0;
    while (!ready.empty()) {
        const VertexId v = ready.front();
        ready.pop();
        ++processed;
        for (const VertexId child : vertices_[v].children) {
            if (--pending[child] == 0) ready.push(child);
        }
    }
    if (processed != live) return false;
    if (live != live_vertices_ || entries_seen != live_entries_ ||
        live != live_seen) {
        return false;
    }

    // Ground-truth closure via per-vertex BFS (independent of the
    // incremental bitset maintenance being checked). Acyclicity has been
    // established above, so the walks terminate.
    std::vector<support::DynBitset> reach(vertices_.size());
    std::vector<char> seen(vertices_.size(), 0);
    std::vector<VertexId> stack;
    for (VertexId v = 0; v < vertices_.size(); ++v) {
        if (!vertices_[v].alive) continue;
        std::fill(seen.begin(), seen.end(), 0);
        stack.assign(vertices_[v].children.begin(),
                     vertices_[v].children.end());
        for (const VertexId child : vertices_[v].children) seen[child] = 1;
        while (!stack.empty()) {
            const VertexId u = stack.back();
            stack.pop_back();
            reach[v].set(u);
            for (const VertexId next : vertices_[u].children) {
                if (!seen[next]) {
                    seen[next] = 1;
                    stack.push_back(next);
                }
            }
        }
    }

    // The stored descendant sets must equal BFS reachability exactly, and
    // the ancestor sets must be their transpose.
    std::vector<support::DynBitset> reverse(vertices_.size());
    for (VertexId v = 0; v < vertices_.size(); ++v) {
        if (!vertices_[v].alive) continue;
        reach[v].for_each_set(
            [&](std::size_t u) { reverse[u].set(v); });
    }
    for (VertexId v = 0; v < vertices_.size(); ++v) {
        if (!vertices_[v].alive) continue;
        if (!(vertices_[v].desc == reach[v])) return false;
        if (!(vertices_[v].anc == reverse[v])) return false;
    }

    // Transitive reduction: no edge may be implied by a sibling's cone.
    for (VertexId v = 0; v < vertices_.size(); ++v) {
        if (!vertices_[v].alive) continue;
        for (const VertexId child : vertices_[v].children) {
            for (const VertexId sibling : vertices_[v].children) {
                if (sibling != child && reach[sibling].test(child)) {
                    return false;
                }
            }
        }
    }
    return true;
}

}  // namespace sariadne::directory
