#include "directory/dag.hpp"

#include <algorithm>
#include <queue>

#include "support/contracts.hpp"

namespace sariadne::directory {

namespace {

bool contains(const std::vector<VertexId>& items, VertexId value) {
    return std::find(items.begin(), items.end(), value) != items.end();
}

void erase_value(std::vector<VertexId>& items, VertexId value) {
    items.erase(std::remove(items.begin(), items.end(), value), items.end());
}

}  // namespace

void CapabilityDag::add_edge(VertexId from, VertexId to) {
    SARIADNE_EXPECTS(from != to);
    if (!contains(vertices_[from].children, to)) {
        vertices_[from].children.push_back(to);
        vertices_[to].parents.push_back(from);
    }
}

void CapabilityDag::remove_edge(VertexId from, VertexId to) {
    erase_value(vertices_[from].children, to);
    erase_value(vertices_[to].parents, from);
}

VertexId CapabilityDag::insert(DagEntry entry, matching::DistanceOracle& oracle,
                               MatchStats& stats) {
    const ResolvedCapability& cap = entry.capability;

    // Phase 1 — find the lowest matching ancestors: descend from every
    // matching root; a vertex is a direct predecessor of the new capability
    // if Match(vertex, cap) holds but no child of it also matches.
    // Transitivity makes pruning at non-matching vertices sound.
    std::vector<VertexId> predecessors;
    std::vector<char> visited_down(vertices_.size(), 0);
    std::queue<VertexId> frontier;

    const auto match_down = [&](VertexId v) {
        ++stats.capability_matches;
        return matching::match_capability(representative(v), cap, oracle);
    };
    const auto match_up = [&](VertexId v) {
        ++stats.capability_matches;
        return matching::match_capability(cap, representative(v), oracle);
    };

    for (VertexId v = 0; v < vertices_.size(); ++v) {
        if (!vertices_[v].alive || !vertices_[v].parents.empty()) continue;
        const auto outcome = match_down(v);
        if (!outcome.matched) continue;
        // Equivalence short-circuit at the root itself.
        if (outcome.semantic_distance == 0) {
            const auto backward = match_up(v);
            if (backward.matched && backward.semantic_distance == 0) {
                vertices_[v].entries.push_back(std::move(entry));
                return v;
            }
        }
        visited_down[v] = 1;
        frontier.push(v);
    }

    while (!frontier.empty()) {
        const VertexId v = frontier.front();
        frontier.pop();
        bool has_matching_child = false;
        for (const VertexId child : vertices_[v].children) {
            if (visited_down[child]) {
                has_matching_child = true;
                continue;
            }
            const auto outcome = match_down(child);
            if (!outcome.matched) continue;
            if (outcome.semantic_distance == 0) {
                const auto backward = match_up(child);
                if (backward.matched && backward.semantic_distance == 0) {
                    vertices_[child].entries.push_back(std::move(entry));
                    return child;
                }
            }
            has_matching_child = true;
            visited_down[child] = 1;
            frontier.push(child);
        }
        if (!has_matching_child) predecessors.push_back(v);
    }

    // Phase 2 — find the highest matched descendants: ascend from every
    // leaf the new capability matches; a vertex is a direct successor if
    // Match(cap, vertex) holds but no parent of it also matches.
    std::vector<VertexId> successors;
    std::vector<char> visited_up(vertices_.size(), 0);
    for (VertexId v = 0; v < vertices_.size(); ++v) {
        if (!vertices_[v].alive || !vertices_[v].children.empty()) continue;
        if (visited_up[v]) continue;
        if (!match_up(v).matched) continue;
        visited_up[v] = 1;
        frontier.push(v);
    }
    while (!frontier.empty()) {
        const VertexId v = frontier.front();
        frontier.pop();
        bool has_matching_parent = false;
        for (const VertexId parent : vertices_[v].parents) {
            if (visited_up[parent]) {
                has_matching_parent = true;
                continue;
            }
            if (match_up(parent).matched) {
                has_matching_parent = true;
                visited_up[parent] = 1;
                frontier.push(parent);
            }
        }
        if (!has_matching_parent) successors.push_back(v);
    }

    // Mutual-match guard: a vertex v with Match(v, cap) AND Match(cap, v)
    // at nonzero distance would create a cycle if wired below the new
    // vertex. Every vertex matching cap downward was flagged in Phase 1
    // (all such vertices sit under a matching root, by transitivity), so
    // dropping flagged successors removes exactly the cycle-forming edges;
    // reachability is preserved because those vertices already sit above.
    std::erase_if(successors,
                  [&](VertexId s) { return visited_down[s] != 0; });

    // Phase 3 — wire the new vertex in, removing parent→successor edges
    // that the new vertex now mediates.
    const auto id = static_cast<VertexId>(vertices_.size());
    vertices_.push_back(Vertex{});
    vertices_.back().entries.push_back(std::move(entry));
    for (const VertexId pred : predecessors) {
        for (const VertexId succ : successors) {
            remove_edge(pred, succ);
        }
        add_edge(pred, id);
    }
    for (const VertexId succ : successors) add_edge(id, succ);
    return id;
}

std::size_t CapabilityDag::remove_service(ServiceId service) {
    std::size_t removed = 0;
    for (VertexId v = 0; v < vertices_.size(); ++v) {
        Vertex& vertex = vertices_[v];
        if (!vertex.alive) continue;
        const auto old_size = vertex.entries.size();
        vertex.entries.erase(
            std::remove_if(vertex.entries.begin(), vertex.entries.end(),
                           [&](const DagEntry& e) { return e.service == service; }),
            vertex.entries.end());
        removed += old_size - vertex.entries.size();
        if (!vertex.entries.empty()) continue;

        // Vertex died: splice parents to children to preserve reachability.
        for (const VertexId parent : vertex.parents) {
            erase_value(vertices_[parent].children, v);
            for (const VertexId child : vertex.children) {
                add_edge(parent, child);
            }
        }
        for (const VertexId child : vertex.children) {
            erase_value(vertices_[child].parents, v);
        }
        vertex.parents.clear();
        vertex.children.clear();
        vertex.alive = false;
    }
    return removed;
}

std::vector<MatchHit> CapabilityDag::query_all(
    const ResolvedCapability& request, matching::DistanceOracle& oracle,
    MatchStats& stats) const {
    // Collect all matching vertices reachable from matching roots, pruning
    // sub-hierarchies whose top fails (sound by transitivity of Match).
    std::vector<char> visited(vertices_.size(), 0);
    std::queue<VertexId> frontier;
    std::vector<MatchHit> hits;

    const auto try_vertex = [&](VertexId v) {
        visited[v] = 1;
        ++stats.capability_matches;
        const auto outcome =
            matching::match_capability(representative(v), request, oracle);
        if (outcome.matched) {
            for (const DagEntry& entry : vertices_[v].entries) {
                hits.push_back(MatchHit{entry.service,
                                        entry.capability.service_name,
                                        entry.capability.name,
                                        outcome.semantic_distance});
            }
            frontier.push(v);
        }
    };

    for (VertexId v = 0; v < vertices_.size(); ++v) {
        if (vertices_[v].alive && vertices_[v].parents.empty()) try_vertex(v);
    }
    while (!frontier.empty()) {
        const VertexId v = frontier.front();
        frontier.pop();
        for (const VertexId child : vertices_[v].children) {
            if (!visited[child]) try_vertex(child);
        }
    }
    return hits;
}

std::vector<MatchHit> CapabilityDag::query(const ResolvedCapability& request,
                                           matching::DistanceOracle& oracle,
                                           MatchStats& stats) const {
    std::vector<MatchHit> all = query_all(request, oracle, stats);
    if (all.empty()) return all;
    int best = all.front().semantic_distance;
    for (const MatchHit& hit : all) best = std::min(best, hit.semantic_distance);
    std::erase_if(all,
                  [best](const MatchHit& hit) {
                      return hit.semantic_distance != best;
                  });
    return all;
}

std::vector<VertexId> CapabilityDag::root_ids() const {
    std::vector<VertexId> roots;
    for (VertexId v = 0; v < vertices_.size(); ++v) {
        if (vertices_[v].alive && vertices_[v].parents.empty()) roots.push_back(v);
    }
    return roots;
}

std::vector<VertexId> CapabilityDag::leaf_ids() const {
    std::vector<VertexId> leaves;
    for (VertexId v = 0; v < vertices_.size(); ++v) {
        if (vertices_[v].alive && vertices_[v].children.empty()) {
            leaves.push_back(v);
        }
    }
    return leaves;
}

std::size_t CapabilityDag::vertex_count() const noexcept {
    std::size_t count = 0;
    for (const Vertex& v : vertices_) count += v.alive ? 1 : 0;
    return count;
}

std::size_t CapabilityDag::entry_count() const noexcept {
    std::size_t count = 0;
    for (const Vertex& v : vertices_) {
        if (v.alive) count += v.entries.size();
    }
    return count;
}

const std::vector<DagEntry>& CapabilityDag::entries(VertexId vertex) const {
    SARIADNE_EXPECTS(vertex < vertices_.size() && vertices_[vertex].alive);
    return vertices_[vertex].entries;
}

const std::vector<VertexId>& CapabilityDag::parents(VertexId vertex) const {
    SARIADNE_EXPECTS(vertex < vertices_.size() && vertices_[vertex].alive);
    return vertices_[vertex].parents;
}

const std::vector<VertexId>& CapabilityDag::children(VertexId vertex) const {
    SARIADNE_EXPECTS(vertex < vertices_.size() && vertices_[vertex].alive);
    return vertices_[vertex].children;
}

bool CapabilityDag::validate(matching::DistanceOracle& oracle) const {
    for (VertexId v = 0; v < vertices_.size(); ++v) {
        const Vertex& vertex = vertices_[v];
        if (!vertex.alive) {
            if (!vertex.parents.empty() || !vertex.children.empty()) return false;
            continue;
        }
        if (vertex.entries.empty()) return false;
        for (const VertexId child : vertex.children) {
            if (child == v) return false;
            if (child >= vertices_.size() || !vertices_[child].alive) return false;
            if (!contains(vertices_[child].parents, v)) return false;
            // Edge semantics: Match(parent, child) must hold.
            if (!matching::matches(representative(v), representative(child),
                                   oracle)) {
                return false;
            }
        }
        for (const VertexId parent : vertex.parents) {
            if (!contains(vertices_[parent].children, v)) return false;
        }
        // Entries sharing the vertex must be equivalent to the representative.
        for (const DagEntry& entry : vertex.entries) {
            if (!matching::equivalent_capabilities(representative(v),
                                                   entry.capability, oracle)) {
                return false;
            }
        }
    }

    // Acyclicity via Kahn's algorithm over live vertices.
    std::vector<std::size_t> pending(vertices_.size(), 0);
    std::queue<VertexId> ready;
    std::size_t live = 0;
    for (VertexId v = 0; v < vertices_.size(); ++v) {
        if (!vertices_[v].alive) continue;
        ++live;
        pending[v] = vertices_[v].parents.size();
        if (pending[v] == 0) ready.push(v);
    }
    std::size_t processed = 0;
    while (!ready.empty()) {
        const VertexId v = ready.front();
        ready.pop();
        ++processed;
        for (const VertexId child : vertices_[v].children) {
            if (--pending[child] == 0) ready.push(child);
        }
    }
    return processed == live;
}

}  // namespace sariadne::directory
