#include "directory/taxonomy_directory.hpp"

#include "description/amigos_io.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "matching/oracles.hpp"

namespace sariadne::directory {

namespace {

/// Visits every representative subsumed by `top` (including itself), with
/// its BFS level distance from `top`.
template <typename Visitor>
void for_each_descendant(const reasoner::Taxonomy& taxonomy,
                         onto::ConceptId top, Visitor&& visit) {
    const onto::ConceptId start = taxonomy.canonical(top);
    std::vector<int> seen(taxonomy.class_count(), -1);
    std::queue<onto::ConceptId> frontier;
    seen[start] = 0;
    frontier.push(start);
    while (!frontier.empty()) {
        const onto::ConceptId node = frontier.front();
        frontier.pop();
        visit(node, seen[node]);
        for (const onto::ConceptId kid : taxonomy.direct_children(node)) {
            if (seen[kid] == -1) {
                seen[kid] = seen[node] + 1;
                frontier.push(kid);
            }
        }
    }
}

}  // namespace

std::size_t TaxonomyDirectory::publish_xml(std::string_view xml_text) {
    return publish(desc::parse_service(xml_text));
}

std::size_t TaxonomyDirectory::publish(const desc::ServiceDescription& service) {
    const ServiceId service_id = next_service_++;
    std::size_t annotations = 0;

    for (auto& cap : desc::resolve_provided(service, kb_->registry())) {
        const std::uint32_t entry_index = next_entry_++;

        const auto annotate_descendants = [&](AnnotationMap& map,
                                              onto::ConceptRef top) {
            const reasoner::Taxonomy& taxonomy = kb_->taxonomy(top.ontology);
            for_each_descendant(
                taxonomy, top.concept_id,
                [&](onto::ConceptId c, int level) {
                    map[onto::ConceptRef{top.ontology, c}].push_back(
                        Annotation{entry_index, level});
                    ++annotations;
                });
        };

        for (const onto::ConceptRef out : cap.outputs) {
            annotate_descendants(output_lists_, out);
        }
        for (const onto::ConceptRef prop : cap.properties) {
            annotate_descendants(property_lists_, prop);
        }
        for (const onto::ConceptRef in : cap.inputs) {
            annotate_descendants(input_lists_, in);
        }

        entries_.push_back(StoredCapability{std::move(cap), service_id});
    }
    return annotations;
}

std::vector<MatchHit> TaxonomyDirectory::query(
    const desc::ResolvedCapability& request, MatchStats& stats) {
    // Candidate set: entries present in the annotation list of *every*
    // requested output and property concept (lookups + intersections, the
    // paper's description of [13]'s query phase). Lists are keyed by the
    // request's concept canonicalized.
    std::vector<std::uint32_t> candidates;
    bool first = true;

    const auto intersect_with = [&](const AnnotationMap& map,
                                    onto::ConceptRef concept_ref) {
        const reasoner::Taxonomy& taxonomy = kb_->taxonomy(concept_ref.ontology);
        const onto::ConceptRef key{concept_ref.ontology,
                                   taxonomy.canonical(concept_ref.concept_id)};
        std::vector<std::uint32_t> found;
        if (const auto it = map.find(key); it != map.end()) {
            for (const Annotation& annotation : it->second) {
                found.push_back(annotation.entry);
            }
            std::sort(found.begin(), found.end());
            found.erase(std::unique(found.begin(), found.end()), found.end());
        }
        if (first) {
            candidates = std::move(found);
            first = false;
        } else {
            std::vector<std::uint32_t> merged;
            std::set_intersection(candidates.begin(), candidates.end(),
                                  found.begin(), found.end(),
                                  std::back_inserter(merged));
            candidates = std::move(merged);
        }
    };

    for (const onto::ConceptRef out : request.outputs) {
        intersect_with(output_lists_, out);
    }
    for (const onto::ConceptRef prop : request.properties) {
        intersect_with(property_lists_, prop);
    }
    if (first) {
        // Output/property-free request: every entry is a candidate.
        candidates.resize(entries_.size());
        for (std::uint32_t i = 0; i < entries_.size(); ++i) candidates[i] = i;
    }

    // Final verification (covers the input direction, which annotation
    // lists can only approximate) and distance ranking.
    matching::EncodedOracle oracle(*kb_);
    int best = std::numeric_limits<int>::max();
    std::vector<MatchHit> hits;
    for (const std::uint32_t index : candidates) {
        const StoredCapability& stored = entries_[index];
        ++stats.capability_matches;
        const auto outcome =
            matching::match_capability(stored.capability, request, oracle);
        if (!outcome.matched) continue;
        if (outcome.semantic_distance < best) {
            best = outcome.semantic_distance;
            hits.clear();
        }
        if (outcome.semantic_distance == best) {
            hits.push_back(MatchHit{stored.service,
                                    stored.capability.service_name,
                                    stored.capability.name, best});
        }
    }
    stats.concept_queries += oracle.queries();
    return hits;
}

}  // namespace sariadne::directory
