#include "directory/dag_index.hpp"

#include <algorithm>
#include <functional>
#include <mutex>
#include <tuple>

namespace sariadne::directory {

CapabilityDag& DagIndex::dag_for_locked(Shard& shard,
                                        const FlatSet<OntologyIndex>& signature) {
    for (const auto& dag : shard.dags) {
        if (dag->signature() == signature) return *dag;
    }
    shard.dags.push_back(std::make_unique<CapabilityDag>(signature, tuning_));
    shard.dag_count.store(shard.dags.size(), std::memory_order_release);
    shard.ontology_mask.fetch_or(ontology_mask_of(signature),
                                 std::memory_order_release);
    return *shard.dags.back();
}

void DagIndex::insert(DagEntry entry, matching::DistanceOracle& oracle,
                      MatchStats& stats) {
    Shard& shard = shards_[shard_of(entry.capability.ontologies)];
    std::unique_lock lock(shard.mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
        if (contention_ != nullptr) contention_->inc();
        lock.lock();
    }
    CapabilityDag& dag = dag_for_locked(shard, entry.capability.ontologies);
    dag.insert(std::move(entry), oracle, stats);
}

std::size_t DagIndex::insert_batch(std::vector<DagEntry> entries,
                                   matching::DistanceOracle& oracle,
                                   MatchStats& stats) {
    // The batch ordering contract (DESIGN.md §12): shard-major so each
    // shard's unique lock is taken once per run; within a shard by
    // signature so one DAG's insertions are contiguous; within a DAG a
    // generality-first heuristic (fewer inputs, then more outputs, then
    // name) so probable ancestors are classified before their descendants
    // — approximating a topological insert order without paying O(B²)
    // Match evaluations up front. The order is a deterministic function of
    // the batch contents, never of arrival order.
    std::stable_sort(
        entries.begin(), entries.end(),
        [&](const DagEntry& a, const DagEntry& b) {
            const std::size_t sa = shard_of(a.capability.ontologies);
            const std::size_t sb = shard_of(b.capability.ontologies);
            if (sa != sb) return sa < sb;
            const auto& oa = a.capability.ontologies;
            const auto& ob = b.capability.ontologies;
            if (!(oa == ob)) {
                return std::lexicographical_compare(oa.begin(), oa.end(),
                                                    ob.begin(), ob.end());
            }
            if (a.capability.inputs.size() != b.capability.inputs.size()) {
                return a.capability.inputs.size() <
                       b.capability.inputs.size();
            }
            if (a.capability.outputs.size() != b.capability.outputs.size()) {
                return a.capability.outputs.size() >
                       b.capability.outputs.size();
            }
            return a.capability.name < b.capability.name;
        });

    std::size_t i = 0;
    while (i < entries.size()) {
        const std::size_t shard_index =
            shard_of(entries[i].capability.ontologies);
        std::size_t end = i + 1;
        while (end < entries.size() &&
               shard_of(entries[end].capability.ontologies) == shard_index) {
            ++end;
        }
        Shard& shard = shards_[shard_index];
        std::unique_lock lock(shard.mutex, std::try_to_lock);
        if (!lock.owns_lock()) {
            if (contention_ != nullptr) contention_->inc();
            lock.lock();
        }
        for (; i < end; ++i) {
            CapabilityDag& dag =
                dag_for_locked(shard, entries[i].capability.ontologies);
            dag.insert(std::move(entries[i]), oracle, stats);
        }
    }
    return entries.size();
}

namespace {

void drop_empty_dags_locked(std::vector<std::unique_ptr<CapabilityDag>>& dags,
                            std::atomic<std::size_t>& dag_count,
                            std::atomic<std::uint64_t>& ontology_mask) {
    dags.erase(std::remove_if(dags.begin(), dags.end(),
                              [](const std::unique_ptr<CapabilityDag>& dag) {
                                  return dag->empty();
                              }),
               dags.end());
    dag_count.store(dags.size(), std::memory_order_release);
    // Recompute the skip mask exactly from the survivors — removal is the
    // one operation where the grow-only fetch_or would go stale the wrong
    // way (keeping dead bits is safe but erodes the filter over churn).
    std::uint64_t mask = 0;
    for (const auto& dag : dags) mask |= ontology_mask_of(dag->signature());
    ontology_mask.store(mask, std::memory_order_release);
}

}  // namespace

std::size_t DagIndex::remove_service(ServiceId service) {
    std::size_t removed = 0;
    for (std::size_t s = 0; s < shard_count_; ++s) {
        Shard& shard = shards_[s];
        std::unique_lock lock(shard.mutex);
        for (const auto& dag : shard.dags) removed += dag->remove_service(service);
        drop_empty_dags_locked(shard.dags, shard.dag_count,
                               shard.ontology_mask);
    }
    return removed;
}

std::size_t DagIndex::remove_service(
    ServiceId service,
    const std::vector<FlatSet<OntologyIndex>>& signatures) {
    // Group the service's publish-time signatures per shard so only the
    // shards (and inside them only the DAGs) the service actually touched
    // are locked and scanned.
    std::vector<std::vector<const FlatSet<OntologyIndex>*>> per_shard(
        shard_count_);
    for (const auto& signature : signatures) {
        auto& bucket = per_shard[shard_of(signature)];
        const auto dup = std::find_if(
            bucket.begin(), bucket.end(),
            [&](const FlatSet<OntologyIndex>* s) { return *s == signature; });
        if (dup == bucket.end()) bucket.push_back(&signature);
    }
    std::size_t removed = 0;
    for (std::size_t s = 0; s < shard_count_; ++s) {
        if (per_shard[s].empty()) continue;
        Shard& shard = shards_[s];
        std::unique_lock lock(shard.mutex);
        bool any_emptied = false;
        for (const auto& dag : shard.dags) {
            for (const FlatSet<OntologyIndex>* signature : per_shard[s]) {
                if (dag->signature() == *signature) {
                    removed += dag->remove_service(service);
                    any_emptied = any_emptied || dag->empty();
                    break;
                }
            }
        }
        if (any_emptied) {
            drop_empty_dags_locked(shard.dags, shard.dag_count,
                                   shard.ontology_mask);
        }
    }
    return removed;
}

void DagIndex::query_all_into(const ResolvedCapability& request,
                              matching::DistanceOracle& oracle,
                              MatchStats& stats, support::Arena& arena,
                              support::ArenaVec<RawHit>& hits) const {
    const std::uint64_t request_mask = ontology_mask_of(request.ontologies);
    for (std::size_t s = 0; s < shard_count_; ++s) {
        const Shard& shard = shards_[s];
        const std::size_t dag_count =
            shard.dag_count.load(std::memory_order_acquire);
        if (dag_count == 0) continue;
        if ((shard.ontology_mask.load(std::memory_order_acquire) &
             request_mask) == 0) {
            // Every DAG here would fail the signature-intersects test —
            // account for them as pruned (same stats as visiting the
            // shard) but skip the lock acquisition entirely. On a
            // 500-service directory the shared-lock round trips on
            // non-candidate shards dominate the fixed per-query cost.
            stats.dags_pruned += dag_count;
            continue;
        }
        std::shared_lock lock(shard.mutex, std::try_to_lock);
        if (!lock.owns_lock()) {
            if (contention_ != nullptr) contention_->inc();
            lock.lock();
        }
        for (const auto& dag : shard.dags) {
            if (!dag->signature().intersects(request.ontologies)) {
                ++stats.dags_pruned;
                continue;
            }
            ++stats.dags_visited;
            dag->query_all_into(request, oracle, stats, arena, hits);
        }
    }
}

std::vector<MatchHit> DagIndex::query_all(const ResolvedCapability& request,
                                          matching::DistanceOracle& oracle,
                                          MatchStats& stats) const {
    support::Arena& arena = support::query_scratch_arena();
    arena.reset();
    support::ArenaVec<RawHit> raw(arena);
    query_all_into(request, oracle, stats, arena, raw);
    std::vector<MatchHit> all;
    all.reserve(raw.size());
    for (const RawHit& hit : raw) {
        all.push_back(MatchHit{hit.service, std::string(hit.service_name),
                               std::string(hit.capability_name),
                               hit.semantic_distance});
    }
    return all;
}

std::vector<MatchHit> DagIndex::query(const ResolvedCapability& request,
                                      matching::DistanceOracle& oracle,
                                      MatchStats& stats) const {
    std::vector<MatchHit> best;
    const std::uint64_t request_mask = ontology_mask_of(request.ontologies);
    for (std::size_t s = 0; s < shard_count_; ++s) {
        const Shard& shard = shards_[s];
        const std::size_t dag_count =
            shard.dag_count.load(std::memory_order_acquire);
        if (dag_count == 0) continue;
        if ((shard.ontology_mask.load(std::memory_order_acquire) &
             request_mask) == 0) {
            stats.dags_pruned += dag_count;  // same accounting as query_all_into
            continue;
        }
        std::shared_lock lock(shard.mutex, std::try_to_lock);
        if (!lock.owns_lock()) {
            if (contention_ != nullptr) contention_->inc();
            lock.lock();
        }
        for (const auto& dag : shard.dags) {
            if (!dag->signature().intersects(request.ontologies)) {
                ++stats.dags_pruned;
                continue;
            }
            ++stats.dags_visited;
            std::vector<MatchHit> hits = dag->query(request, oracle, stats);
            if (hits.empty()) continue;
            if (best.empty() || hits.front().semantic_distance <
                                    best.front().semantic_distance) {
                best = std::move(hits);
            } else if (hits.front().semantic_distance ==
                       best.front().semantic_distance) {
                best.insert(best.end(), hits.begin(), hits.end());
            }
        }
    }
    return best;
}

std::size_t DagIndex::dag_count() const noexcept {
    std::size_t count = 0;
    for (std::size_t s = 0; s < shard_count_; ++s) {
        std::shared_lock lock(shards_[s].mutex);
        count += shards_[s].dags.size();
    }
    return count;
}

std::size_t DagIndex::entry_count() const noexcept {
    std::size_t count = 0;
    for (std::size_t s = 0; s < shard_count_; ++s) {
        std::shared_lock lock(shards_[s].mutex);
        for (const auto& dag : shards_[s].dags) count += dag->entry_count();
    }
    return count;
}

void DagIndex::for_each_dag(
    const std::function<void(const CapabilityDag&)>& visit) const {
    for (std::size_t s = 0; s < shard_count_; ++s) {
        std::shared_lock lock(shards_[s].mutex);
        for (const auto& dag : shards_[s].dags) visit(*dag);
    }
}

}  // namespace sariadne::directory
