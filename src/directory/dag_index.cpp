#include "directory/dag_index.hpp"

#include <algorithm>
#include <functional>
#include <mutex>
#include <tuple>

namespace sariadne::directory {

CapabilityDag& DagIndex::dag_for_locked(Shard& shard,
                                        const FlatSet<OntologyIndex>& signature) {
    for (const auto& dag : shard.dags) {
        if (dag->signature() == signature) return *dag;
    }
    shard.dags.push_back(std::make_unique<CapabilityDag>(signature, tuning_));
    shard.dag_count.store(shard.dags.size(), std::memory_order_release);
    return *shard.dags.back();
}

void DagIndex::insert(DagEntry entry, matching::DistanceOracle& oracle,
                      MatchStats& stats) {
    Shard& shard = shards_[shard_of(entry.capability.ontologies)];
    std::unique_lock lock(shard.mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
        if (contention_ != nullptr) contention_->inc();
        lock.lock();
    }
    CapabilityDag& dag = dag_for_locked(shard, entry.capability.ontologies);
    dag.insert(std::move(entry), oracle, stats);
}

std::size_t DagIndex::insert_batch(std::vector<DagEntry> entries,
                                   matching::DistanceOracle& oracle,
                                   MatchStats& stats) {
    // The batch ordering contract (DESIGN.md §12): shard-major so each
    // shard's unique lock is taken once per run; within a shard by
    // signature so one DAG's insertions are contiguous; within a DAG a
    // generality-first heuristic (fewer inputs, then more outputs, then
    // name) so probable ancestors are classified before their descendants
    // — approximating a topological insert order without paying O(B²)
    // Match evaluations up front. The order is a deterministic function of
    // the batch contents, never of arrival order.
    std::stable_sort(
        entries.begin(), entries.end(),
        [&](const DagEntry& a, const DagEntry& b) {
            const std::size_t sa = shard_of(a.capability.ontologies);
            const std::size_t sb = shard_of(b.capability.ontologies);
            if (sa != sb) return sa < sb;
            const auto& oa = a.capability.ontologies;
            const auto& ob = b.capability.ontologies;
            if (!(oa == ob)) {
                return std::lexicographical_compare(oa.begin(), oa.end(),
                                                    ob.begin(), ob.end());
            }
            if (a.capability.inputs.size() != b.capability.inputs.size()) {
                return a.capability.inputs.size() <
                       b.capability.inputs.size();
            }
            if (a.capability.outputs.size() != b.capability.outputs.size()) {
                return a.capability.outputs.size() >
                       b.capability.outputs.size();
            }
            return a.capability.name < b.capability.name;
        });

    std::size_t i = 0;
    while (i < entries.size()) {
        const std::size_t shard_index =
            shard_of(entries[i].capability.ontologies);
        std::size_t end = i + 1;
        while (end < entries.size() &&
               shard_of(entries[end].capability.ontologies) == shard_index) {
            ++end;
        }
        Shard& shard = shards_[shard_index];
        std::unique_lock lock(shard.mutex, std::try_to_lock);
        if (!lock.owns_lock()) {
            if (contention_ != nullptr) contention_->inc();
            lock.lock();
        }
        for (; i < end; ++i) {
            CapabilityDag& dag =
                dag_for_locked(shard, entries[i].capability.ontologies);
            dag.insert(std::move(entries[i]), oracle, stats);
        }
    }
    return entries.size();
}

namespace {

void drop_empty_dags_locked(std::vector<std::unique_ptr<CapabilityDag>>& dags,
                            std::atomic<std::size_t>& dag_count) {
    dags.erase(std::remove_if(dags.begin(), dags.end(),
                              [](const std::unique_ptr<CapabilityDag>& dag) {
                                  return dag->empty();
                              }),
               dags.end());
    dag_count.store(dags.size(), std::memory_order_release);
}

}  // namespace

std::size_t DagIndex::remove_service(ServiceId service) {
    std::size_t removed = 0;
    for (std::size_t s = 0; s < shard_count_; ++s) {
        Shard& shard = shards_[s];
        std::unique_lock lock(shard.mutex);
        for (const auto& dag : shard.dags) removed += dag->remove_service(service);
        drop_empty_dags_locked(shard.dags, shard.dag_count);
    }
    return removed;
}

std::size_t DagIndex::remove_service(
    ServiceId service,
    const std::vector<FlatSet<OntologyIndex>>& signatures) {
    // Group the service's publish-time signatures per shard so only the
    // shards (and inside them only the DAGs) the service actually touched
    // are locked and scanned.
    std::vector<std::vector<const FlatSet<OntologyIndex>*>> per_shard(
        shard_count_);
    for (const auto& signature : signatures) {
        auto& bucket = per_shard[shard_of(signature)];
        const auto dup = std::find_if(
            bucket.begin(), bucket.end(),
            [&](const FlatSet<OntologyIndex>* s) { return *s == signature; });
        if (dup == bucket.end()) bucket.push_back(&signature);
    }
    std::size_t removed = 0;
    for (std::size_t s = 0; s < shard_count_; ++s) {
        if (per_shard[s].empty()) continue;
        Shard& shard = shards_[s];
        std::unique_lock lock(shard.mutex);
        bool any_emptied = false;
        for (const auto& dag : shard.dags) {
            for (const FlatSet<OntologyIndex>* signature : per_shard[s]) {
                if (dag->signature() == *signature) {
                    removed += dag->remove_service(service);
                    any_emptied = any_emptied || dag->empty();
                    break;
                }
            }
        }
        if (any_emptied) drop_empty_dags_locked(shard.dags, shard.dag_count);
    }
    return removed;
}

std::vector<MatchHit> DagIndex::query_all(const ResolvedCapability& request,
                                          matching::DistanceOracle& oracle,
                                          MatchStats& stats) const {
    std::vector<MatchHit> all;
    for (std::size_t s = 0; s < shard_count_; ++s) {
        const Shard& shard = shards_[s];
        if (shard.dag_count.load(std::memory_order_acquire) == 0) continue;
        std::shared_lock lock(shard.mutex, std::try_to_lock);
        if (!lock.owns_lock()) {
            if (contention_ != nullptr) contention_->inc();
            lock.lock();
        }
        for (const auto& dag : shard.dags) {
            if (!dag->signature().intersects(request.ontologies)) {
                ++stats.dags_pruned;
                continue;
            }
            ++stats.dags_visited;
            const auto hits = dag->query_all(request, oracle, stats);
            all.insert(all.end(), hits.begin(), hits.end());
        }
    }
    return all;
}

std::vector<MatchHit> DagIndex::query(const ResolvedCapability& request,
                                      matching::DistanceOracle& oracle,
                                      MatchStats& stats) const {
    std::vector<MatchHit> best;
    for (std::size_t s = 0; s < shard_count_; ++s) {
        const Shard& shard = shards_[s];
        if (shard.dag_count.load(std::memory_order_acquire) == 0) continue;
        std::shared_lock lock(shard.mutex, std::try_to_lock);
        if (!lock.owns_lock()) {
            if (contention_ != nullptr) contention_->inc();
            lock.lock();
        }
        for (const auto& dag : shard.dags) {
            if (!dag->signature().intersects(request.ontologies)) {
                ++stats.dags_pruned;
                continue;
            }
            ++stats.dags_visited;
            std::vector<MatchHit> hits = dag->query(request, oracle, stats);
            if (hits.empty()) continue;
            if (best.empty() || hits.front().semantic_distance <
                                    best.front().semantic_distance) {
                best = std::move(hits);
            } else if (hits.front().semantic_distance ==
                       best.front().semantic_distance) {
                best.insert(best.end(), hits.begin(), hits.end());
            }
        }
    }
    return best;
}

std::size_t DagIndex::dag_count() const noexcept {
    std::size_t count = 0;
    for (std::size_t s = 0; s < shard_count_; ++s) {
        std::shared_lock lock(shards_[s].mutex);
        count += shards_[s].dags.size();
    }
    return count;
}

std::size_t DagIndex::entry_count() const noexcept {
    std::size_t count = 0;
    for (std::size_t s = 0; s < shard_count_; ++s) {
        std::shared_lock lock(shards_[s].mutex);
        for (const auto& dag : shards_[s].dags) count += dag->entry_count();
    }
    return count;
}

void DagIndex::for_each_dag(
    const std::function<void(const CapabilityDag&)>& visit) const {
    for (std::size_t s = 0; s < shard_count_; ++s) {
        std::shared_lock lock(shards_[s].mutex);
        for (const auto& dag : shards_[s].dags) visit(*dag);
    }
}

}  // namespace sariadne::directory
