#include "directory/dag_index.hpp"

#include <algorithm>
#include <mutex>

namespace sariadne::directory {

CapabilityDag& DagIndex::dag_for_locked(Shard& shard,
                                        const FlatSet<OntologyIndex>& signature) {
    for (const auto& dag : shard.dags) {
        if (dag->signature() == signature) return *dag;
    }
    shard.dags.push_back(std::make_unique<CapabilityDag>(signature));
    shard.dag_count.store(shard.dags.size(), std::memory_order_release);
    return *shard.dags.back();
}

void DagIndex::insert(DagEntry entry, matching::DistanceOracle& oracle,
                      MatchStats& stats) {
    Shard& shard = shards_[shard_of(entry.capability.ontologies)];
    std::unique_lock lock(shard.mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
        if (contention_ != nullptr) contention_->inc();
        lock.lock();
    }
    CapabilityDag& dag = dag_for_locked(shard, entry.capability.ontologies);
    dag.insert(std::move(entry), oracle, stats);
}

std::size_t DagIndex::remove_service(ServiceId service) {
    std::size_t removed = 0;
    for (std::size_t s = 0; s < shard_count_; ++s) {
        Shard& shard = shards_[s];
        std::unique_lock lock(shard.mutex);
        for (const auto& dag : shard.dags) removed += dag->remove_service(service);
        shard.dags.erase(
            std::remove_if(shard.dags.begin(), shard.dags.end(),
                           [](const std::unique_ptr<CapabilityDag>& dag) {
                               return dag->empty();
                           }),
            shard.dags.end());
        shard.dag_count.store(shard.dags.size(), std::memory_order_release);
    }
    return removed;
}

std::vector<MatchHit> DagIndex::query_all(const ResolvedCapability& request,
                                          matching::DistanceOracle& oracle,
                                          MatchStats& stats) const {
    std::vector<MatchHit> all;
    for (std::size_t s = 0; s < shard_count_; ++s) {
        const Shard& shard = shards_[s];
        if (shard.dag_count.load(std::memory_order_acquire) == 0) continue;
        std::shared_lock lock(shard.mutex, std::try_to_lock);
        if (!lock.owns_lock()) {
            if (contention_ != nullptr) contention_->inc();
            lock.lock();
        }
        for (const auto& dag : shard.dags) {
            if (!dag->signature().intersects(request.ontologies)) {
                ++stats.dags_pruned;
                continue;
            }
            ++stats.dags_visited;
            const auto hits = dag->query_all(request, oracle, stats);
            all.insert(all.end(), hits.begin(), hits.end());
        }
    }
    return all;
}

std::vector<MatchHit> DagIndex::query(const ResolvedCapability& request,
                                      matching::DistanceOracle& oracle,
                                      MatchStats& stats) const {
    std::vector<MatchHit> best;
    for (std::size_t s = 0; s < shard_count_; ++s) {
        const Shard& shard = shards_[s];
        if (shard.dag_count.load(std::memory_order_acquire) == 0) continue;
        std::shared_lock lock(shard.mutex, std::try_to_lock);
        if (!lock.owns_lock()) {
            if (contention_ != nullptr) contention_->inc();
            lock.lock();
        }
        for (const auto& dag : shard.dags) {
            if (!dag->signature().intersects(request.ontologies)) {
                ++stats.dags_pruned;
                continue;
            }
            ++stats.dags_visited;
            std::vector<MatchHit> hits = dag->query(request, oracle, stats);
            if (hits.empty()) continue;
            if (best.empty() || hits.front().semantic_distance <
                                    best.front().semantic_distance) {
                best = std::move(hits);
            } else if (hits.front().semantic_distance ==
                       best.front().semantic_distance) {
                best.insert(best.end(), hits.begin(), hits.end());
            }
        }
    }
    return best;
}

std::size_t DagIndex::dag_count() const noexcept {
    std::size_t count = 0;
    for (std::size_t s = 0; s < shard_count_; ++s) {
        std::shared_lock lock(shards_[s].mutex);
        count += shards_[s].dags.size();
    }
    return count;
}

std::size_t DagIndex::entry_count() const noexcept {
    std::size_t count = 0;
    for (std::size_t s = 0; s < shard_count_; ++s) {
        std::shared_lock lock(shards_[s].mutex);
        for (const auto& dag : shards_[s].dags) count += dag->entry_count();
    }
    return count;
}

void DagIndex::for_each_dag(
    const std::function<void(const CapabilityDag&)>& visit) const {
    for (std::size_t s = 0; s < shard_count_; ++s) {
        std::shared_lock lock(shards_[s].mutex);
        for (const auto& dag : shards_[s].dags) visit(*dag);
    }
}

}  // namespace sariadne::directory
