#include "directory/dag_index.hpp"

#include <algorithm>

namespace sariadne::directory {

CapabilityDag& DagIndex::dag_for(const FlatSet<OntologyIndex>& signature) {
    for (const auto& dag : dags_) {
        if (dag->signature() == signature) return *dag;
    }
    dags_.push_back(std::make_unique<CapabilityDag>(signature));
    return *dags_.back();
}

void DagIndex::insert(DagEntry entry, matching::DistanceOracle& oracle,
                      MatchStats& stats) {
    CapabilityDag& dag = dag_for(entry.capability.ontologies);
    dag.insert(std::move(entry), oracle, stats);
}

std::size_t DagIndex::remove_service(ServiceId service) {
    std::size_t removed = 0;
    for (const auto& dag : dags_) removed += dag->remove_service(service);
    dags_.erase(std::remove_if(dags_.begin(), dags_.end(),
                               [](const std::unique_ptr<CapabilityDag>& dag) {
                                   return dag->empty();
                               }),
                dags_.end());
    return removed;
}

std::vector<MatchHit> DagIndex::query_all(const ResolvedCapability& request,
                                          matching::DistanceOracle& oracle,
                                          MatchStats& stats) const {
    std::vector<MatchHit> all;
    for (const auto& dag : dags_) {
        if (!dag->signature().intersects(request.ontologies)) {
            ++stats.dags_pruned;
            continue;
        }
        ++stats.dags_visited;
        const auto hits = dag->query_all(request, oracle, stats);
        all.insert(all.end(), hits.begin(), hits.end());
    }
    return all;
}

std::vector<MatchHit> DagIndex::query(const ResolvedCapability& request,
                                      matching::DistanceOracle& oracle,
                                      MatchStats& stats) const {
    std::vector<MatchHit> best;
    for (const auto& dag : dags_) {
        if (!dag->signature().intersects(request.ontologies)) {
            ++stats.dags_pruned;
            continue;
        }
        ++stats.dags_visited;
        std::vector<MatchHit> hits = dag->query(request, oracle, stats);
        if (hits.empty()) continue;
        if (best.empty() || hits.front().semantic_distance <
                                best.front().semantic_distance) {
            best = std::move(hits);
        } else if (hits.front().semantic_distance ==
                   best.front().semantic_distance) {
            best.insert(best.end(), hits.begin(), hits.end());
        }
    }
    return best;
}

}  // namespace sariadne::directory
