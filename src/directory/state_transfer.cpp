#include "directory/state_transfer.hpp"

#include "description/amigos_io.hpp"
#include "support/errors.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace sariadne::directory {

std::string export_state(const SemanticDirectory& directory) {
    xml::XmlNode root("directory-state");
    std::size_t count = 0;
    // ServiceId handles are directory-local; only the descriptions travel.
    for (ServiceId id = 1; id < directory.next_service_id(); ++id) {
        const desc::ServiceDescription* service = directory.service(id);
        if (service == nullptr) continue;
        // Re-parse the serialized form into a DOM subtree so the bundle is
        // one well-formed document.
        const std::string text = desc::serialize_service(*service);
        root.add_child(xml::parse(text).root);
        ++count;
    }
    root.set_attribute("services", std::to_string(count));
    return xml::write(root);
}

std::size_t import_state(SemanticDirectory& directory,
                         std::string_view state_xml) {
    const xml::XmlDocument doc = xml::parse(state_xml);
    if (doc.root.name() != "directory-state") {
        throw ParseError("expected <directory-state> root element, got <" +
                         doc.root.name() + ">");
    }
    // One batch publish for the whole handover bundle: a single service-
    // table critical section and at most one summary rebuild instead of a
    // rebuild per imported service.
    std::vector<desc::ServiceDescription> batch;
    batch.reserve(doc.root.children().size());
    for (const auto& node : doc.root.children()) {
        batch.push_back(desc::parse_service(node));
    }
    const std::size_t imported = batch.size();
    directory.publish_batch(std::move(batch));
    return imported;
}

}  // namespace sariadne::directory
