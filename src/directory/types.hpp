// Shared vocabulary of the directory layer: match hits, statistics and
// timing breakdowns used by the evaluation harness (Figures 7-10 plot
// exactly these quantities), plus the facade-level QueryOptions /
// PublishReceipt value types.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace sariadne::directory {

/// Handle of a published service inside one directory.
using ServiceId = std::uint32_t;

/// One advertisement capability matching a requested capability.
struct MatchHit {
    ServiceId service = 0;
    std::string service_name;
    std::string capability_name;
    int semantic_distance = 0;
};

/// Work counters for one directory operation. `capability_matches` is the
/// paper's "number of semantic matches performed" (capability-level Match
/// evaluations); `concept_queries` counts d() evaluations underneath;
/// `quick_rejects` counts DAG vertices skipped by the summary pre-filter
/// *instead of* a Match evaluation, and `reachability_prunes` vertices
/// skipped because an earlier failed Match provably dooms them through the
/// DAG's transitive closure. Every probed vertex bumps exactly one of the
/// three, so capability_matches + quick_rejects + reachability_prunes is
/// the number of vertices actually probed — invariant whether pruning is
/// enabled or not.
struct MatchStats {
    std::uint64_t capability_matches = 0;
    std::uint64_t concept_queries = 0;
    std::uint64_t dags_visited = 0;
    std::uint64_t dags_pruned = 0;
    std::uint64_t quick_rejects = 0;
    std::uint64_t reachability_prunes = 0;
    /// Heap allocations charged to query scratch during this operation —
    /// the per-query delta of the scratch arena's chunk count (see
    /// support/arena.hpp). Cold queries may grow the arena; the steady
    /// state must report 0 (gated by micro_kernels' allocation check).
    std::uint64_t scratch_allocs = 0;
};

/// Wall-clock breakdown of a publish operation (Figure 7/8 series).
struct PublishTiming {
    double parse_ms = 0;   ///< XML parsing of the service description
    double insert_ms = 0;  ///< classification into the capability DAGs

    double total_ms() const noexcept { return parse_ms + insert_ms; }
};

/// Wall-clock breakdown of a query (Figure 9/10 series; parse reported
/// separately because the paper excludes it in Figure 9).
struct QueryTiming {
    double parse_ms = 0;
    double match_ms = 0;

    double total_ms() const noexcept { return parse_ms + match_ms; }
};

}  // namespace sariadne::directory

namespace sariadne {

/// Caller-tunable knobs of one discovery query, threaded through
/// DiscoveryEngine::discover and SemanticDirectory::query. The defaults
/// reproduce the paper's behavior exactly: per requested capability,
/// every hit at the minimal semantic distance.
struct QueryOptions {
    /// 0 keeps the legacy best-distance-only answer; k > 0 instead returns
    /// up to k hits per capability, closest (smallest distance) first.
    std::size_t top_k = 0;

    /// Hits farther than this semantic distance are dropped; negative
    /// means unlimited.
    int max_distance = -1;

    /// When set, a request is all-or-nothing: if any requested capability
    /// has no admissible hit, every per-capability hit list comes back
    /// empty (the shape of the request is preserved).
    bool require_all_capabilities = false;

    /// Fan the per-capability matching of a multi-capability request
    /// across DiscoveryEngine's worker pool. Only honoured by
    /// DiscoveryEngine; SemanticDirectory itself always matches inline.
    bool parallel = false;
};

/// Outcome of publishing a service description: the issued handle plus the
/// Figure 7/8 timing breakdown. Aggregate, so structured bindings keep
/// working: `auto [id, timing] = directory.publish_xml(doc);`
struct PublishReceipt {
    directory::ServiceId id = 0;
    directory::PublishTiming timing;
};

}  // namespace sariadne
