// Shared vocabulary of the directory layer: match hits, statistics and
// timing breakdowns used by the evaluation harness (Figures 7-10 plot
// exactly these quantities).
#pragma once

#include <cstdint>
#include <string>

namespace sariadne::directory {

/// Handle of a published service inside one directory.
using ServiceId = std::uint32_t;

/// One advertisement capability matching a requested capability.
struct MatchHit {
    ServiceId service = 0;
    std::string service_name;
    std::string capability_name;
    int semantic_distance = 0;
};

/// Work counters for one directory operation. `capability_matches` is the
/// paper's "number of semantic matches performed" (capability-level Match
/// evaluations); `concept_queries` counts d() evaluations underneath.
struct MatchStats {
    std::uint64_t capability_matches = 0;
    std::uint64_t concept_queries = 0;
    std::uint64_t dags_visited = 0;
    std::uint64_t dags_pruned = 0;
};

/// Wall-clock breakdown of a publish operation (Figure 7/8 series).
struct PublishTiming {
    double parse_ms = 0;   ///< XML parsing of the service description
    double insert_ms = 0;  ///< classification into the capability DAGs

    double total_ms() const noexcept { return parse_ms + insert_ms; }
};

/// Wall-clock breakdown of a query (Figure 9/10 series; parse reported
/// separately because the paper excludes it in Figure 9).
struct QueryTiming {
    double parse_ms = 0;
    double match_ms = 0;

    double total_ms() const noexcept { return parse_ms + match_ms; }
};

}  // namespace sariadne::directory
