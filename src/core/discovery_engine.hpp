// DiscoveryEngine — the library's top-level facade. Wraps a knowledge base
// and a semantic directory behind a three-verb API:
//
//   register_ontology(xml)  — load an ontology (classification + interval
//                             encoding happen offline, lazily per version)
//   publish(xml)            — advertise an Amigo-S service description
//   discover(xml)           — match a service request, ranked by semantic
//                             distance
//
// This is the single-node embodiment of the paper's contribution: all
// semantic reasoning is front-loaded, discovery is numeric code
// comparison over classified capability DAGs. For the distributed
// protocol, see ariadne::DiscoveryNetwork, which composes the same
// directory per elected node.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "directory/semantic_directory.hpp"
#include "encoding/knowledge_base.hpp"
#include "ontology/loader.hpp"

namespace sariadne {

/// One ranked discovery answer.
struct Discovery {
    std::string service_name;
    std::string capability_name;
    int semantic_distance = 0;
    /// Grounding of the advertised service (how to invoke it).
    desc::Grounding grounding;
};

class DiscoveryEngine {
public:
    explicit DiscoveryEngine(encoding::EncodingParams params = {})
        : kb_(std::make_unique<encoding::KnowledgeBase>(params)),
          directory_(std::make_unique<directory::SemanticDirectory>(*kb_)) {}

    /// Loads an ontology document; re-registering a URI upgrades it.
    void register_ontology_xml(std::string_view ontology_xml) {
        kb_->register_ontology(onto::load_ontology(ontology_xml));
    }

    void register_ontology(onto::Ontology ontology) {
        kb_->register_ontology(std::move(ontology));
    }

    /// Publishes an Amigo-S service description. Returns its handle.
    directory::ServiceId publish(std::string_view service_xml) {
        return directory_->publish_xml(service_xml).first;
    }

    directory::ServiceId publish(desc::ServiceDescription service) {
        return directory_->publish(std::move(service));
    }

    /// Withdraws a previously published service.
    bool withdraw(directory::ServiceId service) {
        return directory_->remove(service);
    }

    /// Matches a request document; per requested capability, the hits with
    /// minimal semantic distance (empty inner vector = unsatisfied).
    std::vector<std::vector<Discovery>> discover(std::string_view request_xml) {
        return to_discoveries(directory_->query_xml(request_xml));
    }

    std::vector<std::vector<Discovery>> discover(
        const desc::ServiceRequest& request) {
        return to_discoveries(directory_->query(request));
    }

    encoding::KnowledgeBase& knowledge_base() noexcept { return *kb_; }
    directory::SemanticDirectory& directory() noexcept { return *directory_; }
    const directory::SemanticDirectory& directory() const noexcept {
        return *directory_;
    }

private:
    std::vector<std::vector<Discovery>> to_discoveries(
        const directory::QueryResult& result) const {
        std::vector<std::vector<Discovery>> out;
        out.reserve(result.per_capability.size());
        for (const auto& hits : result.per_capability) {
            std::vector<Discovery> row;
            row.reserve(hits.size());
            for (const auto& hit : hits) {
                Discovery discovery;
                discovery.service_name = hit.service_name;
                discovery.capability_name = hit.capability_name;
                discovery.semantic_distance = hit.semantic_distance;
                if (const auto* service = directory_->service(hit.service)) {
                    discovery.grounding = service->grounding;
                }
                row.push_back(std::move(discovery));
            }
            out.push_back(std::move(row));
        }
        return out;
    }

    std::unique_ptr<encoding::KnowledgeBase> kb_;
    std::unique_ptr<directory::SemanticDirectory> directory_;
};

}  // namespace sariadne
