// DiscoveryEngine — the library's top-level facade. Wraps a knowledge base
// and a semantic directory behind a three-verb API:
//
//   register_ontology(xml)  — load an ontology (classification + interval
//                             encoding happen offline, lazily per version)
//   publish(xml)            — advertise an Amigo-S service description
//   discover(xml, options)  — match a service request, ranked by semantic
//                             distance, tunable via QueryOptions
//
// This is the single-node embodiment of the paper's contribution: all
// semantic reasoning is front-loaded, discovery is numeric code
// comparison over classified capability DAGs. For the distributed
// protocol, see ariadne::DiscoveryNetwork, which composes the same
// directory per elected node.
//
// Thread safety mirrors SemanticDirectory: publish / withdraw / discover /
// try_* may run concurrently from any number of threads; ontology
// registration must be quiesced. QueryOptions::parallel additionally fans
// a multi-capability request across the engine's internal worker pool.
//
// Error contract: publish/discover (and register_ontology) throw the
// exception taxonomy of support/errors.hpp (ParseError, LookupError,
// InconsistencyError, VersionMismatchError). try_publish/try_discover
// never throw those — they return Result<T> carrying ErrorInfo instead —
// so network-facing callers get a branchable outcome per message.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "directory/semantic_directory.hpp"
#include "directory/types.hpp"
#include "reasoner/knowledge_base.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "ontology/loader.hpp"
#include "support/lock_rank.hpp"
#include "support/result.hpp"
#include "support/thread_pool.hpp"

namespace sariadne {

/// One ranked discovery answer.
struct Discovery {
    std::string service_name;
    std::string capability_name;
    int semantic_distance = 0;
    /// Grounding of the advertised service (how to invoke it).
    desc::Grounding grounding;
};

class DiscoveryEngine {
public:
    /// Per requested capability (request order), the ranked hits.
    using DiscoveryRows = std::vector<std::vector<Discovery>>;

    explicit DiscoveryEngine(encoding::EncodingParams params = {})
        : kb_(std::make_unique<encoding::KnowledgeBase>(params)),
          metrics_(std::make_unique<obs::MetricsRegistry>()),
          directory_(std::make_unique<directory::SemanticDirectory>(
              *kb_, bloom::BloomParams{}, metrics_.get())) {
        engine_metrics_.discoveries = &metrics_->counter(obs::names::kEngineDiscoveries);
        engine_metrics_.discoveries_parallel =
            &metrics_->counter(obs::names::kEngineDiscoveriesParallel);
        engine_metrics_.discoveries_satisfied =
            &metrics_->counter(obs::names::kEngineDiscoveriesSatisfied);
        engine_metrics_.discoveries_unsatisfied =
            &metrics_->counter(obs::names::kEngineDiscoveriesUnsatisfied);
        engine_metrics_.pool_tasks = &metrics_->counter(obs::names::kEnginePoolTasks);
        engine_metrics_.pool_workers = &metrics_->gauge(obs::names::kEnginePoolWorkers);
        engine_metrics_.discover_ms = &metrics_->histogram(obs::names::kEngineDiscoverMs);
    }

    /// Loads an ontology document; re-registering a URI upgrades it.
    /// Requires quiescence (no concurrent publish/discover traffic).
    void register_ontology_xml(std::string_view ontology_xml) {
        kb_->register_ontology(onto::load_ontology(ontology_xml));
    }

    void register_ontology(onto::Ontology ontology) {
        kb_->register_ontology(std::move(ontology));
    }

    // --- publish --------------------------------------------------------
    /// Publishes an Amigo-S service description. Returns its handle.
    directory::ServiceId publish(std::string_view service_xml) {
        return directory_->publish_xml(service_xml).id;
    }

    directory::ServiceId publish(desc::ServiceDescription service) {
        return directory_->publish(std::move(service)).id;
    }

    /// Non-throwing publish: the receipt (handle + timing breakdown) on
    /// success, the classified error otherwise.
    Result<PublishReceipt> try_publish(std::string_view service_xml);

    /// Bulk publish of already-parsed descriptions — one service-table
    /// critical section, one DAG shard lock per shard run, at most one
    /// summary rebuild (SemanticDirectory::publish_batch). Returns the
    /// issued handles in batch order.
    std::vector<directory::ServiceId> publish_batch(
        std::vector<desc::ServiceDescription> batch);

    /// Non-throwing bulk publish from XML documents. All-or-nothing: a
    /// parse or version failure in any member rejects the whole batch with
    /// the directory untouched.
    Result<std::vector<PublishReceipt>> try_publish_batch(
        std::vector<std::string> service_xmls);

    /// Withdraws a previously published service.
    bool withdraw(directory::ServiceId service) {
        return directory_->remove(service);
    }

    // --- discover -------------------------------------------------------
    /// Matches a request document; per requested capability, the ranked
    /// hits (with default options: every hit at the minimal semantic
    /// distance; empty inner vector = unsatisfied).
    DiscoveryRows discover(std::string_view request_xml,
                           const QueryOptions& options = {});

    DiscoveryRows discover(const desc::ServiceRequest& request,
                           const QueryOptions& options = {});

    /// Non-throwing discover for network-facing callers.
    Result<DiscoveryRows> try_discover(std::string_view request_xml,
                                       const QueryOptions& options = {});

    /// Matches a pipelined burst of requests in one call, reusing a single
    /// QueryResult (and its hit vectors/strings) across the whole burst so
    /// per-request result-buffer allocations amortize to zero; each request
    /// still counts as one discovery in the metrics. Answers come back in
    /// request order.
    std::vector<DiscoveryRows> discover_batch(
        const std::vector<desc::ServiceRequest>& requests,
        const QueryOptions& options = {});

    /// Non-throwing burst discover from XML documents. All-or-nothing on
    /// parse: a malformed member rejects the whole batch before any
    /// matching runs.
    Result<std::vector<DiscoveryRows>> try_discover_batch(
        const std::vector<std::string>& request_xmls,
        const QueryOptions& options = {});

    encoding::KnowledgeBase& knowledge_base() noexcept { return *kb_; }
    directory::SemanticDirectory& directory() noexcept { return *directory_; }
    const directory::SemanticDirectory& directory() const noexcept {
        return *directory_;
    }

    /// The engine-owned metrics registry: `engine.*` counters plus the
    /// `directory.*` metrics of the embedded directory. Callers may point
    /// further components (e.g. a DiscoveryNetwork) at the same registry
    /// to get one unified exposition.
    obs::MetricsRegistry& metrics() noexcept { return *metrics_; }
    const obs::MetricsRegistry& metrics() const noexcept { return *metrics_; }

private:
    DiscoveryRows to_discoveries(const directory::QueryResult& result) const;

    /// Fans the per-capability matching across the worker pool; falls back
    /// to the inline path for single-capability requests.
    directory::QueryResult query_parallel(const desc::ServiceRequest& request,
                                          const QueryOptions& options);

    /// The engine's worker pool, created on first parallel query.
    support::ThreadPool& pool();

    /// Classifies one finished discover call into the outcome counters and
    /// the latency histogram.
    void record_discovery(const DiscoveryRows& rows, const QueryOptions& options,
                          double elapsed_ms);

    /// Cached engine-level registry handles (the registry itself is owned,
    /// so these are always non-null after construction).
    struct EngineMetrics {
        obs::Counter* discoveries = nullptr;
        obs::Counter* discoveries_parallel = nullptr;
        obs::Counter* discoveries_satisfied = nullptr;
        obs::Counter* discoveries_unsatisfied = nullptr;
        obs::Counter* pool_tasks = nullptr;
        obs::Gauge* pool_workers = nullptr;
        obs::Histogram* discover_ms = nullptr;
    };

    std::unique_ptr<encoding::KnowledgeBase> kb_;
    /// Declared before directory_: the directory caches handles into this
    /// registry at construction and uses them until its own destruction.
    std::unique_ptr<obs::MetricsRegistry> metrics_;
    EngineMetrics engine_metrics_;
    std::unique_ptr<directory::SemanticDirectory> directory_;
    /// Guards lazy pool_ creation. Outermost rank: held only around the
    /// pool's construction, released before any task is submitted.
    support::RankedMutex pool_mutex_{support::LockRank::kEnginePool};
    std::unique_ptr<support::ThreadPool> pool_;
};

}  // namespace sariadne
