// Composition planning over required capabilities (§2.2). Amigo-S models
// *required* capabilities explicitly — functionality a service needs from
// other networked services — "enabling any service composition scheme".
// The planner implements the centrally-coordinated scheme: starting from a
// root service description, it resolves every required capability against
// a semantic directory, then recursively resolves the *providers'* own
// required capabilities, producing a dependency-ordered plan (or a precise
// failure description). Cycles are broken by refusing to expand a service
// already on the current resolution path.
#pragma once

#include <string>
#include <vector>

#include "directory/semantic_directory.hpp"

namespace sariadne {

/// One resolved dependency edge of the plan.
struct CompositionStep {
    std::string consumer_service;      ///< who needs the capability
    std::string required_capability;   ///< what it needs
    std::string provider_service;      ///< who supplies it
    std::string provided_capability;   ///< the matched provided capability
    int semantic_distance = 0;
    desc::Grounding grounding;         ///< how to reach the provider
};

/// A requirement the directory could not satisfy.
struct CompositionGap {
    std::string consumer_service;
    std::string required_capability;
    std::string reason;
};

struct CompositionPlan {
    /// Dependency order: a step appears after the steps resolving its
    /// provider's own requirements, so executing front-to-back wires leaf
    /// services first.
    std::vector<CompositionStep> steps;
    std::vector<CompositionGap> gaps;

    bool complete() const noexcept { return gaps.empty(); }
};

class CompositionPlanner {
public:
    /// `max_depth` bounds transitive resolution (root = depth 0).
    explicit CompositionPlanner(directory::SemanticDirectory& directory,
                                int max_depth = 8)
        : directory_(&directory), max_depth_(max_depth) {}

    /// Plans the composition rooted at `root`: resolves each of its
    /// required capabilities and, transitively, those of every chosen
    /// provider.
    CompositionPlan plan(const desc::ServiceDescription& root);

private:
    void resolve_requirements(const desc::ServiceDescription& service,
                              int depth, std::vector<std::string>& path,
                              CompositionPlan& plan);

    directory::SemanticDirectory* directory_;
    int max_depth_;
};

}  // namespace sariadne
