#include "core/discovery_engine.hpp"

#include <future>
#include <utility>

#include "description/amigos_io.hpp"
#include "support/catching.hpp"
#include "support/errors.hpp"
#include "support/stopwatch.hpp"

namespace sariadne {

using support::catching;

namespace {

bool has_constraints(const desc::ServiceRequest& request) {
    return !request.qos_constraints.empty() ||
           !request.context_constraints.empty() || request.process.has_value();
}

}  // namespace

Result<PublishReceipt> DiscoveryEngine::try_publish(
    std::string_view service_xml) {
    return catching<PublishReceipt>(
        [&] { return directory_->publish_xml(service_xml); });
}

std::vector<directory::ServiceId> DiscoveryEngine::publish_batch(
    std::vector<desc::ServiceDescription> batch) {
    const auto receipts = directory_->publish_batch(std::move(batch));
    std::vector<directory::ServiceId> ids;
    ids.reserve(receipts.size());
    for (const auto& receipt : receipts) ids.push_back(receipt.id);
    return ids;
}

Result<std::vector<PublishReceipt>> DiscoveryEngine::try_publish_batch(
    std::vector<std::string> service_xmls) {
    return catching<std::vector<PublishReceipt>>([&] {
        // Parse the whole batch before publishing any member, preserving
        // publish_batch's all-or-nothing contract across the parse phase.
        std::vector<desc::ServiceDescription> batch;
        batch.reserve(service_xmls.size());
        for (const std::string& xml : service_xmls) {
            batch.push_back(desc::parse_service(xml));
        }
        return directory_->publish_batch(std::move(batch));
    });
}

DiscoveryEngine::DiscoveryRows DiscoveryEngine::discover(
    std::string_view request_xml, const QueryOptions& options) {
    Stopwatch stopwatch;
    DiscoveryRows rows =
        options.parallel
            ? to_discoveries(
                  query_parallel(desc::parse_request(request_xml), options))
            : to_discoveries(directory_->query_xml(request_xml, options));
    record_discovery(rows, options, stopwatch.elapsed_ms());
    return rows;
}

DiscoveryEngine::DiscoveryRows DiscoveryEngine::discover(
    const desc::ServiceRequest& request, const QueryOptions& options) {
    Stopwatch stopwatch;
    DiscoveryRows rows = options.parallel
                             ? to_discoveries(query_parallel(request, options))
                             : to_discoveries(directory_->query(request, options));
    record_discovery(rows, options, stopwatch.elapsed_ms());
    return rows;
}

void DiscoveryEngine::record_discovery(const DiscoveryRows& rows,
                                       const QueryOptions& options,
                                       double elapsed_ms) {
    engine_metrics_.discoveries->inc();
    if (options.parallel) engine_metrics_.discoveries_parallel->inc();
    bool satisfied = !rows.empty();
    for (const auto& row : rows) {
        if (row.empty()) satisfied = false;
    }
    if (satisfied) {
        engine_metrics_.discoveries_satisfied->inc();
    } else {
        engine_metrics_.discoveries_unsatisfied->inc();
    }
    engine_metrics_.discover_ms->observe(elapsed_ms);
}

Result<DiscoveryEngine::DiscoveryRows> DiscoveryEngine::try_discover(
    std::string_view request_xml, const QueryOptions& options) {
    return catching<DiscoveryRows>(
        [&] { return discover(request_xml, options); });
}

std::vector<DiscoveryEngine::DiscoveryRows> DiscoveryEngine::discover_batch(
    const std::vector<desc::ServiceRequest>& requests,
    const QueryOptions& options) {
    std::vector<DiscoveryRows> all;
    all.reserve(requests.size());
    // One QueryResult for the whole burst: query_prepared overwrites it in
    // place, recycling the per-capability vectors and hit strings, so the
    // matching itself allocates nothing once the buffers are warm (the
    // returned DiscoveryRows are fresh — they cross the API boundary).
    directory::QueryResult scratch;
    for (const desc::ServiceRequest& request : requests) {
        Stopwatch stopwatch;
        directory_->query_prepared(request,
                                   desc::resolve_request(request, *kb_),
                                   options, scratch);
        DiscoveryRows rows = to_discoveries(scratch);
        record_discovery(rows, options, stopwatch.elapsed_ms());
        all.push_back(std::move(rows));
    }
    return all;
}

Result<std::vector<DiscoveryEngine::DiscoveryRows>>
DiscoveryEngine::try_discover_batch(const std::vector<std::string>& request_xmls,
                                    const QueryOptions& options) {
    return catching<std::vector<DiscoveryRows>>([&] {
        std::vector<desc::ServiceRequest> requests;
        requests.reserve(request_xmls.size());
        for (const std::string& xml : request_xmls) {
            requests.push_back(desc::parse_request(xml));
        }
        return discover_batch(requests, options);
    });
}

directory::QueryResult DiscoveryEngine::query_parallel(
    const desc::ServiceRequest& request, const QueryOptions& options) {
    const auto resolved = desc::resolve_request(request, kb_->registry());
    if (resolved.size() < 2) return directory_->query(request, options);

    const desc::ServiceRequest* constraints =
        has_constraints(request) ? &request : nullptr;

    Stopwatch stopwatch;
    directory::QueryResult result;
    result.per_capability.resize(resolved.size());

    using CapabilityAnswer =
        std::pair<std::vector<directory::MatchHit>, directory::MatchStats>;
    std::vector<std::future<CapabilityAnswer>> answers;
    answers.reserve(resolved.size());
    engine_metrics_.pool_tasks->inc(resolved.size());
    for (std::size_t i = 0; i < resolved.size(); ++i) {
        answers.push_back(pool().submit([this, &resolved, constraints, &options,
                                         i]() -> CapabilityAnswer {
            directory::MatchStats stats;
            auto hits = directory_->query_capability(resolved[i], constraints,
                                                     options, stats);
            return {std::move(hits), stats};
        }));
    }
    for (std::size_t i = 0; i < resolved.size(); ++i) {
        auto [hits, stats] = answers[i].get();
        result.per_capability[i] = std::move(hits);
        result.stats.capability_matches += stats.capability_matches;
        result.stats.concept_queries += stats.concept_queries;
        result.stats.dags_visited += stats.dags_visited;
        result.stats.dags_pruned += stats.dags_pruned;
        result.stats.quick_rejects += stats.quick_rejects;
        result.stats.reachability_prunes += stats.reachability_prunes;
        result.stats.scratch_allocs += stats.scratch_allocs;
    }
    if (options.require_all_capabilities && !result.fully_satisfied()) {
        for (auto& hits : result.per_capability) hits.clear();
    }
    result.timing.match_ms = stopwatch.elapsed_ms();
    return result;
}

support::ThreadPool& DiscoveryEngine::pool() {
    std::lock_guard lock(pool_mutex_);
    if (!pool_) {
        pool_ = std::make_unique<support::ThreadPool>(
            support::ThreadPool::default_worker_count());
        engine_metrics_.pool_workers->set(
            static_cast<std::int64_t>(pool_->worker_count()));
    }
    return *pool_;
}

DiscoveryEngine::DiscoveryRows DiscoveryEngine::to_discoveries(
    const directory::QueryResult& result) const {
    DiscoveryRows out;
    out.reserve(result.per_capability.size());
    for (const auto& hits : result.per_capability) {
        std::vector<Discovery> row;
        row.reserve(hits.size());
        for (const auto& hit : hits) {
            Discovery discovery;
            discovery.service_name = hit.service_name;
            discovery.capability_name = hit.capability_name;
            discovery.semantic_distance = hit.semantic_distance;
            if (auto grounding = directory_->grounding(hit.service)) {
                discovery.grounding = std::move(*grounding);
            }
            row.push_back(std::move(discovery));
        }
        out.push_back(std::move(row));
    }
    return out;
}

}  // namespace sariadne
