#include "core/composition.hpp"

#include <algorithm>

namespace sariadne {

CompositionPlan CompositionPlanner::plan(const desc::ServiceDescription& root) {
    CompositionPlan result;
    std::vector<std::string> path{root.profile.service_name};
    resolve_requirements(root, 0, path, result);
    return result;
}

void CompositionPlanner::resolve_requirements(
    const desc::ServiceDescription& service, int depth,
    std::vector<std::string>& path, CompositionPlan& plan) {
    if (depth >= max_depth_) {
        for (const auto* cap :
             service.profile.capabilities_of(desc::CapabilityKind::kRequired)) {
            plan.gaps.push_back(CompositionGap{service.profile.service_name,
                                               cap->name,
                                               "max composition depth reached"});
        }
        return;
    }

    for (const auto* required :
         service.profile.capabilities_of(desc::CapabilityKind::kRequired)) {
        desc::ServiceRequest request;
        request.requester = service.profile.service_name;
        request.capabilities.push_back(*required);

        const directory::QueryResult result = directory_->query(request);
        const auto& hits = result.per_capability.front();
        if (hits.empty()) {
            plan.gaps.push_back(CompositionGap{
                service.profile.service_name, required->name,
                "no networked capability matches"});
            continue;
        }

        // Among equally-close hits, prefer a provider not already on the
        // resolution path (avoids self-composition); fall back to the first.
        const directory::MatchHit* chosen = &hits.front();
        for (const auto& hit : hits) {
            if (std::find(path.begin(), path.end(), hit.service_name) ==
                path.end()) {
                chosen = &hit;
                break;
            }
        }
        if (std::find(path.begin(), path.end(), chosen->service_name) !=
            path.end()) {
            plan.gaps.push_back(CompositionGap{
                service.profile.service_name, required->name,
                "only cyclic providers available ('" + chosen->service_name +
                    "' is already part of the composition)"});
            continue;
        }

        const desc::ServiceDescription* provider =
            directory_->service(chosen->service);
        // Resolve the provider's own requirements first (dependency order).
        if (provider != nullptr) {
            path.push_back(chosen->service_name);
            resolve_requirements(*provider, depth + 1, path, plan);
            path.pop_back();
        }

        CompositionStep step;
        step.consumer_service = service.profile.service_name;
        step.required_capability = required->name;
        step.provider_service = chosen->service_name;
        step.provided_capability = chosen->capability_name;
        step.semantic_distance = chosen->semantic_distance;
        if (provider != nullptr) step.grounding = provider->grounding;
        plan.steps.push_back(std::move(step));
    }
}

}  // namespace sariadne
