// Multi-level sparse trie bitmap over concept-code space — the exact
// directory-summary substrate (ROADMAP "exact interval-bitmap directory
// summaries", cbtSparseBitmap-style). Five fixed-fanout-64 levels cover a
// 2^30-bit universe; level 0 holds the payload words and every upper level
// holds one guard bit per nonzero word below it, so set/clear propagate at
// most `kLevels` steps and merge/intersect walk words, never bits. Each
// level is a sorted flat vector of {word_index, word} slots: populations
// here are concept codes held by one directory (hundreds to a few
// thousand), where binary-searched compact vectors beat pointer tries on
// locality and serialize for free (leaves only; uppers are derived).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sariadne::summary {

class SparseBitmap {
public:
    /// One nonzero 64-bit word of a level, keyed by its word index.
    struct Slot {
        std::uint32_t index = 0;
        std::uint64_t word = 0;

        friend bool operator==(const Slot&, const Slot&) noexcept = default;
    };

    static constexpr int kFanoutBits = 6;  // 64-ary trie
    static constexpr int kLevels = 5;
    static constexpr std::uint32_t kWordMask = (1u << kFanoutBits) - 1;
    /// Addressable bit universe: 64^5 = 2^30 codes, comfortably above the
    /// encoder's kMaxTotalOccurrences bound on per-ontology concept codes.
    static constexpr std::uint64_t kCapacity = 1ull << (kFanoutBits * kLevels);
    static constexpr std::uint32_t kMaxWordIndex =
        static_cast<std::uint32_t>(kCapacity >> kFanoutBits);

    /// Sets `bit`; returns true iff the bitmap changed. Guard propagation
    /// stops at the first level whose guard was already set.
    bool set(std::uint32_t bit) {
        assert(std::uint64_t{bit} < kCapacity);
        std::uint32_t cur = bit;
        bool changed = false;
        for (int level = 0; level < kLevels; ++level) {
            auto& slots = levels_[level];
            const std::uint32_t w = cur >> kFanoutBits;
            const std::uint64_t mask = 1ull << (cur & kWordMask);
            const auto it = slot_lower_bound(slots, w);
            if (it != slots.end() && it->index == w) {
                if ((it->word & mask) != 0) {
                    // Already present here ⇒ every upper guard is set too.
                    return changed;
                }
                it->word |= mask;
            } else {
                slots.insert(it, Slot{w, mask});
            }
            if (level == 0) changed = true;
            cur = w;
        }
        return changed;
    }

    /// Clears `bit`; returns true iff the bitmap changed. Guard bits are
    /// cleared upward only while the vacated word became empty.
    bool clear(std::uint32_t bit) {
        assert(std::uint64_t{bit} < kCapacity);
        std::uint32_t cur = bit;
        for (int level = 0; level < kLevels; ++level) {
            auto& slots = levels_[level];
            const std::uint32_t w = cur >> kFanoutBits;
            const std::uint64_t mask = 1ull << (cur & kWordMask);
            const auto it = slot_lower_bound(slots, w);
            if (it == slots.end() || it->index != w || (it->word & mask) == 0) {
                assert(level == 0 && "upper guard missing for nonzero word");
                return false;  // bit was not set
            }
            it->word &= ~mask;
            if (it->word != 0) return true;
            slots.erase(it);
            cur = w;
        }
        return true;
    }

    bool test(std::uint32_t bit) const noexcept {
        const std::uint32_t w = bit >> kFanoutBits;
        const auto it = slot_lower_bound(levels_[0], w);
        return it != levels_[0].end() && it->index == w &&
               (it->word & (1ull << (bit & kWordMask))) != 0;
    }

    bool empty() const noexcept { return levels_[0].empty(); }

    std::size_t popcount() const noexcept {
        std::size_t n = 0;
        for (const Slot& s : levels_[0]) n += std::popcount(s.word);
        return n;
    }

    /// Replaces the payload word at `word_index` wholesale (delta apply):
    /// `word == 0` erases the slot. Returns true iff the bitmap changed.
    bool replace_word(std::uint32_t word_index, std::uint64_t word) {
        assert(word_index < kMaxWordIndex);
        auto& leaves = levels_[0];
        const auto it = slot_lower_bound(leaves, word_index);
        const bool present = it != leaves.end() && it->index == word_index;
        if (word == 0) {
            if (!present) return false;
            leaves.erase(it);
            clear_guards_above(word_index);
            return true;
        }
        if (present) {
            if (it->word == word) return false;
            it->word = word;
            return true;  // word stays nonzero: guards unchanged
        }
        leaves.insert(it, Slot{word_index, word});
        set_guards_above(word_index);
        return true;
    }

    /// In-place union. Guards of a union are the union of guards, so every
    /// level merges independently word-at-a-time.
    void merge(const SparseBitmap& other) {
        for (int level = 0; level < kLevels; ++level) {
            merge_level(levels_[level], other.levels_[level]);
        }
    }

    /// True iff the two bitmaps share a set bit. Guard levels provide the
    /// early-out: disjoint guards at any level prove disjoint leaves.
    bool intersects(const SparseBitmap& other) const noexcept {
        for (int level = kLevels - 1; level > 0; --level) {
            if (!slots_intersect(levels_[level], other.levels_[level])) {
                return false;
            }
        }
        return slots_intersect(levels_[0], other.levels_[0]);
    }

    /// True iff any of the given (sorted or not) codes is set.
    bool intersects_codes(const std::vector<std::uint32_t>& codes) const noexcept {
        for (const std::uint32_t code : codes) {
            if (test(code)) return true;
        }
        return false;
    }

    void clear_all() noexcept {
        for (auto& slots : levels_) slots.clear();
    }

    /// Payload words in ascending index order — the serialized form and the
    /// delta-diff input.
    const std::vector<Slot>& leaves() const noexcept { return levels_[0]; }

    /// Word-at-a-time iteration over set bits in ascending order.
    /// `fn(std::uint32_t bit)`.
    template <typename Fn>
    void for_each_bit(Fn&& fn) const {
        for (const Slot& s : levels_[0]) {
            std::uint64_t word = s.word;
            while (word != 0) {
                const int b = std::countr_zero(word);
                fn((s.index << kFanoutBits) | static_cast<std::uint32_t>(b));
                word &= word - 1;
            }
        }
    }

    /// Rebuilds a bitmap from payload words. Returns false (leaving `out`
    /// empty) when the leaves violate the invariants: strictly increasing
    /// indices, nonzero words, indices below kMaxWordIndex.
    static bool from_leaves(std::vector<Slot> leaves, SparseBitmap& out) {
        out.clear_all();
        for (std::size_t i = 0; i < leaves.size(); ++i) {
            if (leaves[i].word == 0 || leaves[i].index >= kMaxWordIndex) {
                return false;
            }
            if (i > 0 && leaves[i - 1].index >= leaves[i].index) return false;
        }
        out.levels_[0] = std::move(leaves);
        out.rebuild_upper_levels();
        return true;
    }

    /// Invariant checker for tests: sorted nonzero slots at every level and
    /// uppers exactly equal to the guards recomputed from the leaves.
    bool validate() const {
        for (const auto& slots : levels_) {
            for (std::size_t i = 0; i < slots.size(); ++i) {
                if (slots[i].word == 0) return false;
                if (i > 0 && slots[i - 1].index >= slots[i].index) return false;
            }
        }
        SparseBitmap rebuilt;
        if (!from_leaves(levels_[0], rebuilt)) return false;
        for (int level = 1; level < kLevels; ++level) {
            if (levels_[level] != rebuilt.levels_[level]) return false;
        }
        return true;
    }

    friend bool operator==(const SparseBitmap& a, const SparseBitmap& b) noexcept {
        return a.levels_[0] == b.levels_[0];  // uppers are derived
    }

private:
    static std::vector<Slot>::iterator slot_lower_bound(
        std::vector<Slot>& slots, std::uint32_t index) noexcept {
        return std::lower_bound(
            slots.begin(), slots.end(), index,
            [](const Slot& s, std::uint32_t key) { return s.index < key; });
    }
    static std::vector<Slot>::const_iterator slot_lower_bound(
        const std::vector<Slot>& slots, std::uint32_t index) noexcept {
        return std::lower_bound(
            slots.begin(), slots.end(), index,
            [](const Slot& s, std::uint32_t key) { return s.index < key; });
    }

    void set_guards_above(std::uint32_t leaf_word_index) {
        std::uint32_t cur = leaf_word_index;
        for (int level = 1; level < kLevels; ++level) {
            auto& slots = levels_[level];
            const std::uint32_t w = cur >> kFanoutBits;
            const std::uint64_t mask = 1ull << (cur & kWordMask);
            const auto it = slot_lower_bound(slots, w);
            if (it != slots.end() && it->index == w) {
                if ((it->word & mask) != 0) return;
                it->word |= mask;
            } else {
                slots.insert(it, Slot{w, mask});
            }
            cur = w;
        }
    }

    void clear_guards_above(std::uint32_t leaf_word_index) {
        std::uint32_t cur = leaf_word_index;
        for (int level = 1; level < kLevels; ++level) {
            auto& slots = levels_[level];
            const std::uint32_t w = cur >> kFanoutBits;
            const std::uint64_t mask = 1ull << (cur & kWordMask);
            const auto it = slot_lower_bound(slots, w);
            assert(it != slots.end() && it->index == w && (it->word & mask) != 0);
            it->word &= ~mask;
            if (it->word != 0) return;
            slots.erase(it);
            cur = w;
        }
    }

    void rebuild_upper_levels() {
        for (int level = 1; level < kLevels; ++level) {
            auto& above = levels_[level];
            above.clear();
            for (const Slot& s : levels_[level - 1]) {
                const std::uint32_t w = s.index >> kFanoutBits;
                const std::uint64_t mask = 1ull << (s.index & kWordMask);
                if (!above.empty() && above.back().index == w) {
                    above.back().word |= mask;
                } else {
                    above.push_back(Slot{w, mask});
                }
            }
        }
    }

    static void merge_level(std::vector<Slot>& into,
                            const std::vector<Slot>& from) {
        if (from.empty()) return;
        if (into.empty()) {
            into = from;
            return;
        }
        std::vector<Slot> merged;
        merged.reserve(into.size() + from.size());
        std::size_t a = 0;
        std::size_t b = 0;
        while (a < into.size() && b < from.size()) {
            if (into[a].index < from[b].index) {
                merged.push_back(into[a++]);
            } else if (from[b].index < into[a].index) {
                merged.push_back(from[b++]);
            } else {
                merged.push_back(Slot{into[a].index, into[a].word | from[b].word});
                ++a;
                ++b;
            }
        }
        for (; a < into.size(); ++a) merged.push_back(into[a]);
        for (; b < from.size(); ++b) merged.push_back(from[b]);
        into = std::move(merged);
    }

    static bool slots_intersect(const std::vector<Slot>& a,
                                const std::vector<Slot>& b) noexcept {
        std::size_t i = 0;
        std::size_t j = 0;
        while (i < a.size() && j < b.size()) {
            if (a[i].index < b[j].index) {
                ++i;
            } else if (b[j].index < a[i].index) {
                ++j;
            } else {
                if ((a[i].word & b[j].word) != 0) return true;
                ++i;
                ++j;
            }
        }
        return false;
    }

    /// levels_[0] holds payload words; levels_[l>0] hold guard bits over
    /// the nonzero words of level l-1.
    std::array<std::vector<Slot>, kLevels> levels_;
};

}  // namespace sariadne::summary
