// IntervalSummary — the exact directory summary: per (ontology URI, role)
// sparse bitmaps of the canonical concept codes held by cached services.
// Where the Bloom backend answers "does this directory possibly hold the
// request's ontology URIs" with tunable false positives, this answers
// "could some cached capability subsume every required output/property
// concept" with zero false positives at concept granularity: the match
// kernel (matching/match.hpp) makes the provider-side concept the subsumer
// in all three clauses, so a required concept r is satisfiable only if the
// directory holds a provided code in ancestors-or-self(canonical(r)) of
// the same ontology and role. Inputs are deliberately excluded — a
// provided capability with no inputs satisfies any inputs clause, so input
// codes can never exclude a peer soundly.
//
// Maintenance mirrors PR 7's refcounted Bloom discipline: the directory
// retains codes before releasing replaced ones, per-(entry, role, code)
// refcounts flip bits only on 0→1 / 1→0, and removals never trigger an
// O(services) rebuild. Every ontology entry carries the code-table version
// tag it was projected under; `covers` goes conservative (never excludes)
// on tag mismatch, and the directory re-projects everything when a
// maintenance op arrives under a newer tag (env-tag invalidation).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "summary/sparse_bitmap.hpp"

namespace sariadne::desc {
struct ResolvedCapability;
}
namespace sariadne::encoding {
class KnowledgeBase;
}

namespace sariadne::summary {

/// Which backend a SemanticDirectory maintains for routing summaries.
enum class SummaryBackend : std::uint8_t {
    kBloom = 0,     ///< ontology-URI Bloom filter (default, PR 2 behavior)
    kInterval = 1,  ///< exact concept-code interval bitmap (this module)
};

/// Which side of a capability a code was projected from. Outputs and
/// properties are summarized separately because the match kernel tests
/// them against separate provided-side clauses.
enum class Role : std::uint8_t { kOutputs = 0, kProperties = 1 };
inline constexpr int kRoleCount = 2;

/// One ontology's worth of a capability's provided-side codes — what the
/// directory feeds into retain/release. Codes are canonical concept ids
/// and may repeat (refcounts absorb duplicates symmetrically).
struct OntologyCodes {
    std::string uri;
    std::uint64_t code_tag = 0;  ///< code-table version tag at projection
    std::array<std::vector<std::uint32_t>, kRoleCount> codes;
};

/// Provided-side projection of one resolved capability.
struct CapabilityProjection {
    std::vector<OntologyCodes> per_ontology;
};

/// One probed concept of a request: the ancestors-or-self canonical codes
/// of a required output/property concept. A summary covers the probe
/// concept iff its (uri, role) bitmap intersects `codes`.
struct ProbeConcept {
    std::string uri;
    std::uint64_t code_tag = 0;
    Role role = Role::kOutputs;
    std::vector<std::uint32_t> codes;
};

/// All probe concepts of a request (deduplicated). Empty probes (a request
/// with no outputs and no properties) cover trivially — such a request can
/// be satisfied by any zero-input capability, so nothing can be excluded.
struct RequestProbe {
    std::vector<ProbeConcept> concepts;

    bool empty() const noexcept { return concepts.empty(); }
};

/// Word-granular delta between two summary versions. Each slot carries the
/// complete new word image at that index (0 ⇒ clear the word): replacement
/// words encode arbitrary set/clear runs and make application idempotent.
struct SummaryDelta {
    struct Entry {
        std::string uri;
        std::uint64_t code_tag = 0;
        std::array<std::vector<SparseBitmap::Slot>, kRoleCount> words;
    };

    std::uint64_t base_version = 0;
    std::uint64_t new_version = 0;
    std::vector<Entry> entries;  ///< sorted by uri
};

/// Outcome of applying a delta against a receiver-held summary.
enum class DeltaApply : std::uint8_t {
    kApplied,    ///< receiver was at base_version; now at new_version
    kDuplicate,  ///< receiver already at new_version (idempotent re-delivery)
    kGap,        ///< version mismatch — receiver must re-pull a snapshot
};

class IntervalSummary {
public:
    struct Entry {
        std::string uri;
        /// Code-table version tag the bitmaps were projected under; 0 marks
        /// a mixed-tag aggregate (merge of summaries built under different
        /// tags) and forces `covers` conservative for this ontology.
        std::uint64_t code_tag = 0;
        std::array<SparseBitmap, kRoleCount> bits;
        /// code → holder count; only populated on directory-maintained
        /// summaries (snapshots and decoded peer summaries carry none).
        std::array<std::unordered_map<std::uint32_t, std::uint32_t>, kRoleCount>
            refs;
    };

    /// Retains one code occurrence; sets the bit on the 0→1 transition.
    /// Creates the (uri, tag) entry on first use. Precondition (checked by
    /// the directory before batching retains): an existing entry's tag
    /// matches `code_tag`.
    void retain(std::string_view uri, std::uint64_t code_tag, Role role,
                std::uint32_t code);

    /// Releases one code occurrence; clears the bit on the 1→0 transition
    /// and erases entries that lose their last code, so churn never grows
    /// the summary. Releasing an untracked code is a no-op.
    void release(std::string_view uri, Role role, std::uint32_t code);

    /// Retain/release every code of a projection.
    void retain_projection(const CapabilityProjection& projection);
    void release_projection(const CapabilityProjection& projection);

    /// True when some projected ontology hits an existing entry built under
    /// a different code-table tag — the env-tag invalidation trigger: the
    /// directory must re-project all cached services instead of mixing
    /// codes from two table generations.
    bool tag_conflict(const CapabilityProjection& projection) const;

    /// Zero false positives at concept granularity: false means no cached
    /// service can fully satisfy the probed request. Tag-mismatched entries
    /// are treated as covering (stale codes can exclude nothing).
    bool covers(const RequestProbe& probe) const;

    /// Backbone aggregation: in-place union of bitmaps. Entries whose tags
    /// disagree degrade to tag 0 (conservative). Refcounts are not merged —
    /// aggregates are read-only routing state. The version becomes the max
    /// of the two inputs.
    void merge(const IntervalSummary& other);

    /// Applies a word-granular delta. Only kApplied mutates the summary.
    DeltaApply apply_delta(const SummaryDelta& delta);

    /// Copy with bitmaps, tags, and version but no refcounts — what the
    /// directory hands to the protocol layer for pushing.
    IntervalSummary snapshot() const;

    /// Drops all entries and refcounts but keeps (and bumps) the version,
    /// so a rebuild is a visible change to delta consumers.
    void clear_retaining_version();

    /// Monotonic content version: bumps on every visible bit or tag change.
    std::uint64_t version() const noexcept { return version_; }
    void set_version(std::uint64_t v) noexcept { version_ = v; }

    const std::vector<Entry>& entries() const noexcept { return entries_; }

    const Entry* find_entry(std::string_view uri) const noexcept;

    /// Tag of an ontology's entry, or 0 when absent.
    std::uint64_t entry_tag(std::string_view uri) const noexcept;

    /// Total distinct (uri, role, code) bits set.
    std::size_t code_count() const noexcept;

    bool empty() const noexcept { return entries_.empty(); }

    /// Deep structural equality on routing-visible state (entries + tags +
    /// bitmaps + version); refcounts are excluded.
    friend bool operator==(const IntervalSummary& a, const IntervalSummary& b);

private:
    Entry& find_or_insert(std::string_view uri, std::uint64_t code_tag);

    std::vector<Entry> entries_;  ///< sorted by uri
    std::uint64_t version_ = 0;
};

/// Word-level diff such that `base.apply_delta(diff_summary(base, cur))`
/// reproduces `cur` exactly (bitmaps, tags, version).
SummaryDelta diff_summary(const IntervalSummary& base,
                          const IntervalSummary& cur);

/// Projects one provided capability's outputs and properties into
/// per-ontology canonical codes under the knowledge base's current tables.
CapabilityProjection project_capability(const desc::ResolvedCapability& cap,
                                        encoding::KnowledgeBase& kb);

/// Builds the probe for a resolved request: per required output/property
/// concept, the ancestors-or-self closure of its canonical code (BFS over
/// the classified taxonomy's transitively-reduced parents). Deduplicates
/// repeated (uri, role, concept) probes across capabilities.
RequestProbe build_request_probe(
    const std::vector<desc::ResolvedCapability>& request,
    encoding::KnowledgeBase& kb);

}  // namespace sariadne::summary
