#include "summary/interval_summary.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "encoding/resolved.hpp"
#include "reasoner/knowledge_base.hpp"

namespace sariadne::summary {

namespace {

constexpr std::size_t role_index(Role role) noexcept {
    return static_cast<std::size_t>(role);
}

bool entry_is_empty(const IntervalSummary::Entry& entry) noexcept {
    for (int r = 0; r < kRoleCount; ++r) {
        if (!entry.bits[r].empty() || !entry.refs[r].empty()) return false;
    }
    return true;
}

}  // namespace

IntervalSummary::Entry& IntervalSummary::find_or_insert(std::string_view uri,
                                                        std::uint64_t code_tag) {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), uri,
        [](const Entry& e, std::string_view key) { return e.uri < key; });
    if (it != entries_.end() && it->uri == uri) return *it;
    Entry entry;
    entry.uri = std::string(uri);
    entry.code_tag = code_tag;
    return *entries_.insert(it, std::move(entry));
}

const IntervalSummary::Entry* IntervalSummary::find_entry(
    std::string_view uri) const noexcept {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), uri,
        [](const Entry& e, std::string_view key) { return e.uri < key; });
    if (it != entries_.end() && it->uri == uri) return &*it;
    return nullptr;
}

std::uint64_t IntervalSummary::entry_tag(std::string_view uri) const noexcept {
    const Entry* e = find_entry(uri);
    return e != nullptr ? e->code_tag : 0;
}

void IntervalSummary::retain(std::string_view uri, std::uint64_t code_tag,
                             Role role, std::uint32_t code) {
    Entry& entry = find_or_insert(uri, code_tag);
    assert(entry.code_tag == code_tag &&
           "tag conflict must trigger a rebuild before retains");
    auto& count = entry.refs[role_index(role)][code];
    if (++count == 1) {
        const bool changed = entry.bits[role_index(role)].set(code);
        assert(changed && "refcount 0->1 must flip the bit");
        (void)changed;
        ++version_;
    }
}

void IntervalSummary::release(std::string_view uri, Role role,
                              std::uint32_t code) {
    const auto ent_it = std::lower_bound(
        entries_.begin(), entries_.end(), uri,
        [](const Entry& e, std::string_view key) { return e.uri < key; });
    if (ent_it == entries_.end() || ent_it->uri != uri) {
        assert(false && "release of untracked ontology");
        return;
    }
    auto& refs = ent_it->refs[role_index(role)];
    const auto ref_it = refs.find(code);
    if (ref_it == refs.end()) {
        assert(false && "release of untracked code");
        return;
    }
    if (--ref_it->second != 0) return;
    refs.erase(ref_it);
    const bool changed = ent_it->bits[role_index(role)].clear(code);
    assert(changed && "refcount 1->0 must clear the bit");
    (void)changed;
    ++version_;
    if (entry_is_empty(*ent_it)) entries_.erase(ent_it);
}

void IntervalSummary::retain_projection(const CapabilityProjection& projection) {
    for (const OntologyCodes& oc : projection.per_ontology) {
        for (int r = 0; r < kRoleCount; ++r) {
            for (const std::uint32_t code : oc.codes[r]) {
                retain(oc.uri, oc.code_tag, static_cast<Role>(r), code);
            }
        }
    }
}

void IntervalSummary::release_projection(
    const CapabilityProjection& projection) {
    for (const OntologyCodes& oc : projection.per_ontology) {
        for (int r = 0; r < kRoleCount; ++r) {
            for (const std::uint32_t code : oc.codes[r]) {
                release(oc.uri, static_cast<Role>(r), code);
            }
        }
    }
}

bool IntervalSummary::tag_conflict(
    const CapabilityProjection& projection) const {
    for (const OntologyCodes& oc : projection.per_ontology) {
        const std::uint64_t held = entry_tag(oc.uri);
        if (held != 0 && held != oc.code_tag) return true;
    }
    return false;
}

bool IntervalSummary::covers(const RequestProbe& probe) const {
    for (const ProbeConcept& pc : probe.concepts) {
        const Entry* entry = find_entry(pc.uri);
        // No codes of this ontology at all ⇒ no provided concept can
        // subsume the required one, under any table generation.
        if (entry == nullptr) return false;
        if (entry->code_tag == 0 || pc.code_tag == 0 ||
            entry->code_tag != pc.code_tag) {
            continue;  // stale/mixed codes: cannot exclude soundly
        }
        if (!entry->bits[role_index(pc.role)].intersects_codes(pc.codes)) {
            return false;
        }
    }
    return true;
}

void IntervalSummary::merge(const IntervalSummary& other) {
    for (const Entry& theirs : other.entries_) {
        const bool existed = find_entry(theirs.uri) != nullptr;
        Entry& mine = find_or_insert(theirs.uri, theirs.code_tag);
        if (existed && mine.code_tag != theirs.code_tag) {
            mine.code_tag = 0;  // mixed table generations: go conservative
        }
        for (int r = 0; r < kRoleCount; ++r) {
            mine.bits[r].merge(theirs.bits[r]);
        }
    }
    version_ = std::max(version_, other.version_);
}

DeltaApply IntervalSummary::apply_delta(const SummaryDelta& delta) {
    if (version_ == delta.new_version) return DeltaApply::kDuplicate;
    if (version_ != delta.base_version) return DeltaApply::kGap;
    for (const SummaryDelta::Entry& change : delta.entries) {
        Entry& entry = find_or_insert(change.uri, change.code_tag);
        entry.code_tag = change.code_tag;
        for (int r = 0; r < kRoleCount; ++r) {
            for (const SparseBitmap::Slot& slot : change.words[r]) {
                entry.bits[r].replace_word(slot.index, slot.word);
            }
        }
    }
    std::erase_if(entries_,
                  [](const Entry& e) { return entry_is_empty(e); });
    version_ = delta.new_version;
    return DeltaApply::kApplied;
}

IntervalSummary IntervalSummary::snapshot() const {
    IntervalSummary out;
    out.version_ = version_;
    out.entries_.reserve(entries_.size());
    for (const Entry& entry : entries_) {
        Entry copy;
        copy.uri = entry.uri;
        copy.code_tag = entry.code_tag;
        copy.bits = entry.bits;
        out.entries_.push_back(std::move(copy));
    }
    return out;
}

void IntervalSummary::clear_retaining_version() {
    entries_.clear();
    ++version_;
}

std::size_t IntervalSummary::code_count() const noexcept {
    std::size_t n = 0;
    for (const Entry& entry : entries_) {
        for (int r = 0; r < kRoleCount; ++r) n += entry.bits[r].popcount();
    }
    return n;
}

bool operator==(const IntervalSummary& a, const IntervalSummary& b) {
    if (a.version_ != b.version_ || a.entries_.size() != b.entries_.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.entries_.size(); ++i) {
        const IntervalSummary::Entry& ea = a.entries_[i];
        const IntervalSummary::Entry& eb = b.entries_[i];
        if (ea.uri != eb.uri || ea.code_tag != eb.code_tag ||
            ea.bits != eb.bits) {
            return false;
        }
    }
    return true;
}

namespace {

/// Word-level diff of one role's bitmaps; emits (index, new word image)
/// slots, with word 0 marking a cleared index.
void diff_role(const SparseBitmap& base, const SparseBitmap& cur,
               std::vector<SparseBitmap::Slot>& out) {
    const auto& a = base.leaves();
    const auto& b = cur.leaves();
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i].index < b[j].index) {
            out.push_back({a[i].index, 0});
            ++i;
        } else if (b[j].index < a[i].index) {
            out.push_back(b[j]);
            ++j;
        } else {
            if (a[i].word != b[j].word) out.push_back(b[j]);
            ++i;
            ++j;
        }
    }
    for (; i < a.size(); ++i) out.push_back({a[i].index, 0});
    for (; j < b.size(); ++j) out.push_back(b[j]);
}

}  // namespace

SummaryDelta diff_summary(const IntervalSummary& base,
                          const IntervalSummary& cur) {
    SummaryDelta delta;
    delta.base_version = base.version();
    delta.new_version = cur.version();
    const auto& a = base.entries();
    const auto& b = cur.entries();
    std::size_t i = 0;
    std::size_t j = 0;
    auto emit = [&delta](const IntervalSummary::Entry* old_entry,
                         const IntervalSummary::Entry* new_entry) {
        SummaryDelta::Entry change;
        change.uri = new_entry != nullptr ? new_entry->uri : old_entry->uri;
        change.code_tag = new_entry != nullptr ? new_entry->code_tag : 0;
        bool tag_changed =
            old_entry == nullptr || new_entry == nullptr ||
            old_entry->code_tag != new_entry->code_tag;
        bool any_words = false;
        static const SparseBitmap kEmpty;
        for (int r = 0; r < kRoleCount; ++r) {
            const SparseBitmap& ob = old_entry != nullptr ? old_entry->bits[r] : kEmpty;
            const SparseBitmap& nb = new_entry != nullptr ? new_entry->bits[r] : kEmpty;
            diff_role(ob, nb, change.words[r]);
            any_words = any_words || !change.words[r].empty();
        }
        if (any_words || tag_changed) delta.entries.push_back(std::move(change));
    };
    while (i < a.size() && j < b.size()) {
        if (a[i].uri < b[j].uri) {
            emit(&a[i], nullptr);
            ++i;
        } else if (b[j].uri < a[i].uri) {
            emit(nullptr, &b[j]);
            ++j;
        } else {
            emit(&a[i], &b[j]);
            ++i;
            ++j;
        }
    }
    for (; i < a.size(); ++i) emit(&a[i], nullptr);
    for (; j < b.size(); ++j) emit(nullptr, &b[j]);
    return delta;
}

namespace {

void add_projection_code(CapabilityProjection& out, encoding::KnowledgeBase& kb,
                         onto::ConceptRef ref, Role role) {
    const std::string& uri = kb.ontology(ref.ontology).uri();
    OntologyCodes* codes = nullptr;
    for (OntologyCodes& oc : out.per_ontology) {
        if (oc.uri == uri) {
            codes = &oc;
            break;
        }
    }
    if (codes == nullptr) {
        OntologyCodes oc;
        oc.uri = uri;
        oc.code_tag = kb.code_table(ref.ontology).version_tag();
        out.per_ontology.push_back(std::move(oc));
        codes = &out.per_ontology.back();
    }
    const std::uint32_t canon =
        kb.taxonomy(ref.ontology).canonical(ref.concept_id);
    codes->codes[static_cast<std::size_t>(role)].push_back(canon);
}

}  // namespace

CapabilityProjection project_capability(const desc::ResolvedCapability& cap,
                                        encoding::KnowledgeBase& kb) {
    CapabilityProjection out;
    for (const onto::ConceptRef ref : cap.outputs) {
        add_projection_code(out, kb, ref, Role::kOutputs);
    }
    for (const onto::ConceptRef ref : cap.properties) {
        add_projection_code(out, kb, ref, Role::kProperties);
    }
    return out;
}

RequestProbe build_request_probe(
    const std::vector<desc::ResolvedCapability>& request,
    encoding::KnowledgeBase& kb) {
    RequestProbe probe;
    std::unordered_set<std::uint64_t> seen;
    auto add = [&](onto::ConceptRef ref, Role role) {
        const auto& tax = kb.taxonomy(ref.ontology);
        const std::uint32_t canon = tax.canonical(ref.concept_id);
        const std::uint64_t key = (std::uint64_t{ref.ontology} << 33) |
                                  (std::uint64_t{static_cast<std::uint8_t>(role)}
                                   << 32) |
                                  canon;
        if (!seen.insert(key).second) return;
        ProbeConcept pc;
        pc.uri = kb.ontology(ref.ontology).uri();
        pc.code_tag = kb.code_table(ref.ontology).version_tag();
        pc.role = role;
        // Ancestors-or-self closure over the transitively reduced
        // representative parent lists = every concept that subsumes `ref`.
        std::vector<std::uint32_t> stack{canon};
        std::unordered_set<std::uint32_t> visited{canon};
        while (!stack.empty()) {
            const std::uint32_t c = stack.back();
            stack.pop_back();
            pc.codes.push_back(c);
            for (const std::uint32_t parent : tax.direct_parents(c)) {
                const std::uint32_t pcanon = tax.canonical(parent);
                if (visited.insert(pcanon).second) stack.push_back(pcanon);
            }
        }
        std::sort(pc.codes.begin(), pc.codes.end());
        probe.concepts.push_back(std::move(pc));
    };
    for (const desc::ResolvedCapability& cap : request) {
        for (const onto::ConceptRef ref : cap.outputs) add(ref, Role::kOutputs);
        for (const onto::ConceptRef ref : cap.properties) {
            add(ref, Role::kProperties);
        }
    }
    return probe;
}

}  // namespace sariadne::summary
