// lint:wire-decode — summary-image decoders must never throw: these bytes
// arrive from the network inside kSummaryBitmap/kSummaryDelta frames and a
// malformed image must degrade into a Result error the protocol layer can
// count and drop.
#include "summary/summary_wire.hpp"

#include <cstring>
#include <string>

namespace sariadne::summary {

namespace {

constexpr std::uint8_t kMagic0 = 'I';
constexpr std::uint8_t kSnapshotMagic1 = 'S';
constexpr std::uint8_t kDeltaMagic1 = 'D';
constexpr std::uint8_t kFormatVersion = 1;

/// Minimum encoded footprint of one slot (u32 index + u64 word) and one
/// entry (u32 uri_len + u64 tag + two u32 slot counts) — the denominators
/// for count-vs-remaining validation.
constexpr std::size_t kSlotBytes = 12;
constexpr std::size_t kMinEntryBytes = 4 + 8 + 4 + 4;

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
    out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
    put_u32(out, static_cast<std::uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

/// Bounded little-endian reader, mirroring wire.cpp: every accessor
/// length-checks before touching bytes and latches a parse error instead
/// of throwing.
class Reader {
public:
    explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

    bool failed() const noexcept { return failed_; }
    const std::string& error() const noexcept { return error_; }
    std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

    void fail(std::string message) {
        if (!failed_) {
            failed_ = true;
            error_ = std::move(message);
        }
    }

    std::uint8_t u8(const char* field) {
        if (!require(1, field)) return 0;
        return bytes_[pos_++];
    }

    std::uint32_t u32(const char* field) {
        if (!require(4, field)) return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            v |= std::uint32_t{bytes_[pos_ + i]} << (8 * i);
        }
        pos_ += 4;
        return v;
    }

    std::uint64_t u64(const char* field) {
        if (!require(8, field)) return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= std::uint64_t{bytes_[pos_ + i]} << (8 * i);
        }
        pos_ += 8;
        return v;
    }

    std::string string(const char* field) {
        const std::uint32_t len = u32(field);
        if (failed_) return {};
        if (len > remaining()) {
            fail(std::string(field) + ": length exceeds input");
            return {};
        }
        std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
        pos_ += len;
        return out;
    }

    /// Reads a count and validates it against the bytes actually left, so
    /// a hostile count cannot drive a giant reserve.
    std::uint32_t count(const char* field, std::size_t min_element_bytes) {
        const std::uint32_t n = u32(field);
        if (failed_) return 0;
        if (min_element_bytes != 0 && n > remaining() / min_element_bytes) {
            fail(std::string(field) + ": count exceeds input");
            return 0;
        }
        return n;
    }

private:
    bool require(std::size_t n, const char* field) {
        if (failed_) return false;
        if (remaining() < n) {
            fail(std::string(field) + ": truncated");
            return false;
        }
        return true;
    }

    std::span<const std::uint8_t> bytes_;
    std::size_t pos_ = 0;
    bool failed_ = false;
    std::string error_;
};

ErrorInfo parse_error(const Reader& in) {
    return ErrorInfo{ErrorCode::kParse, "summary image: " + in.error()};
}

bool check_header(Reader& in, std::uint8_t magic1) {
    const std::uint8_t m0 = in.u8("magic");
    const std::uint8_t m1 = in.u8("magic");
    if (in.failed()) return false;
    if (m0 != kMagic0 || m1 != magic1) {
        in.fail("bad magic");
        return false;
    }
    const std::uint8_t version = in.u8("format-version");
    if (in.failed()) return false;
    if (version != kFormatVersion) {
        in.fail("unsupported format version");
        return false;
    }
    return true;
}

void encode_slots(std::vector<std::uint8_t>& out,
                  const std::vector<SparseBitmap::Slot>& slots) {
    put_u32(out, static_cast<std::uint32_t>(slots.size()));
    for (const SparseBitmap::Slot& slot : slots) {
        put_u32(out, slot.index);
        put_u64(out, slot.word);
    }
}

/// Reads one role's slot list. `allow_zero_words` distinguishes delta
/// images (word 0 clears a slot) from snapshots (words must be nonzero).
std::vector<SparseBitmap::Slot> decode_slots(Reader& in, const char* field,
                                             bool allow_zero_words) {
    std::vector<SparseBitmap::Slot> slots;
    const std::uint32_t n = in.count(field, kSlotBytes);
    if (in.failed()) return slots;
    slots.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        SparseBitmap::Slot slot;
        slot.index = in.u32(field);
        slot.word = in.u64(field);
        if (in.failed()) return slots;
        if (slot.index >= SparseBitmap::kMaxWordIndex) {
            in.fail(std::string(field) + ": word index out of range");
            return slots;
        }
        if (!allow_zero_words && slot.word == 0) {
            in.fail(std::string(field) + ": zero word in snapshot");
            return slots;
        }
        if (!slots.empty() && slots.back().index >= slot.index) {
            in.fail(std::string(field) + ": unsorted word indices");
            return slots;
        }
        slots.push_back(slot);
    }
    return slots;
}

}  // namespace

std::vector<std::uint8_t> encode_summary(const IntervalSummary& summary) {
    std::vector<std::uint8_t> out;
    put_u8(out, kMagic0);
    put_u8(out, kSnapshotMagic1);
    put_u8(out, kFormatVersion);
    put_u64(out, summary.version());
    put_u32(out, static_cast<std::uint32_t>(summary.entries().size()));
    for (const IntervalSummary::Entry& entry : summary.entries()) {
        put_string(out, entry.uri);
        put_u64(out, entry.code_tag);
        for (int r = 0; r < kRoleCount; ++r) {
            encode_slots(out, entry.bits[r].leaves());
        }
    }
    return out;
}

Result<IntervalSummary> try_decode_summary(
    std::span<const std::uint8_t> bytes) noexcept {
    Reader in(bytes);
    if (!check_header(in, kSnapshotMagic1)) return parse_error(in);
    IntervalSummary summary;
    summary.set_version(in.u64("summary.version"));
    const std::uint32_t entry_count = in.count("summary.entries", kMinEntryBytes);
    if (in.failed()) return parse_error(in);
    std::string previous_uri;
    for (std::uint32_t e = 0; e < entry_count; ++e) {
        const std::string uri = in.string("summary.entry.uri");
        const std::uint64_t code_tag = in.u64("summary.entry.tag");
        if (in.failed()) return parse_error(in);
        if (uri.empty()) {
            in.fail("summary.entry.uri: empty");
            return parse_error(in);
        }
        if (e > 0 && previous_uri >= uri) {
            in.fail("summary.entry.uri: unsorted entries");
            return parse_error(in);
        }
        std::array<SparseBitmap, kRoleCount> bits;
        bool any = false;
        for (int r = 0; r < kRoleCount; ++r) {
            std::vector<SparseBitmap::Slot> slots =
                decode_slots(in, "summary.entry.words", /*allow_zero_words=*/false);
            if (in.failed()) return parse_error(in);
            any = any || !slots.empty();
            if (!SparseBitmap::from_leaves(std::move(slots), bits[r])) {
                in.fail("summary.entry.words: invalid leaves");
                return parse_error(in);
            }
        }
        if (!any) {
            in.fail("summary.entry: empty entry");
            return parse_error(in);
        }
        // Rebuild the entry via the maintenance-free mutators so internal
        // invariants (sorted entries) hold by construction.
        for (int r = 0; r < kRoleCount; ++r) {
            const std::uint64_t version_before = summary.version();
            bits[r].for_each_bit([&](std::uint32_t bit) {
                summary.retain(uri, code_tag, static_cast<Role>(r), bit);
            });
            summary.set_version(version_before);
        }
        previous_uri = uri;
    }
    if (in.failed()) return parse_error(in);
    if (in.remaining() != 0) {
        in.fail("trailing bytes");
        return parse_error(in);
    }
    return summary.snapshot();  // drop the rebuild refcounts
}

std::vector<std::uint8_t> encode_delta(const SummaryDelta& delta) {
    std::vector<std::uint8_t> out;
    put_u8(out, kMagic0);
    put_u8(out, kDeltaMagic1);
    put_u8(out, kFormatVersion);
    put_u64(out, delta.base_version);
    put_u64(out, delta.new_version);
    put_u32(out, static_cast<std::uint32_t>(delta.entries.size()));
    for (const SummaryDelta::Entry& entry : delta.entries) {
        put_string(out, entry.uri);
        put_u64(out, entry.code_tag);
        for (int r = 0; r < kRoleCount; ++r) {
            encode_slots(out, entry.words[r]);
        }
    }
    return out;
}

Result<SummaryDelta> try_decode_delta(
    std::span<const std::uint8_t> bytes) noexcept {
    Reader in(bytes);
    if (!check_header(in, kDeltaMagic1)) return parse_error(in);
    SummaryDelta delta;
    delta.base_version = in.u64("delta.base-version");
    delta.new_version = in.u64("delta.new-version");
    const std::uint32_t entry_count = in.count("delta.entries", kMinEntryBytes);
    if (in.failed()) return parse_error(in);
    delta.entries.reserve(entry_count);
    for (std::uint32_t e = 0; e < entry_count; ++e) {
        SummaryDelta::Entry entry;
        entry.uri = in.string("delta.entry.uri");
        entry.code_tag = in.u64("delta.entry.tag");
        if (in.failed()) return parse_error(in);
        if (entry.uri.empty()) {
            in.fail("delta.entry.uri: empty");
            return parse_error(in);
        }
        if (!delta.entries.empty() && delta.entries.back().uri >= entry.uri) {
            in.fail("delta.entry.uri: unsorted entries");
            return parse_error(in);
        }
        for (int r = 0; r < kRoleCount; ++r) {
            entry.words[r] =
                decode_slots(in, "delta.entry.words", /*allow_zero_words=*/true);
            if (in.failed()) return parse_error(in);
        }
        delta.entries.push_back(std::move(entry));
    }
    if (in.remaining() != 0) {
        in.fail("trailing bytes");
        return parse_error(in);
    }
    return delta;
}

}  // namespace sariadne::summary
