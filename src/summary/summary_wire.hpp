// Byte codec for exact-summary images: the full `summary-bitmap` snapshot
// and the since-version `summary-delta` word runs. These images travel as
// opaque length-prefixed payloads inside the outer protocol frames
// (wire.hpp kSummaryBitmap / kSummaryDelta), so this is the layer that
// must survive arbitrary bytes: decoding never throws and every count is
// validated against the remaining input before allocation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "summary/interval_summary.hpp"
#include "support/result.hpp"

namespace sariadne::summary {

/// Serializes a summary snapshot (entries + tags + leaf words + version).
/// Only bitmap leaves are shipped; upper trie levels are derived on decode.
std::vector<std::uint8_t> encode_summary(const IntervalSummary& summary);

/// Decodes a snapshot image. Rejects malformed input (bad magic, unsorted
/// entries or words, zero words, out-of-range indices, trailing bytes)
/// without throwing.
Result<IntervalSummary> try_decode_summary(
    std::span<const std::uint8_t> bytes) noexcept;

/// Serializes a word-granular delta (diff_summary output).
std::vector<std::uint8_t> encode_delta(const SummaryDelta& delta);

/// Decodes a delta image; zero words are legal here (they clear a slot).
Result<SummaryDelta> try_decode_delta(
    std::span<const std::uint8_t> bytes) noexcept;

}  // namespace sariadne::summary
