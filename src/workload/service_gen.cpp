#include "workload/service_gen.hpp"

#include "description/amigos_io.hpp"
#include "ontology/ids.hpp"
#include "ontology/loader.hpp"
#include "support/contracts.hpp"
#include "support/hash.hpp"

namespace sariadne::workload {

using desc::Capability;
using desc::CapabilityKind;
using desc::Parameter;
using desc::ServiceDescription;
using desc::ServiceRequest;
using onto::ConceptId;

ServiceWorkload::ServiceWorkload(std::vector<onto::Ontology> universe,
                                 ServiceGenConfig config)
    : universe_(std::move(universe)), config_(config) {
    SARIADNE_EXPECTS(!universe_.empty());
    children_.resize(universe_.size());
    for (std::size_t o = 0; o < universe_.size(); ++o) {
        const onto::Ontology& ontology = universe_[o];
        children_[o].assign(ontology.class_count(), {});
        for (ConceptId c = 0; c < ontology.class_count(); ++c) {
            for (const ConceptId parent : ontology.class_decl(c).told_parents) {
                children_[o][parent].push_back(c);
            }
        }
    }
}

std::vector<std::string> ServiceWorkload::ontology_documents() const {
    std::vector<std::string> docs;
    docs.reserve(universe_.size());
    for (const auto& ontology : universe_) {
        docs.push_back(onto::save_ontology(ontology));
    }
    return docs;
}

std::string ServiceWorkload::qname(const ConceptPick& pick) const {
    return onto::QualifiedName::join(
        universe_[pick.ontology].uri(),
        universe_[pick.ontology].class_name(pick.concept_id));
}

ServiceWorkload::ConceptPick ServiceWorkload::pick_concept(std::size_t ontology,
                                                           Rng& rng) const {
    // Restrict to the tree classes (those with told children structure);
    // aliases and intersection-defined classes are still reachable through
    // classification, but advertisement concepts come from the tree so that
    // descendant sampling is closed.
    const std::size_t count = universe_[ontology].class_count();
    return ConceptPick{ontology, static_cast<ConceptId>(rng.below(count))};
}

ServiceWorkload::ConceptPick ServiceWorkload::descend(const ConceptPick& from,
                                                      Rng& rng) const {
    // Random told-tree walk downward: with probability 1/2 stop here, else
    // step to a random told child. Always yields a descendant-or-self, so
    // the advertisement concept subsumes it.
    ConceptPick current = from;
    while (rng.chance(0.5)) {
        const auto& kids = children_[current.ontology][current.concept_id];
        if (kids.empty()) break;
        current.concept_id = kids[rng.below(kids.size())];
    }
    return current;
}

Rng ServiceWorkload::rng_for(std::size_t index, std::uint64_t stream) const {
    return Rng(mix64(config_.seed ^ (index * 0x9E3779B97F4A7C15ULL) ^
                     (stream << 56)));
}

ServiceDescription ServiceWorkload::service(std::size_t index) const {
    Rng rng = rng_for(index, 1);
    const std::size_t o = index % universe_.size();

    ServiceDescription service;
    service.profile.service_name = "Service" + std::to_string(index);
    service.profile.provider = "provider" + std::to_string(index % 7);
    service.middleware = (index % 3 == 0) ? "UPnP" : "WS";
    service.grounding.protocol = "SOAP";
    service.grounding.address =
        "http://host" + std::to_string(index) + ".local/svc";

    for (std::size_t c = 0; c < config_.capabilities_per_service; ++c) {
        Capability cap;
        cap.name = c == 0 ? "Cap" + std::to_string(index)
                          : "Cap" + std::to_string(index) + "_" +
                                std::to_string(c);
        cap.kind = CapabilityKind::kProvided;
        cap.category_qname = qname(pick_concept(o, rng));

        const std::size_t n_inputs = static_cast<std::size_t>(rng.between(
            static_cast<std::int64_t>(config_.inputs_min),
            static_cast<std::int64_t>(config_.inputs_max)));
        for (std::size_t i = 0; i < n_inputs; ++i) {
            cap.inputs.push_back(Parameter{"in" + std::to_string(i),
                                           qname(pick_concept(o, rng))});
        }
        const std::size_t n_outputs = static_cast<std::size_t>(rng.between(
            static_cast<std::int64_t>(config_.outputs_min),
            static_cast<std::int64_t>(config_.outputs_max)));
        for (std::size_t i = 0; i < n_outputs; ++i) {
            cap.outputs.push_back(Parameter{"out" + std::to_string(i),
                                            qname(pick_concept(o, rng))});
        }
        service.profile.capabilities.push_back(std::move(cap));
    }

    for (std::size_t i = 0; i < config_.qos_count; ++i) {
        service.profile.qos.push_back(desc::QosAttribute{
            "qos" + std::to_string(i), static_cast<double>(rng.below(100))});
    }
    for (std::size_t i = 0; i < config_.context_count; ++i) {
        service.profile.context.push_back(desc::ContextAttribute{
            "ctx" + std::to_string(i), "value" + std::to_string(rng.below(10))});
    }
    return service;
}

std::string ServiceWorkload::service_xml(std::size_t index) const {
    return desc::serialize_service(service(index));
}

ServiceRequest ServiceWorkload::matching_request(std::size_t index) const {
    Rng rng = rng_for(index, 2);
    const ServiceDescription advertised = service(index);
    const Capability& provided = advertised.profile.capabilities.front();
    const std::size_t o = index % universe_.size();
    const onto::Ontology& ontology = universe_[o];

    const auto descend_qname = [&](const std::string& advertised_qname) {
        const auto parts = onto::QualifiedName::split(advertised_qname);
        const ConceptId id = ontology.find_class(parts.local_name);
        SARIADNE_ASSERT(id != onto::kNoConcept);
        return qname(descend(ConceptPick{o, id}, rng));
    };

    ServiceRequest request;
    request.requester = "client" + std::to_string(index);
    Capability wanted;
    wanted.name = "Req" + std::to_string(index);
    wanted.kind = CapabilityKind::kRequired;
    // Match(provided, wanted) requires, in every clause, the provider-side
    // concept to subsume the request-side one — descendants-or-self of the
    // advertisement's concepts guarantee it.
    wanted.category_qname = descend_qname(provided.category_qname);
    for (const Parameter& param : provided.inputs) {
        wanted.inputs.push_back(
            Parameter{param.name, descend_qname(param.concept_qname)});
    }
    for (const Parameter& param : provided.outputs) {
        wanted.outputs.push_back(
            Parameter{param.name, descend_qname(param.concept_qname)});
    }
    request.capabilities.push_back(std::move(wanted));
    return request;
}

std::string ServiceWorkload::matching_request_xml(std::size_t index) const {
    return desc::serialize_request(matching_request(index));
}

ServiceRequest ServiceWorkload::random_request(std::uint64_t salt) const {
    Rng rng(mix64(config_.seed ^ salt ^ 0xABCDEF0123456789ULL));
    const std::size_t o = rng.below(universe_.size());
    ServiceRequest request;
    request.requester = "random-client";
    Capability wanted;
    wanted.name = "RandomReq";
    wanted.kind = CapabilityKind::kRequired;
    wanted.category_qname = qname(pick_concept(o, rng));
    wanted.inputs.push_back(Parameter{"in0", qname(pick_concept(o, rng))});
    wanted.outputs.push_back(Parameter{"out0", qname(pick_concept(o, rng))});
    request.capabilities.push_back(std::move(wanted));
    return request;
}

desc::WsdlDescription ServiceWorkload::wsdl(std::size_t index) const {
    // Syntactic twin: operation and part names mirror the semantic
    // capability's structure, types are the concept local names.
    const ServiceDescription semantic = service(index);
    const Capability& cap = semantic.profile.capabilities.front();

    desc::WsdlDescription wsdl;
    wsdl.service_name = semantic.profile.service_name;
    desc::WsdlOperation op;
    op.name = cap.name;
    for (const Parameter& param : cap.inputs) {
        const auto parts = onto::QualifiedName::split(param.concept_qname);
        op.inputs.push_back(
            desc::WsdlPart{param.name, std::string(parts.local_name)});
    }
    for (const Parameter& param : cap.outputs) {
        const auto parts = onto::QualifiedName::split(param.concept_qname);
        op.outputs.push_back(
            desc::WsdlPart{param.name, std::string(parts.local_name)});
    }
    wsdl.operations.push_back(std::move(op));
    return wsdl;
}

std::string ServiceWorkload::wsdl_xml(std::size_t index) const {
    return desc::serialize_wsdl(wsdl(index));
}

desc::WsdlDescription ServiceWorkload::wsdl_request(std::size_t index) const {
    desc::WsdlDescription request = wsdl(index);
    request.service_name = "Request" + std::to_string(index);
    return request;
}

std::string ServiceWorkload::wsdl_request_xml(std::size_t index) const {
    return desc::serialize_wsdl(wsdl_request(index));
}

std::pair<Capability, Capability> fig2_capabilities(const onto::Ontology& fig2) {
    // Provided capability: 7 expected inputs, 3 offered outputs drawn
    // deterministically from the tree; required capability: descendants
    // (via told edges) so Match(provided, required) holds.
    Rng rng(0xF162CAB5ULL);
    std::vector<std::vector<ConceptId>> children(fig2.class_count());
    std::size_t tree_count = 0;
    for (ConceptId c = 0; c < fig2.class_count(); ++c) {
        for (const ConceptId parent : fig2.class_decl(c).told_parents) {
            children[parent].push_back(c);
        }
        if (fig2.class_decl(c).name[0] == 'C') ++tree_count;
    }

    const auto pick = [&] {
        return static_cast<ConceptId>(rng.below(tree_count));
    };
    const auto descend = [&](ConceptId from) {
        ConceptId current = from;
        while (rng.chance(0.5) && !children[current].empty()) {
            current = children[current][rng.below(children[current].size())];
        }
        return current;
    };
    const auto qname = [&](ConceptId id) {
        return onto::QualifiedName::join(fig2.uri(), fig2.class_name(id));
    };

    Capability provided;
    provided.name = "Fig2Provided";
    provided.kind = CapabilityKind::kProvided;
    provided.category_qname = qname(0);

    Capability required;
    required.name = "Fig2Required";
    required.kind = CapabilityKind::kRequired;
    required.category_qname = qname(descend(0));

    for (int i = 0; i < 7; ++i) {
        const ConceptId expected = pick();
        provided.inputs.push_back(
            Parameter{"in" + std::to_string(i), qname(expected)});
        required.inputs.push_back(
            Parameter{"in" + std::to_string(i), qname(descend(expected))});
    }
    for (int i = 0; i < 3; ++i) {
        const ConceptId offered = pick();
        provided.outputs.push_back(
            Parameter{"out" + std::to_string(i), qname(offered)});
        required.outputs.push_back(
            Parameter{"out" + std::to_string(i), qname(descend(offered))});
    }
    return {provided, required};
}

}  // namespace sariadne::workload
