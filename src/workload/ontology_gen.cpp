#include "workload/ontology_gen.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace sariadne::workload {

using onto::ConceptId;
using onto::Ontology;
using onto::PropertyId;

namespace {

/// Picks a parent index in [0, existing) biased toward small indices
/// (earlier classes are shallower, so the bias flattens the tree).
std::size_t pick_parent(std::size_t existing, double bias, Rng& rng) {
    SARIADNE_EXPECTS(existing >= 1);
    const double u = std::pow(rng.uniform(), bias);
    auto index = static_cast<std::size_t>(u * static_cast<double>(existing));
    if (index >= existing) index = existing - 1;
    return index;
}

}  // namespace

Ontology generate_ontology(const std::string& uri,
                           const OntologyGenConfig& config, Rng& rng) {
    SARIADNE_EXPECTS(config.class_count >= 2);
    Ontology ontology(uri);

    // Tree skeleton: class 0 is the root; class i attaches under a random
    // earlier class.
    std::vector<ConceptId> ids;
    ids.reserve(config.class_count);
    std::vector<std::vector<ConceptId>> children(config.class_count);
    for (std::size_t i = 0; i < config.class_count; ++i) {
        ids.push_back(ontology.add_class("C" + std::to_string(i)));
        if (i > 0) {
            const std::size_t parent = pick_parent(i, config.shallow_bias, rng);
            ontology.add_subclass_of(ids[i], ids[parent]);
            children[parent].push_back(ids[i]);
        }
    }

    // Optional second parents: pick an earlier class that is not an
    // ancestor-by-index of the first parent chain; subsumption stays
    // acyclic because parents always have smaller indices.
    if (config.multi_parent_rate > 0.0) {
        for (std::size_t i = 2; i < config.class_count; ++i) {
            if (!rng.chance(config.multi_parent_rate)) continue;
            const std::size_t second = pick_parent(i, config.shallow_bias, rng);
            const auto& parents = ontology.class_decl(ids[i]).told_parents;
            if (std::find(parents.begin(), parents.end(), ids[second]) ==
                parents.end()) {
                ontology.add_subclass_of(ids[i], ids[second]);
            }
        }
    }

    // Equivalence aliases: alias classes declared equivalent to a random
    // tree class (classification must merge them).
    for (std::size_t i = 0; i < config.alias_count; ++i) {
        const ConceptId alias = ontology.add_class("Alias" + std::to_string(i));
        const ConceptId target =
            ids[rng.below(config.class_count)];
        ontology.add_equivalent(alias, target);
    }

    // Intersection-defined classes: D ≡ A ⊓ B with A, B random tree
    // classes. No disjointness is emitted alongside, so the ontology is
    // consistent by construction.
    for (std::size_t i = 0; i < config.intersection_count; ++i) {
        const ConceptId defined = ontology.add_class("Def" + std::to_string(i));
        ConceptId a = ids[rng.below(config.class_count)];
        ConceptId b = ids[rng.below(config.class_count)];
        if (a == b) b = ids[(b + 1) % config.class_count];
        ontology.define_intersection(defined, {a, b});
    }

    // Disjoint sibling pairs: only for pure trees (no intersections, no
    // second parents) — sibling subtrees of a tree are disjoint by
    // construction, so these axioms can never make a named class
    // unsatisfiable; a DAG edge could put a class below both siblings.
    if (config.intersection_count == 0 && config.multi_parent_rate == 0.0) {
        std::size_t declared = 0;
        for (std::size_t parent = 0;
             parent < config.class_count && declared < config.disjoint_pairs;
             ++parent) {
            if (children[parent].size() < 2) continue;
            ontology.add_disjoint(children[parent][0], children[parent][1]);
            ++declared;
        }
    }

    // Properties with domain/range over tree classes and a shallow property
    // hierarchy.
    std::vector<PropertyId> props;
    for (std::size_t i = 0; i < config.property_count; ++i) {
        const PropertyId prop = ontology.add_property("p" + std::to_string(i));
        ontology.set_property_domain(prop, ids[rng.below(config.class_count)]);
        ontology.set_property_range(prop, ids[rng.below(config.class_count)]);
        if (!props.empty() && rng.chance(0.3)) {
            ontology.add_subproperty_of(prop, props[rng.below(props.size())]);
        }
        props.push_back(prop);
    }

    return ontology;
}

Ontology fig2_ontology() {
    // Deterministic: 95 tree classes + 2 aliases + 2 intersection-defined
    // classes = 99 OWL classes; 39 properties. Matches the experimental
    // setup of the paper's §2.4 ("99 OWL classes ... and 39 properties").
    OntologyGenConfig config;
    config.class_count = 95;
    config.property_count = 39;
    config.alias_count = 2;
    config.intersection_count = 2;
    config.disjoint_pairs = 0;
    config.shallow_bias = 1.6;
    Rng rng(0xF162006ULL);
    Ontology ontology =
        generate_ontology("http://sariadne.example/onto/fig2", config, rng);
    SARIADNE_ENSURES(ontology.class_count() == 99);
    SARIADNE_ENSURES(ontology.property_count() == 39);
    return ontology;
}

std::vector<Ontology> generate_universe(std::size_t count,
                                        const OntologyGenConfig& config,
                                        std::uint64_t seed) {
    std::vector<Ontology> universe;
    universe.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        Rng rng(seed + i * 0x9E3779B97F4A7C15ULL);
        universe.push_back(generate_ontology(
            "http://sariadne.example/onto/" + std::to_string(i), config, rng));
    }
    return universe;
}

}  // namespace sariadne::workload
