// Synthetic service-description and request generation over an ontology
// universe. Reproduces the §5 experimental setup: descriptions drawing on
// 22 ontologies, one provided capability per service, plus — for every
// semantic service — a *matching request* (request concepts are
// descendants-or-self of the advertisement's, so Match is guaranteed) and
// a syntactic WSDL twin for the Ariadne baseline. All generation is
// deterministic per (seed, index).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "description/service.hpp"
#include "description/wsdl.hpp"
#include "ontology/ontology.hpp"
#include "support/rng.hpp"

namespace sariadne::workload {

struct ServiceGenConfig {
    std::size_t inputs_min = 1;
    std::size_t inputs_max = 3;
    std::size_t outputs_min = 1;
    std::size_t outputs_max = 2;
    /// Provided capabilities per service (§5 uses 1; the Amigo-S model
    /// allows several per profile — used by the DAG sensitivity ablation).
    std::size_t capabilities_per_service = 1;
    /// QoS / context attributes per description (parser workload realism).
    std::size_t qos_count = 2;
    std::size_t context_count = 2;
    std::uint64_t seed = 0x5EA51DE5ULL;
};

class ServiceWorkload {
public:
    ServiceWorkload(std::vector<onto::Ontology> universe,
                    ServiceGenConfig config = {});

    const std::vector<onto::Ontology>& ontologies() const noexcept {
        return universe_;
    }

    /// Serialized XML of every ontology (for OnlineMatcher-style loads).
    std::vector<std::string> ontology_documents() const;

    /// Deterministic service #index: one provided capability drawing its
    /// concepts from ontology (index mod universe size).
    desc::ServiceDescription service(std::size_t index) const;
    std::string service_xml(std::size_t index) const;

    /// A request guaranteed to match service #index (request concepts are
    /// descendants-or-self of the advertisement's concepts).
    desc::ServiceRequest matching_request(std::size_t index) const;
    std::string matching_request_xml(std::size_t index) const;

    /// A random request over the universe; may or may not match anything.
    desc::ServiceRequest random_request(std::uint64_t salt) const;

    /// Syntactic WSDL twin of service #index and the request that conforms
    /// to it exactly.
    desc::WsdlDescription wsdl(std::size_t index) const;
    std::string wsdl_xml(std::size_t index) const;
    desc::WsdlDescription wsdl_request(std::size_t index) const;
    std::string wsdl_request_xml(std::size_t index) const;

private:
    struct ConceptPick {
        std::size_t ontology;
        onto::ConceptId concept_id;
    };

    std::string qname(const ConceptPick& pick) const;
    ConceptPick pick_concept(std::size_t ontology, Rng& rng) const;
    ConceptPick descend(const ConceptPick& from, Rng& rng) const;
    Rng rng_for(std::size_t index, std::uint64_t stream) const;

    std::vector<onto::Ontology> universe_;
    // Told subclass children per ontology (sampling structure).
    std::vector<std::vector<std::vector<onto::ConceptId>>> children_;
    ServiceGenConfig config_;
};

/// The Figure 2 matching workload: a provided and a required capability
/// with 7 inputs and 3 outputs each over fig2_ontology(), the required one
/// guaranteed to match the provided one.
std::pair<desc::Capability, desc::Capability> fig2_capabilities(
    const onto::Ontology& fig2);

}  // namespace sariadne::workload
