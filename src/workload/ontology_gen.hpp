// Synthetic ontology generation. Ontologies are random subsumption trees
// decorated with equivalence aliases, disjoint sibling pairs and (in the
// "rich" configuration) intersection definitions — enough structure that
// classification performs genuine inference. Two presets matter for the
// reproduction:
//   * fig2_ontology(): 99 classes / 39 properties, the exact size of the
//     ontology the paper's Figure 2 reasoner-cost experiment uses;
//   * generate_universe(): the 22-ontology universe of the §5 directory
//     experiments.
// Generation is deterministic given a seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ontology/ontology.hpp"
#include "support/rng.hpp"

namespace sariadne::workload {

struct OntologyGenConfig {
    std::size_t class_count = 40;
    std::size_t property_count = 12;
    /// Bias of parent selection toward earlier (shallower) classes; 1.0 is
    /// uniform over existing classes, larger values flatten the tree.
    double shallow_bias = 2.0;
    /// Number of equivalence alias classes (in addition to class_count).
    std::size_t alias_count = 2;
    /// Number of disjoint sibling pairs to declare (skipped when
    /// intersections are enabled, to guarantee consistency by construction).
    std::size_t disjoint_pairs = 3;
    /// Number of intersection-defined classes (in addition to class_count).
    std::size_t intersection_count = 0;
    /// Probability that a tree class receives a second told parent,
    /// turning the hierarchy into a genuine DAG (exercises interval
    /// replication in the encoder).
    double multi_parent_rate = 0.0;
};

/// Generates one ontology with the given URI. Deterministic in `rng`.
onto::Ontology generate_ontology(const std::string& uri,
                                 const OntologyGenConfig& config, Rng& rng);

/// The Figure 2 ontology: exactly 99 OWL classes and 39 properties, with
/// equivalences and intersection definitions so classification does real
/// inference work.
onto::Ontology fig2_ontology();

/// The §5 universe: `count` ontologies named
/// "http://sariadne.example/onto/<i>", generated from `seed`.
std::vector<onto::Ontology> generate_universe(std::size_t count,
                                              const OntologyGenConfig& config,
                                              std::uint64_t seed);

}  // namespace sariadne::workload
