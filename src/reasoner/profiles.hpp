// DL-reasoner cost profiles — the documented substitution for Racer,
// FaCT++ and Pellet in the Figure 2 motivation experiment (see DESIGN.md §2).
//
// The paper measures ~4-5 s to match two capabilities with any of the three
// reasoners on 2006 hardware, with 76-78 % of the time spent loading and
// classifying ontologies. Full SHIQ reasoners are out of scope, so each
// profile pairs one of our real classification engines with per-operation
// cost coefficients calibrated to reproduce that *structure*: a profile's
// modeled time is
//
//   load+classify = load_base_ms + per_class_ms * |classes|
//                 + per_axiom_ms * |axioms| + per_fact_us * facts_derived
//   matching      = match_base_ms + per_query_ms * |subsumption queries|
//
// where facts_derived comes from the engine's actual run on the actual
// ontology — the modeled time scales with real reasoning work, it is not a
// constant. Benchmarks report modeled 2006-scale milliseconds alongside
// the real measured microseconds of our engines.
#pragma once

#include <memory>
#include <string>

#include "ontology/ontology.hpp"
#include "reasoner/reasoner.hpp"

namespace sariadne::reasoner {

/// Cost coefficients of one emulated DL reasoner.
struct ProfileCosts {
    double load_base_ms = 0;    ///< fixed ontology load / parse overhead
    double per_class_ms = 0;    ///< per named class
    double per_axiom_ms = 0;    ///< per TBox axiom
    double per_fact_us = 0;     ///< per subsumption fact actually derived
    double match_base_ms = 0;   ///< fixed per-match overhead
    double per_query_ms = 0;    ///< per subsumption query during matching
};

/// Modeled cost breakdown of one capability match (Figure 2 bars).
struct ModeledMatchCost {
    double load_classify_ms = 0;
    double matching_ms = 0;

    double total_ms() const noexcept { return load_classify_ms + matching_ms; }
    double load_fraction() const noexcept {
        const double total = total_ms();
        return total > 0 ? load_classify_ms / total : 0;
    }
};

/// One emulated reasoner: a name, a real classification engine and cost
/// coefficients.
class DlReasonerProfile {
public:
    DlReasonerProfile(std::string name, std::unique_ptr<Reasoner> engine,
                      const ProfileCosts& costs)
        : name_(std::move(name)), engine_(std::move(engine)), costs_(costs) {}

    const std::string& name() const noexcept { return name_; }
    Reasoner& engine() noexcept { return *engine_; }
    const ProfileCosts& costs() const noexcept { return costs_; }

    /// Runs a real classification of `ontology` and returns the modeled
    /// 2006-scale cost of matching two capabilities that perform
    /// `match_queries` subsumption queries against it.
    ModeledMatchCost model_match(const onto::Ontology& ontology,
                                 std::size_t match_queries);

    /// Racer 1.8-like: heavyweight load, moderate query cost.
    static DlReasonerProfile racer_like();
    /// FaCT++-like: cheaper load, slightly costlier queries.
    static DlReasonerProfile factpp_like();
    /// Pellet-like: costliest load (Java/OWL parsing), cheap queries.
    static DlReasonerProfile pellet_like();

private:
    std::string name_;
    std::unique_ptr<Reasoner> engine_;
    ProfileCosts costs_;
};

}  // namespace sariadne::reasoner
