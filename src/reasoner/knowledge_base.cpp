#include "reasoner/knowledge_base.hpp"

namespace sariadne::encoding {

const CodeTable& KnowledgeBase::code_table(OntologyIndex index) {
    const onto::Ontology& ontology = registry_.at(index);
    {
        // Hot path: the table exists and is current — concurrent readers
        // only share the lock.
        std::shared_lock lock(tables_mutex_);
        const auto it = tables_.find(ontology.uri());
        if (it != tables_.end() && it->second.table &&
            it->second.version == ontology.version()) {
            return *it->second.table;
        }
    }
    std::unique_lock lock(tables_mutex_);
    TableEntry& entry = tables_[ontology.uri()];
    if (!entry.table || entry.version != ontology.version()) {
        entry.table = std::make_unique<CodeTable>(
            CodeTable::build(ontology, taxonomy(index), params_));
        entry.version = ontology.version();
    }
    return *entry.table;
}

bool KnowledgeBase::subsumes(ConceptRef subsumer, ConceptRef subsumee) {
    if (subsumer.ontology != subsumee.ontology) return false;
    return code_table(subsumer.ontology)
        .subsumes(subsumer.concept_id, subsumee.concept_id);
}

std::optional<int> KnowledgeBase::distance(ConceptRef subsumer,
                                           ConceptRef subsumee) {
    if (subsumer.ontology != subsumee.ontology) return std::nullopt;
    return code_table(subsumer.ontology)
        .distance(subsumer.concept_id, subsumee.concept_id);
}

}  // namespace sariadne::encoding
