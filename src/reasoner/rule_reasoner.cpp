// RuleReasoner: semi-naive forward chaining over subsumption facts.
// A worklist of newly derived facts sub(x, y) drives two inference rules:
//   transitivity : sub(x, y) ∧ told(y, z)          → sub(x, z)
//   intersection : sub(x, part_i) for all parts(D)  → sub(x, D)
// Each fact is processed exactly once, so the engine's cost tracks the
// number of derivable facts rather than n^3 — typically the cheapest of
// the three engines, playing Pellet's "optimized" role in Figure 2.
#include <deque>

#include "reasoner/closure_util.hpp"
#include "reasoner/reasoner.hpp"

namespace sariadne::reasoner {

using detail::BitMatrix;
using onto::ConceptId;

Taxonomy RuleReasoner::classify(const onto::Ontology& ontology) {
    stats_ = ReasonerStats{};
    const std::size_t n = ontology.class_count();
    BitMatrix closure(n);

    const auto told = detail::told_edges(ontology);

    // For the intersection rule: which definitions mention a given part,
    // and a countdown of unsatisfied parts per (class, definition) pair.
    struct Definition {
        ConceptId defined;
        std::vector<ConceptId> parts;
    };
    std::vector<Definition> definitions;
    std::vector<std::vector<std::size_t>> defs_using_part(n);
    for (ConceptId c = 0; c < n; ++c) {
        const auto& parts = ontology.class_decl(c).intersection_of;
        if (parts.empty()) continue;
        const std::size_t def_index = definitions.size();
        definitions.push_back({c, parts});
        for (const ConceptId part : parts) {
            defs_using_part[part].push_back(def_index);
        }
    }
    // missing[x][d]: how many parts of definition d are not yet known to
    // subsume x.
    std::vector<std::vector<std::uint32_t>> missing(
        n, std::vector<std::uint32_t>(definitions.size()));
    for (std::size_t d = 0; d < definitions.size(); ++d) {
        const auto size = static_cast<std::uint32_t>(definitions[d].parts.size());
        for (ConceptId x = 0; x < n; ++x) missing[x][d] = size;
    }

    std::deque<std::pair<ConceptId, ConceptId>> worklist;  // (x, y): x ⊑ y

    const auto derive = [&](ConceptId x, ConceptId y) {
        if (closure.set(x, y)) {
            ++stats_.facts_derived;
            worklist.emplace_back(x, y);
        }
    };

    for (ConceptId c = 0; c < n; ++c) {
        derive(c, c);
        for (const ConceptId parent : told[c]) derive(c, parent);
    }

    while (!worklist.empty()) {
        ++stats_.iterations;
        const auto [x, y] = worklist.front();
        worklist.pop_front();

        // Transitivity through told edges of y.
        for (const ConceptId z : told[y]) {
            ++stats_.subsumption_tests;
            derive(x, z);
        }

        // Intersection countdown: fact sub(x, y) may complete a definition.
        for (const std::size_t d : defs_using_part[y]) {
            ++stats_.subsumption_tests;
            if (--missing[x][d] == 0) {
                derive(x, definitions[d].defined);
            }
        }
    }

    detail::check_consistency(ontology, closure);
    return Taxonomy::from_closure(n, closure.data(), closure.words_per_row());
}

}  // namespace sariadne::reasoner
