#include "reasoner/profiles.hpp"

namespace sariadne::reasoner {

ModeledMatchCost DlReasonerProfile::model_match(const onto::Ontology& ontology,
                                                std::size_t match_queries) {
    // Real classification run: the derived-fact count feeds the model, so
    // harder ontologies genuinely model as more expensive.
    (void)engine_->classify(ontology);
    const ReasonerStats& stats = engine_->last_stats();

    ModeledMatchCost cost;
    cost.load_classify_ms =
        costs_.load_base_ms +
        costs_.per_class_ms * static_cast<double>(ontology.class_count()) +
        costs_.per_axiom_ms * static_cast<double>(ontology.axiom_count()) +
        costs_.per_fact_us * static_cast<double>(stats.facts_derived) / 1000.0;
    cost.matching_ms = costs_.match_base_ms +
                       costs_.per_query_ms * static_cast<double>(match_queries);
    return cost;
}

// Coefficients are calibrated so that, on the paper's Figure 2 workload
// (99 classes / 39 properties, capabilities with 7 inputs and 3 outputs),
// each profile lands in the 4-5 s total range with 76-78 % of the time in
// load+classify — matching the published measurements of Racer, FaCT++
// and Pellet on a 1.6 GHz Centrino.

DlReasonerProfile DlReasonerProfile::racer_like() {
    return DlReasonerProfile(
        "Racer", std::make_unique<TableauLiteReasoner>(),
        ProfileCosts{/*load_base_ms=*/1150, /*per_class_ms=*/13.0,
                     /*per_axiom_ms=*/5.0, /*per_fact_us=*/650,
                     /*match_base_ms=*/760, /*per_query_ms=*/7.5});
}

DlReasonerProfile DlReasonerProfile::factpp_like() {
    return DlReasonerProfile(
        "FaCT++", std::make_unique<NaiveClosureReasoner>(),
        ProfileCosts{/*load_base_ms=*/1000, /*per_class_ms=*/12.0,
                     /*per_axiom_ms=*/4.5, /*per_fact_us=*/600,
                     /*match_base_ms=*/700, /*per_query_ms=*/7.5});
    // FaCT++ is emulated over the closure engine: its classification builds
    // a complete subsumption matrix the way FaCT++ builds its taxonomy.
}

DlReasonerProfile DlReasonerProfile::pellet_like() {
    return DlReasonerProfile(
        "Pellet", std::make_unique<RuleReasoner>(),
        ProfileCosts{/*load_base_ms=*/1245, /*per_class_ms=*/13.3,
                     /*per_axiom_ms=*/5.3, /*per_fact_us=*/620,
                     /*match_base_ms=*/950, /*per_query_ms=*/5.0});
}

}  // namespace sariadne::reasoner
