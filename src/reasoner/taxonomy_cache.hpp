// TaxonomyCache — classified hierarchies per (ontology URI, version).
// Classification runs once per ontology version, offline relative to the
// discovery fast path (the paper's central optimization: "semantic
// reasoning is performed off-line", §3). Re-registering a newer ontology
// version invalidates its entry lazily.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "ontology/registry.hpp"
#include "reasoner/reasoner.hpp"

namespace sariadne::reasoner {

class TaxonomyCache {
public:
    /// The cache owns its reasoner. Defaults to the worklist engine, which
    /// is the cheapest on typical discovery ontologies.
    explicit TaxonomyCache(std::unique_ptr<Reasoner> engine = nullptr)
        : engine_(engine ? std::move(engine) : std::make_unique<RuleReasoner>()) {}

    /// Classified taxonomy of `ontology`, computed on first use per
    /// (uri, version). The reference stays valid while the cache lives.
    const Taxonomy& taxonomy_of(const onto::Ontology& ontology) {
        Entry& entry = entries_[ontology.uri()];
        if (!entry.taxonomy || entry.version != ontology.version()) {
            entry.taxonomy = std::make_unique<Taxonomy>(engine_->classify(ontology));
            entry.version = ontology.version();
            ++classifications_;
        }
        return *entry.taxonomy;
    }

    /// Number of actual classification runs (cache misses) so far.
    std::uint64_t classifications() const noexcept { return classifications_; }

    Reasoner& engine() noexcept { return *engine_; }

private:
    struct Entry {
        std::unique_ptr<Taxonomy> taxonomy;
        std::uint32_t version = 0;
    };

    std::unique_ptr<Reasoner> engine_;
    std::unordered_map<std::string, Entry> entries_;
    std::uint64_t classifications_ = 0;
};

}  // namespace sariadne::reasoner
