// TaxonomyCache — classified hierarchies per (ontology URI, version).
// Classification runs once per ontology version, offline relative to the
// discovery fast path (the paper's central optimization: "semantic
// reasoning is performed off-line", §3). Re-registering a newer ontology
// version invalidates its entry lazily.
//
// Thread safety: taxonomy_of is serialized by an internal mutex so two
// threads racing on a cold ontology classify it exactly once; the
// returned reference stays valid while the cache lives (entries are only
// replaced on a version upgrade, which requires external quiescence).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "ontology/registry.hpp"
#include "reasoner/reasoner.hpp"
#include "support/lock_rank.hpp"

namespace sariadne::reasoner {

class TaxonomyCache {
public:
    /// The cache owns its reasoner. Defaults to the worklist engine, which
    /// is the cheapest on typical discovery ontologies.
    explicit TaxonomyCache(std::unique_ptr<Reasoner> engine = nullptr)
        : engine_(engine ? std::move(engine) : std::make_unique<RuleReasoner>()) {}

    /// Moving requires exclusive access to `other` (no concurrent users);
    /// the mutex itself is not transferred.
    TaxonomyCache(TaxonomyCache&& other) noexcept
        : engine_(std::move(other.engine_)),
          entries_(std::move(other.entries_)),
          classifications_(other.classifications_.load()) {}

    TaxonomyCache(const TaxonomyCache&) = delete;
    TaxonomyCache& operator=(const TaxonomyCache&) = delete;

    /// Classified taxonomy of `ontology`, computed on first use per
    /// (uri, version). The reference stays valid while the cache lives.
    const Taxonomy& taxonomy_of(const onto::Ontology& ontology) {
        std::lock_guard lock(mutex_);
        Entry& entry = entries_[ontology.uri()];
        if (!entry.taxonomy || entry.version != ontology.version()) {
            entry.taxonomy = std::make_unique<Taxonomy>(engine_->classify(ontology));
            entry.version = ontology.version();
            classifications_.fetch_add(1, std::memory_order_relaxed);
        }
        return *entry.taxonomy;
    }

    /// Number of actual classification runs (cache misses) so far.
    std::uint64_t classifications() const noexcept {
        return classifications_.load(std::memory_order_relaxed);
    }

    Reasoner& engine() noexcept { return *engine_; }

private:
    struct Entry {
        std::unique_ptr<Taxonomy> taxonomy;
        std::uint32_t version = 0;
    };

    std::unique_ptr<Reasoner> engine_;
    /// Guards entries_ (classify-once on cold misses). Innermost of the
    /// reasoning chain: held while no other lock is acquired.
    support::RankedMutex mutex_{support::LockRank::kTaxonomyCache};
    std::unordered_map<std::string, Entry> entries_;
    std::atomic<std::uint64_t> classifications_{0};
};

}  // namespace sariadne::reasoner
