// Reasoner interface: every engine turns an Ontology (TBox axioms) into a
// Taxonomy (complete classified hierarchy). Three genuinely different
// algorithms are provided —
//   * NaiveClosureReasoner : bitset transitive closure (Warshall) with an
//                            intersection-introduction fixpoint around it
//   * RuleReasoner         : forward-chaining worklist over subsumption facts
//   * TableauLiteReasoner  : goal-directed memoized ancestor expansion
// — all of which must produce identical Taxonomies (a property the test
// suite checks on randomized ontologies). Stats expose the amount of work
// done, which the DL-reasoner cost profiles (profiles.hpp) convert into
// the modeled 2006-scale costs of Figure 2.
#pragma once

#include <cstdint>
#include <string_view>

#include "ontology/ontology.hpp"
#include "ontology/taxonomy.hpp"

namespace sariadne::reasoner {

/// Work counters for one classification run.
struct ReasonerStats {
    std::uint64_t subsumption_tests = 0;  ///< pairwise subsumption queries
    std::uint64_t facts_derived = 0;      ///< subsumption facts added
    std::uint64_t iterations = 0;         ///< fixpoint rounds
};

class Reasoner {
public:
    virtual ~Reasoner() = default;

    virtual std::string_view name() const noexcept = 0;

    /// Classifies the ontology. Throws InconsistencyError if a named class
    /// is unsatisfiable (subsumed by two disjoint classes, or subsumption
    /// between declared-disjoint classes).
    virtual Taxonomy classify(const onto::Ontology& ontology) = 0;

    /// Work counters of the most recent classify() call.
    const ReasonerStats& last_stats() const noexcept { return stats_; }

protected:
    ReasonerStats stats_;
};

class NaiveClosureReasoner final : public Reasoner {
public:
    std::string_view name() const noexcept override { return "naive-closure"; }
    Taxonomy classify(const onto::Ontology& ontology) override;
};

class RuleReasoner final : public Reasoner {
public:
    std::string_view name() const noexcept override { return "rule-forward"; }
    Taxonomy classify(const onto::Ontology& ontology) override;
};

class TableauLiteReasoner final : public Reasoner {
public:
    std::string_view name() const noexcept override { return "tableau-lite"; }
    Taxonomy classify(const onto::Ontology& ontology) override;
};

}  // namespace sariadne::reasoner
