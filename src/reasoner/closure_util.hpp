// Internal helpers shared by the classification engines: a dense bitset
// matrix for subsumption closures, told-edge extraction from the axiom
// fragment, and the post-closure consistency check. Each engine computes
// the closure with its own algorithm; these utilities only cover the
// representation and the parts the OWL semantics fixes uniquely.
#pragma once

#include <cstdint>
#include <vector>

#include "ontology/ontology.hpp"
#include "support/errors.hpp"

namespace sariadne::reasoner::detail {

using onto::ConceptId;

/// Row-major square bitset matrix. bit(i, j) means "j subsumes i" (i ⊑ j).
class BitMatrix {
public:
    explicit BitMatrix(std::size_t n)
        : n_(n), words_((n + 63) / 64), bits_(n * words_, 0) {}

    std::size_t size() const noexcept { return n_; }
    std::size_t words_per_row() const noexcept { return words_; }
    const std::vector<std::uint64_t>& data() const noexcept { return bits_; }

    bool test(std::size_t i, std::size_t j) const noexcept {
        return (bits_[i * words_ + j / 64] >> (j % 64)) & 1u;
    }

    /// Sets bit (i, j); returns true if it was previously clear.
    bool set(std::size_t i, std::size_t j) noexcept {
        std::uint64_t& word = bits_[i * words_ + j / 64];
        const std::uint64_t mask = std::uint64_t{1} << (j % 64);
        if (word & mask) return false;
        word |= mask;
        return true;
    }

    /// Row i |= row j. Returns true if row i changed.
    bool merge_row(std::size_t i, std::size_t j) noexcept {
        bool changed = false;
        for (std::size_t w = 0; w < words_; ++w) {
            const std::uint64_t before = bits_[i * words_ + w];
            const std::uint64_t after = before | bits_[j * words_ + w];
            if (after != before) {
                bits_[i * words_ + w] = after;
                changed = true;
            }
        }
        return changed;
    }

    /// True if every set bit of row j is also set in row i (row j ⊆ row i).
    bool row_contains(std::size_t i, std::size_t j) const noexcept {
        for (std::size_t w = 0; w < words_; ++w) {
            if ((bits_[j * words_ + w] & ~bits_[i * words_ + w]) != 0) return false;
        }
        return true;
    }

private:
    std::size_t n_;
    std::size_t words_;
    std::vector<std::uint64_t> bits_;
};

/// Told direct subsumers of every class: SubClassOf parents, both directions
/// of every EquivalentClass axiom, and — for a defined intersection — each
/// part (defined ⊑ part_i is told; the converse introduction rule is the
/// engines' job).
inline std::vector<std::vector<ConceptId>> told_edges(
    const onto::Ontology& ontology) {
    std::vector<std::vector<ConceptId>> parents(ontology.class_count());
    for (ConceptId c = 0; c < ontology.class_count(); ++c) {
        const auto& decl = ontology.class_decl(c);
        parents[c] = decl.told_parents;
        for (const ConceptId eq : decl.equivalents) parents[c].push_back(eq);
        for (const ConceptId part : decl.intersection_of) {
            parents[c].push_back(part);
        }
    }
    return parents;
}

/// Throws InconsistencyError if some named class is subsumed by two classes
/// declared disjoint (covers direct disjointness violations as well, since
/// subsumption is reflexive in `closure`).
inline void check_consistency(const onto::Ontology& ontology,
                              const BitMatrix& closure) {
    for (ConceptId a = 0; a < ontology.class_count(); ++a) {
        for (const ConceptId b : ontology.class_decl(a).disjoints) {
            if (b < a) continue;  // stored symmetrically; check each pair once
            for (ConceptId x = 0; x < ontology.class_count(); ++x) {
                if (closure.test(x, a) && closure.test(x, b)) {
                    throw InconsistencyError(
                        "ontology '" + ontology.uri() + "': class '" +
                        std::string(ontology.class_name(x)) +
                        "' is subsumed by disjoint classes '" +
                        std::string(ontology.class_name(a)) + "' and '" +
                        std::string(ontology.class_name(b)) + "'");
                }
            }
        }
    }
}

}  // namespace sariadne::reasoner::detail
