// KnowledgeBase — the per-node semantic substrate: an ontology registry
// plus lazily maintained classified taxonomies and interval code tables,
// keyed by (URI, version). This is what a directory consults when it
// publishes or matches capabilities: all reasoning happened offline when
// the table was built, so the discovery-time operations are code
// comparisons (§3.2) — the paper's central performance claim.
//
// Thread safety: the read paths (code_table / subsumes / distance /
// environment_tag) may be called from any number of threads concurrently;
// the lazy table cache is guarded by a reader–writer lock and a first use
// builds the table under the writer lock. register_ontology and resolve
// mutate/read the registry without synchronization — ontology
// registration must be quiesced against concurrent discovery traffic
// (directories load their ontologies up front, §3 "off-line").
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "encoding/code_table.hpp"
#include "ontology/registry.hpp"
#include "support/flat_set.hpp"
#include "support/lock_rank.hpp"
#include "reasoner/taxonomy_cache.hpp"

namespace sariadne::encoding {

using onto::ConceptRef;
using onto::OntologyIndex;

/// Seed of the environment-tag fold. Anything that recomputes the tag from
/// cached per-ontology tables (e.g. matching::EncodedOracle) must fold with
/// the same seed to stay bit-identical with KnowledgeBase::environment_tag.
inline constexpr std::uint64_t kEnvironmentSeed = 0x5EED0C0DE5ULL;

class KnowledgeBase {
public:
    explicit KnowledgeBase(EncodingParams params = {},
                           std::unique_ptr<reasoner::Reasoner> engine = nullptr)
        : params_(params), taxonomies_(std::move(engine)) {}

    /// Moving requires exclusive access to `other` (no concurrent users);
    /// the table lock itself is not transferred.
    KnowledgeBase(KnowledgeBase&& other) noexcept
        : params_(other.params_),
          registry_(std::move(other.registry_)),
          taxonomies_(std::move(other.taxonomies_)),
          global_tag_(other.global_tag_.load(std::memory_order_relaxed)),
          tables_(std::move(other.tables_)) {}

    KnowledgeBase(const KnowledgeBase&) = delete;
    KnowledgeBase& operator=(const KnowledgeBase&) = delete;

    /// Registers (or upgrades) an ontology; classification and encoding
    /// happen lazily on first use.
    OntologyIndex register_ontology(onto::Ontology ontology) {
        const OntologyIndex index = registry_.add(std::move(ontology));
        global_tag_.store(compute_global_tag(), std::memory_order_release);
        return index;
    }

    const onto::OntologyRegistry& registry() const noexcept { return registry_; }

    const onto::Ontology& ontology(OntologyIndex index) const {
        return registry_.at(index);
    }

    /// Resolves "uri#LocalName"; throws LookupError when unknown.
    ConceptRef resolve(std::string_view qualified_name) const {
        return registry_.resolve(qualified_name);
    }

    std::string qualified_name(ConceptRef ref) const {
        return registry_.qualified_name(ref);
    }

    /// Classified taxonomy of an ontology (cached per version).
    const reasoner::Taxonomy& taxonomy(OntologyIndex index) {
        return taxonomies_.taxonomy_of(registry_.at(index));
    }

    /// Interval code table of an ontology (cached per version).
    const CodeTable& code_table(OntologyIndex index);

    /// Subsumption across the knowledge base. Concepts from different
    /// ontologies are unrelated by definition (the paper matches concepts
    /// within the ontology they belong to).
    bool subsumes(ConceptRef subsumer, ConceptRef subsumee);

    /// The paper's d(concept1, concept2) evaluated on codes.
    std::optional<int> distance(ConceptRef subsumer, ConceptRef subsumee);

    /// Combined code-version tag of a set of ontologies: the tag a
    /// description computed against this knowledge-base state should embed
    /// (§3.2 "service advertisements and service requests specify the
    /// version of the codes being used"). Changes whenever any referenced
    /// ontology's version or the encoding parameters change.
    std::uint64_t environment_tag(const FlatSet<OntologyIndex>& ontologies) {
        std::uint64_t acc = kEnvironmentSeed;
        for (const OntologyIndex index : ontologies) {
            acc = combine_unordered(acc, code_table(index).version_tag());
        }
        return mix64(acc);
    }

    /// Whole-environment tag: one word summarizing every registered
    /// ontology's (URI, version). This is the coarse freshness check the
    /// matching fast path compares per call (two integer compares), so it
    /// is maintained eagerly at registration and read with one atomic
    /// load. Any registration invalidates all signatures — acceptable
    /// because registration is quiesced and rare (§3 "off-line"), while
    /// the per-set overload above stays the precise wire-protocol tag.
    /// Never 0 (0 is DistanceOracle's "no fast path" sentinel).
    std::uint64_t environment_tag() const noexcept {
        return global_tag_.load(std::memory_order_acquire);
    }

    /// Read-only handle on the whole-environment tag word itself. Encoded
    /// oracles register this with DistanceOracle so the per-match dispatch
    /// guard is a plain load through a data pointer instead of a virtual
    /// call — the tag's lifetime is the knowledge base's, which outlives
    /// every oracle constructed over it.
    const std::atomic<std::uint64_t>& environment_tag_word() const noexcept {
        return global_tag_;
    }

    /// Number of classification runs performed so far (cache misses) —
    /// lets tests assert that the discovery fast path does no reasoning.
    std::uint64_t classification_runs() const noexcept {
        return taxonomies_.classifications();
    }

    const EncodingParams& params() const noexcept { return params_; }

private:
    struct TableEntry {
        std::unique_ptr<CodeTable> table;
        std::uint32_t version = 0;
    };

    /// Folds (URI, version) of every registered ontology plus the encoding
    /// parameters. Registry-only on purpose: it must not force lazy table
    /// builds, and table contents are a function of exactly these inputs.
    std::uint64_t compute_global_tag() const {
        std::uint64_t acc = kEnvironmentSeed;
        for (OntologyIndex i = 0; i < registry_.size(); ++i) {
            const onto::Ontology& o = registry_.at(i);
            acc = combine_unordered(
                acc, mix64(fnv1a64(o.uri()) ^
                           (std::uint64_t{o.version()} << 32) ^
                           (std::uint64_t{params_.p} << 8) ^ params_.k));
        }
        const std::uint64_t tag = mix64(acc);
        return tag != 0 ? tag : 1;  // keep 0 free as the sentinel
    }

    EncodingParams params_;
    onto::OntologyRegistry registry_;
    reasoner::TaxonomyCache taxonomies_;
    std::atomic<std::uint64_t> global_tag_{1};
    /// Guards tables_. Ranked below the taxonomy-cache mutex: a cold
    /// code_table build classifies under the writer lock.
    mutable support::RankedSharedMutex tables_mutex_{
        support::LockRank::kKnowledgeBaseTables};
    std::unordered_map<std::string, TableEntry> tables_;
};

}  // namespace sariadne::encoding
