// NaiveClosureReasoner: the textbook algorithm. Builds the told-subsumption
// adjacency matrix, closes it with Warshall's algorithm (bitset rows make
// one closure pass O(n^2 * n/64)), then applies the intersection
// introduction rule (X ⊑ every part of a defined class D implies X ⊑ D)
// and re-closes, iterating to fixpoint. Simple, obviously correct, and the
// costliest of the three engines on large ontologies — it plays the role
// of the heavyweight end of the Figure 2 comparison.
#include "reasoner/closure_util.hpp"
#include "reasoner/reasoner.hpp"

namespace sariadne::reasoner {

using detail::BitMatrix;
using onto::ConceptId;

Taxonomy NaiveClosureReasoner::classify(const onto::Ontology& ontology) {
    stats_ = ReasonerStats{};
    const std::size_t n = ontology.class_count();
    BitMatrix closure(n);

    // Seed: reflexivity plus told edges.
    const auto told = detail::told_edges(ontology);
    for (ConceptId c = 0; c < n; ++c) {
        closure.set(c, c);
        for (const ConceptId parent : told[c]) {
            if (closure.set(c, parent)) ++stats_.facts_derived;
        }
    }

    // Collect defined intersections once.
    struct Definition {
        ConceptId defined;
        const std::vector<ConceptId>* parts;
    };
    std::vector<Definition> definitions;
    for (ConceptId c = 0; c < n; ++c) {
        const auto& parts = ontology.class_decl(c).intersection_of;
        if (!parts.empty()) definitions.push_back({c, &parts});
    }

    bool changed = true;
    while (changed) {
        ++stats_.iterations;
        changed = false;

        // Warshall closure: if i ⊑ k then i inherits all of k's subsumers.
        for (std::size_t k = 0; k < n; ++k) {
            for (std::size_t i = 0; i < n; ++i) {
                ++stats_.subsumption_tests;
                if (closure.test(i, k) && closure.merge_row(i, k)) {
                    changed = true;
                    ++stats_.facts_derived;
                }
            }
        }

        // Intersection introduction.
        for (const auto& [defined, parts] : definitions) {
            for (ConceptId x = 0; x < n; ++x) {
                bool all = true;
                for (const ConceptId part : *parts) {
                    ++stats_.subsumption_tests;
                    if (!closure.test(x, part)) {
                        all = false;
                        break;
                    }
                }
                if (all && closure.set(x, defined)) {
                    changed = true;
                    ++stats_.facts_derived;
                }
            }
        }
    }

    detail::check_consistency(ontology, closure);
    return Taxonomy::from_closure(n, closure.data(), closure.words_per_row());
}

}  // namespace sariadne::reasoner
