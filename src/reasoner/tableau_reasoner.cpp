// TableauLiteReasoner: goal-directed classification in the spirit of
// tableau-based DL systems (FaCT++/Racer), restricted to our axiom
// fragment. For each class it expands the set of its subsumers by memoized
// depth-first traversal of told edges; the intersection-introduction rule
// can invalidate memoized ancestor sets, so expansion runs in rounds until
// no definition fires anymore. Unlike the worklist engine, work here is
// organized per-class (cache-friendly, mirrors how tableau systems reuse
// satisfiability caches between subsumption tests).
#include <vector>

#include "reasoner/closure_util.hpp"
#include "reasoner/reasoner.hpp"

namespace sariadne::reasoner {

using detail::BitMatrix;
using onto::ConceptId;

namespace {

/// Per-round memoized ancestor expansion over an edge list.
class AncestorExpander {
public:
    AncestorExpander(std::size_t n,
                     const std::vector<std::vector<ConceptId>>& edges,
                     BitMatrix& closure, ReasonerStats& stats)
        : edges_(edges), closure_(closure), stats_(stats), state_(n, State::kFresh) {}

    /// Ensures row x of the closure contains all ancestors reachable via
    /// edges_ (transitively), reusing rows already expanded this round.
    void expand(ConceptId x) {
        if (state_[x] == State::kDone) return;
        // A told cycle (mutual subsumption) would revisit an in-progress
        // node; the bits already merged are exactly the cycle's shared
        // ancestors, so treating it as done is sound — the outer fixpoint
        // re-runs until stable.
        if (state_[x] == State::kExpanding) return;
        state_[x] = State::kExpanding;
        closure_.set(x, x);
        for (const ConceptId parent : edges_[x]) {
            ++stats_.subsumption_tests;
            closure_.set(x, parent);
            expand(parent);
            if (closure_.merge_row(x, parent)) ++stats_.facts_derived;
        }
        state_[x] = State::kDone;
    }

private:
    enum class State : std::uint8_t { kFresh, kExpanding, kDone };

    const std::vector<std::vector<ConceptId>>& edges_;
    BitMatrix& closure_;
    ReasonerStats& stats_;
    std::vector<State> state_;
};

}  // namespace

Taxonomy TableauLiteReasoner::classify(const onto::Ontology& ontology) {
    stats_ = ReasonerStats{};
    const std::size_t n = ontology.class_count();
    BitMatrix closure(n);

    // Edge list grows as intersection definitions fire; rounds repeat until
    // no new edge is added.
    auto edges = detail::told_edges(ontology);

    struct Definition {
        ConceptId defined;
        const std::vector<ConceptId>* parts;
    };
    std::vector<Definition> definitions;
    for (ConceptId c = 0; c < n; ++c) {
        const auto& parts = ontology.class_decl(c).intersection_of;
        if (!parts.empty()) definitions.push_back({c, &parts});
    }

    bool changed = true;
    while (changed) {
        ++stats_.iterations;
        changed = false;

        // A told cycle (equivalence) can leave an in-progress row incomplete
        // within a single pass; repeat expansion until no new fact appears.
        std::uint64_t before_facts;
        do {
            before_facts = stats_.facts_derived;
            AncestorExpander expander(n, edges, closure, stats_);
            for (ConceptId c = 0; c < n; ++c) expander.expand(c);
        } while (stats_.facts_derived != before_facts);

        // Fire intersection introductions as new *edges* so the next round's
        // expansion propagates them transitively.
        for (const auto& [defined, parts] : definitions) {
            for (ConceptId x = 0; x < n; ++x) {
                if (closure.test(x, defined)) continue;
                bool all = true;
                for (const ConceptId part : *parts) {
                    ++stats_.subsumption_tests;
                    if (!closure.test(x, part)) {
                        all = false;
                        break;
                    }
                }
                if (all) {
                    edges[x].push_back(defined);
                    closure.set(x, defined);
                    ++stats_.facts_derived;
                    changed = true;
                }
            }
        }
    }

    detail::check_consistency(ontology, closure);
    return Taxonomy::from_closure(n, closure.data(), closure.words_per_row());
}

}  // namespace sariadne::reasoner
