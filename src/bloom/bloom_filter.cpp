#include "bloom/bloom_filter.hpp"

#include <bit>
#include <cmath>

#include "support/contracts.hpp"
#include "support/errors.hpp"

namespace sariadne::bloom {

BloomFilter::BloomFilter(BloomParams params)
    : params_(params), words_((params.bits + 63) / 64, 0) {
    SARIADNE_EXPECTS(params.bits >= 64);
    SARIADNE_EXPECTS(params.hash_count >= 1 && params.hash_count <= 32);
}

void BloomFilter::insert(const Hash128& key) {
    for (std::uint32_t i = 0; i < params_.hash_count; ++i) {
        const std::uint64_t bit = double_hash(key, i, params_.bits);
        words_[bit / 64] |= std::uint64_t{1} << (bit % 64);
    }
}

bool BloomFilter::possibly_contains(const Hash128& key) const noexcept {
    for (std::uint32_t i = 0; i < params_.hash_count; ++i) {
        const std::uint64_t bit = double_hash(key, i, params_.bits);
        if (((words_[bit / 64] >> (bit % 64)) & 1u) == 0) return false;
    }
    return true;
}

Hash128 BloomFilter::element_key(std::string_view uri) noexcept {
    return murmur3_128(uri);
}

Hash128 BloomFilter::set_key(std::span<const std::string> uris) noexcept {
    std::uint64_t acc1 = 0x0B10F11E00000001ULL;
    std::uint64_t acc2 = 0x0B10F11E00000002ULL;
    for (const std::string& uri : uris) {
        const Hash128 h = murmur3_128(uri);
        acc1 = combine_unordered(acc1, h.h1);
        acc2 = combine_unordered(acc2, h.h2);
    }
    return Hash128{mix64(acc1), mix64(acc2) | 1u};  // odd h2: full-period stride
}

void BloomFilter::insert_ontology_set(std::span<const std::string> uris) {
    // Element keys only: possibly_covers probes per-URI membership, so a
    // whole-set key would never be queried — inserting it only burned
    // hash_count extra bits per advertisement and inflated every
    // summary's false-positive rate (set_key remains available for
    // callers that do exact-set probes).
    for (const std::string& uri : uris) insert(element_key(uri));
}

bool BloomFilter::possibly_covers(
    std::span<const std::string> uris) const noexcept {
    for (const std::string& uri : uris) {
        if (!possibly_contains(element_key(uri))) return false;
    }
    return true;
}

void BloomFilter::merge(const BloomFilter& other) {
    if (other.params_ != params_) {
        throw Error("cannot merge Bloom filters with different parameters");
    }
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

double BloomFilter::fill_ratio() const noexcept {
    return static_cast<double>(set_bit_count()) /
           static_cast<double>(params_.bits);
}

double BloomFilter::false_positive_rate() const noexcept {
    return std::pow(fill_ratio(), params_.hash_count);
}

double BloomFilter::expected_false_positive_rate(
    const BloomParams& params, std::size_t insertions) noexcept {
    const double k = params.hash_count;
    const double exponent = -k * static_cast<double>(insertions) /
                            static_cast<double>(params.bits);
    return std::pow(1.0 - std::exp(exponent), k);
}

std::uint32_t BloomFilter::optimal_hash_count(std::uint32_t bits,
                                              std::size_t insertions) noexcept {
    if (insertions == 0) return 1;
    const double k = std::round(static_cast<double>(bits) /
                                static_cast<double>(insertions) * std::log(2.0));
    if (k < 1.0) return 1;
    if (k > 32.0) return 32;
    return static_cast<std::uint32_t>(k);
}

void BloomFilter::clear() noexcept {
    for (auto& word : words_) word = 0;
}

std::size_t BloomFilter::set_bit_count() const noexcept {
    std::size_t count = 0;
    for (const auto word : words_) count += std::popcount(word);
    return count;
}

std::vector<std::uint64_t> BloomFilter::serialize() const {
    std::vector<std::uint64_t> out;
    out.reserve(words_.size() + 1);
    out.push_back((std::uint64_t{params_.bits} << 32) | params_.hash_count);
    out.insert(out.end(), words_.begin(), words_.end());
    return out;
}

BloomFilter BloomFilter::deserialize(std::span<const std::uint64_t> data) {
    // Wire data is peer-controlled: validate with thrown Errors, not
    // contracts. A zero hash_count would make possibly_contains
    // vacuously true (every peer "covers" every query) and absurd bit
    // counts would allocate unboundedly — both must be rejected before
    // any filter is constructed.
    if (data.empty()) throw Error("empty Bloom filter wire data");
    BloomParams params{static_cast<std::uint32_t>(data[0] >> 32),
                       static_cast<std::uint32_t>(data[0] & 0xFFFFFFFFu)};
    if (params.bits < 64) {
        throw Error("Bloom filter wire data: bits=" +
                    std::to_string(params.bits) + " below the 64-bit minimum");
    }
    if (params.hash_count < 1 || params.hash_count > 32) {
        throw Error("Bloom filter wire data: hash_count=" +
                    std::to_string(params.hash_count) +
                    " outside [1, 32]");
    }
    const std::size_t words = (std::size_t{params.bits} + 63) / 64;
    if (data.size() - 1 != words) {
        throw Error("Bloom filter wire data has wrong length");
    }
    BloomFilter filter(params);
    for (std::size_t i = 0; i < filter.words_.size(); ++i) {
        filter.words_[i] = data[i + 1];
    }
    return filter;
}

std::optional<BloomFilter> BloomFilter::try_deserialize(
    std::span<const std::uint64_t> data) noexcept {
    try {
        return deserialize(data);
    } catch (const Error&) {
        return std::nullopt;
    }
}

}  // namespace sariadne::bloom
