// Bloom filters for directory content summaries (§4). Each S-Ariadne
// directory summarizes, for every cached capability, the *set of ontology
// URIs* its description draws from: the set is hashed with k derived hash
// functions (Kirsch–Mitzenmacher double hashing over a 128-bit Murmur3
// base) and the corresponding bits are set in an m-bit vector. A remote
// directory tests a request's ontology set against the filter: any clear
// bit proves absence; all-set means "likely cached", triggering a real
// forward. Filters are tiny, mergeable and serializable, so exchanging
// them is how the directory backbone learns where to route requests.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/hash.hpp"

namespace sariadne::bloom {

struct BloomParams {
    std::uint32_t bits = 1024;     ///< m: filter size in bits
    std::uint32_t hash_count = 4;  ///< k: derived hash functions

    friend bool operator==(const BloomParams&, const BloomParams&) noexcept =
        default;
};

class BloomFilter {
public:
    explicit BloomFilter(BloomParams params = {});

    const BloomParams& params() const noexcept { return params_; }

    /// Inserts an *ontology set key*: the order-independent hash of a set
    /// of ontology URIs (see set_key).
    void insert(const Hash128& key);

    /// True if the key may have been inserted (no false negatives).
    bool possibly_contains(const Hash128& key) const noexcept;

    /// Inserts the element key of every URI in `uris` — exactly what
    /// possibly_covers probes, so membership tests succeed for requests
    /// using any *subset* of an advertisement's ontologies. No combined
    /// set key is inserted: it would never be queried and only inflates
    /// the fill ratio.
    void insert_ontology_set(std::span<const std::string> uris);

    /// May the directory behind this filter cache a capability relevant to
    /// a request drawing on `uris`? True iff every URI's element key is
    /// possibly present.
    bool possibly_covers(std::span<const std::string> uris) const noexcept;

    /// Order-independent key of a set of URIs (for callers doing
    /// exact-set probes; insert_ontology_set itself stores element keys
    /// only).
    static Hash128 set_key(std::span<const std::string> uris) noexcept;

    /// Key of a single URI.
    static Hash128 element_key(std::string_view uri) noexcept;

    /// Union with a filter of identical parameters.
    void merge(const BloomFilter& other);

    /// Fraction of bits set — drives the reactive re-exchange policy.
    double fill_ratio() const noexcept;

    /// Expected false-positive probability given the current fill ratio:
    /// fill^k.
    double false_positive_rate() const noexcept;

    /// Theoretical false-positive rate after n insertions:
    /// (1 - e^{-kn/m})^k.
    static double expected_false_positive_rate(const BloomParams& params,
                                               std::size_t insertions) noexcept;

    /// Optimal k for a given m and expected n: (m/n) ln 2.
    static std::uint32_t optimal_hash_count(std::uint32_t bits,
                                            std::size_t insertions) noexcept;

    void clear() noexcept;

    /// Compact wire form (params + bit words) and its inverse.
    std::vector<std::uint64_t> serialize() const;
    static BloomFilter deserialize(std::span<const std::uint64_t> data);

    /// Non-throwing deserialize for peer-controlled wire data: returns
    /// nullopt instead of throwing on invalid params or a truncated image,
    /// so protocol handlers can contain hostile summaries without
    /// unwinding their event loop.
    static std::optional<BloomFilter> try_deserialize(
        std::span<const std::uint64_t> data) noexcept;

    std::size_t set_bit_count() const noexcept;

    friend bool operator==(const BloomFilter&, const BloomFilter&) noexcept =
        default;

private:
    BloomParams params_;
    std::vector<std::uint64_t> words_;
};

}  // namespace sariadne::bloom
