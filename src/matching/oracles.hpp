// DistanceOracle implementations.
//
//   EncodedOracle  — interval-code comparison against a KnowledgeBase; no
//                    reasoning at query time (the paper's optimized path).
//   TaxonomyOracle — BFS level distance on classified taxonomies; used as
//                    the correctness reference (encoded results must agree)
//                    and by the online matcher.
//
// Oracles are deliberately *not* thread-safe (they carry a query counter
// and, for EncodedOracle, a code-table cache): concurrent callers each
// construct their own — an oracle is two words plus a small vector, and
// SemanticDirectory materializes one per publish/query operation.
#pragma once

#include <vector>

#include "encoding/knowledge_base.hpp"
#include "matching/match.hpp"
#include "ontology/registry.hpp"
#include "reasoner/taxonomy_cache.hpp"

namespace sariadne::matching {

class EncodedOracle final : public DistanceOracle {
public:
    explicit EncodedOracle(encoding::KnowledgeBase& kb) noexcept : kb_(&kb) {}

    std::optional<int> distance(ConceptRef subsumer, ConceptRef subsumee) override {
        ++queries_;
        if (subsumer.ontology != subsumee.ontology) return std::nullopt;
        return table(subsumer.ontology)
            .distance(subsumer.concept_id, subsumee.concept_id);
    }

private:
    /// Memoized code-table lookup: the first d() against an ontology pays
    /// the knowledge base's reader lock; subsequent ones are a version
    /// compare plus an indexed load. Keeps the contended lock off the
    /// per-concept hot path under parallel queries.
    const encoding::CodeTable& table(onto::OntologyIndex index) {
        if (index >= cache_.size()) cache_.resize(index + 1);
        CacheEntry& slot = cache_[index];
        const std::uint32_t version = kb_->registry().at(index).version();
        if (slot.table == nullptr || slot.version != version) {
            slot.table = &kb_->code_table(index);
            slot.version = version;
        }
        return *slot.table;
    }

    struct CacheEntry {
        const encoding::CodeTable* table = nullptr;
        std::uint32_t version = 0;
    };

    encoding::KnowledgeBase* kb_;
    std::vector<CacheEntry> cache_;
};

class TaxonomyOracle final : public DistanceOracle {
public:
    TaxonomyOracle(const onto::OntologyRegistry& registry,
                   reasoner::TaxonomyCache& taxonomies) noexcept
        : registry_(&registry), taxonomies_(&taxonomies) {}

    std::optional<int> distance(ConceptRef subsumer, ConceptRef subsumee) override {
        ++queries_;
        if (subsumer.ontology != subsumee.ontology) return std::nullopt;
        const reasoner::Taxonomy& taxonomy =
            taxonomies_->taxonomy_of(registry_->at(subsumer.ontology));
        return taxonomy.distance(subsumer.concept_id, subsumee.concept_id);
    }

private:
    const onto::OntologyRegistry* registry_;
    reasoner::TaxonomyCache* taxonomies_;
};

}  // namespace sariadne::matching
