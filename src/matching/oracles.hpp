// DistanceOracle implementations.
//
//   EncodedOracle  — interval-code comparison against a KnowledgeBase; no
//                    reasoning at query time (the paper's optimized path).
//   TaxonomyOracle — BFS level distance on classified taxonomies; used as
//                    the correctness reference (encoded results must agree)
//                    and by the online matcher.
#pragma once

#include "encoding/knowledge_base.hpp"
#include "matching/match.hpp"
#include "ontology/registry.hpp"
#include "reasoner/taxonomy_cache.hpp"

namespace sariadne::matching {

class EncodedOracle final : public DistanceOracle {
public:
    explicit EncodedOracle(encoding::KnowledgeBase& kb) noexcept : kb_(&kb) {}

    std::optional<int> distance(ConceptRef subsumer, ConceptRef subsumee) override {
        ++queries_;
        return kb_->distance(subsumer, subsumee);
    }

private:
    encoding::KnowledgeBase* kb_;
};

class TaxonomyOracle final : public DistanceOracle {
public:
    TaxonomyOracle(const onto::OntologyRegistry& registry,
                   reasoner::TaxonomyCache& taxonomies) noexcept
        : registry_(&registry), taxonomies_(&taxonomies) {}

    std::optional<int> distance(ConceptRef subsumer, ConceptRef subsumee) override {
        ++queries_;
        if (subsumer.ontology != subsumee.ontology) return std::nullopt;
        const reasoner::Taxonomy& taxonomy =
            taxonomies_->taxonomy_of(registry_->at(subsumer.ontology));
        return taxonomy.distance(subsumer.concept_id, subsumee.concept_id);
    }

private:
    const onto::OntologyRegistry* registry_;
    reasoner::TaxonomyCache* taxonomies_;
};

}  // namespace sariadne::matching
