// DistanceOracle implementations.
//
//   EncodedOracle  — interval-code comparison against a KnowledgeBase; no
//                    reasoning at query time (the paper's optimized path).
//   TaxonomyOracle — BFS level distance on classified taxonomies; used as
//                    the correctness reference (encoded results must agree)
//                    and by the online matcher.
//
// Oracles are deliberately *not* thread-safe (they carry a query counter
// and, for EncodedOracle, a code-table cache plus a small distance memo):
// concurrent callers each construct their own — an oracle is a few KB, and
// SemanticDirectory materializes one per publish/query operation.
#pragma once

#include <array>

#include "reasoner/knowledge_base.hpp"
#include "matching/match.hpp"
#include "ontology/registry.hpp"
#include "reasoner/taxonomy_cache.hpp"
#include "support/hash.hpp"

namespace sariadne::matching {

class EncodedOracle final : public DistanceOracle {
public:
    explicit EncodedOracle(encoding::KnowledgeBase& kb) noexcept : kb_(&kb) {
        global_tag_word_ = &kb.environment_tag_word();
    }

    std::optional<int> distance(ConceptRef subsumer, ConceptRef subsumee) override {
        ++queries_;  // counted before the memo: queries() is path-invariant
        if (subsumer.ontology != subsumee.ontology) return std::nullopt;
        // Per-operation direct-mapped memo: DAG traversal re-asks the same
        // (subsumer, subsumee) pairs at every level it descends through.
        // Slots store the exact triple, so a hash collision evicts instead
        // of answering wrong; staleness is impossible within one oracle
        // lifetime (ontology registration is quiesced, see header).
        const std::uint64_t key =
            mix64((std::uint64_t{subsumer.concept_id} << 32) ^
                  subsumee.concept_id ^
                  (std::uint64_t{subsumer.ontology} << 17));
        MemoEntry& entry = memo_[key & (kMemoSlots - 1)];
        if (entry.ontology == subsumer.ontology &&
            entry.subsumer == subsumer.concept_id &&
            entry.subsumee == subsumee.concept_id) {
            if (entry.dist < 0) return std::nullopt;
            return entry.dist;
        }
        const auto d = table(subsumer.ontology)
                           .distance(subsumer.concept_id, subsumee.concept_id);
        entry = MemoEntry{subsumer.ontology, subsumer.concept_id,
                          subsumee.concept_id, d ? *d : -1};
        return d;
    }

    /// The precise per-set tag attach_code_signature embedded in
    /// environment_tag: same fold, same seed as
    /// KnowledgeBase::environment_tag(set), but over the oracle's cached
    /// table pointers (no reader lock after first touch). Used by
    /// publish-time version validation, not by the per-match dispatch
    /// guard (that compares global_environment_tag(), one atomic load).
    std::uint64_t environment_tag(
        const FlatSet<onto::OntologyIndex>& ontologies) override {
        std::uint64_t acc = encoding::kEnvironmentSeed;
        for (const onto::OntologyIndex index : ontologies) {
            acc = combine_unordered(acc, table(index).version_tag());
        }
        return mix64(acc);
    }

private:
    /// Memoized code-table lookup: the first d() against an ontology pays
    /// the knowledge base's reader lock; subsequent ones are an indexed
    /// load. Filled once per ontology — registration requires quiescence
    /// (see header), so a table pointer cannot go stale within one
    /// oracle's lifetime. Keeps the contended lock off the per-concept
    /// hot path under parallel queries. The cache is a fixed inline array
    /// (oracles are constructed per operation — a vector here would be a
    /// heap allocation on every query, breaking the zero-alloc steady
    /// state); environments with more ontologies than slots fall back to
    /// the knowledge-base lookup for the overflow indices.
    const encoding::CodeTable& table(onto::OntologyIndex index) {
        if (index >= kTableSlots) return kb_->code_table(index);
        const encoding::CodeTable*& slot = cache_[index];
        if (slot == nullptr) slot = &kb_->code_table(index);
        return *slot;
    }

    // All-zero is a *valid* entry — "distance(0, 0) in ontology 0 is 0" —
    // which is true by reflexivity, so zero-initialization doubles as a
    // correct warm state and construction is one small memset. Kept small
    // (one page would be re-cleared per oracle, i.e. per operation): the
    // DAG re-asks the same pairs level after level within one traversal,
    // which a 64-slot working set covers.
    struct MemoEntry {
        std::uint32_t ontology = 0;
        std::uint32_t subsumer = 0;
        std::uint32_t subsumee = 0;
        std::int32_t dist = 0;  ///< −1 encodes "no subsumption" (nullopt)
    };
    static constexpr std::size_t kMemoSlots = 64;  // power of two
    static constexpr std::size_t kTableSlots = 64;

    encoding::KnowledgeBase* kb_;
    std::array<const encoding::CodeTable*, kTableSlots> cache_{};
    std::array<MemoEntry, kMemoSlots> memo_{};
};

class TaxonomyOracle final : public DistanceOracle {
public:
    TaxonomyOracle(const onto::OntologyRegistry& registry,
                   reasoner::TaxonomyCache& taxonomies) noexcept
        : registry_(&registry), taxonomies_(&taxonomies) {}

    std::optional<int> distance(ConceptRef subsumer, ConceptRef subsumee) override {
        ++queries_;
        if (subsumer.ontology != subsumee.ontology) return std::nullopt;
        const reasoner::Taxonomy& taxonomy =
            taxonomies_->taxonomy_of(registry_->at(subsumer.ontology));
        return taxonomy.distance(subsumer.concept_id, subsumee.concept_id);
    }

private:
    const onto::OntologyRegistry* registry_;
    reasoner::TaxonomyCache* taxonomies_;
};

}  // namespace sariadne::matching
