#include "matching/match.hpp"

#include <limits>
#include <vector>

namespace sariadne::matching {

namespace {

/// For every concept in `expected`, finds the minimum d(subsumer, subsumee)
/// over `offered` — with the provider-side concept passed as `subsumer`
/// according to `provider_expects`. Accumulates the sum into `total`;
/// returns false as soon as one expected concept has no partner.
bool cover_all(const std::vector<ConceptRef>& expected,
               const std::vector<ConceptRef>& offered, bool provider_expects,
               DistanceOracle& oracle, int& total) {
    for (const ConceptRef want : expected) {
        int best = std::numeric_limits<int>::max();
        for (const ConceptRef have : offered) {
            // Provider-side concept is always the subsumer (see header).
            const auto d = provider_expects ? oracle.distance(want, have)
                                            : oracle.distance(have, want);
            if (d && *d < best) {
                best = *d;
                if (best == 0) break;  // cannot improve
            }
        }
        if (best == std::numeric_limits<int>::max()) return false;
        total += best;
    }
    return true;
}

}  // namespace

MatchOutcome match_capability(const ResolvedCapability& provided,
                              const ResolvedCapability& required,
                              DistanceOracle& oracle) {
    int total = 0;
    // Inputs: the provider's expected inputs must all be supplied; the
    // provider-side (expected) concept subsumes the offered one.
    if (!cover_all(provided.inputs, required.inputs, /*provider_expects=*/true,
                   oracle, total)) {
        return {false, 0};
    }
    // Outputs: the requester's expected outputs must all be delivered; the
    // provider-side (offered) concept subsumes the expected one.
    if (!cover_all(required.outputs, provided.outputs, /*provider_expects=*/false,
                   oracle, total)) {
        return {false, 0};
    }
    // Properties (service category folded in): required ones must be
    // provided; the provided concept subsumes the required one.
    if (!cover_all(required.properties, provided.properties,
                   /*provider_expects=*/false, oracle, total)) {
        return {false, 0};
    }
    return {true, total};
}

bool equivalent_capabilities(const ResolvedCapability& a,
                             const ResolvedCapability& b,
                             DistanceOracle& oracle) {
    const MatchOutcome forward = match_capability(a, b, oracle);
    if (!forward.matched || forward.semantic_distance != 0) return false;
    const MatchOutcome backward = match_capability(b, a, oracle);
    return backward.matched && backward.semantic_distance == 0;
}

}  // namespace sariadne::matching
