#include "matching/match.hpp"

#include <limits>
#include <vector>

namespace sariadne::matching {

namespace {

/// For every concept in `expected`, finds the minimum d(subsumer, subsumee)
/// over `offered` — with the provider-side concept passed as `subsumer`
/// according to `provider_expects`. Accumulates the sum into `total`;
/// returns false as soon as one expected concept has no partner.
bool cover_all(const std::vector<ConceptRef>& expected,
               const std::vector<ConceptRef>& offered, bool provider_expects,
               DistanceOracle& oracle, int& total) {
    for (const ConceptRef want : expected) {
        int best = std::numeric_limits<int>::max();
        for (const ConceptRef have : offered) {
            // Provider-side concept is always the subsumer (see header).
            const auto d = provider_expects ? oracle.distance(want, have)
                                            : oracle.distance(have, want);
            if (d && *d < best) {
                best = *d;
                if (best == 0) break;  // cannot improve
            }
        }
        if (best == std::numeric_limits<int>::max()) return false;
        total += best;
    }
    return true;
}

/// d() on packed signature codes with −1 for the oracle's nullopt: −1
/// across ontologies, 0 within one equivalence class, otherwise the
/// merge-scan minimum nesting distance (see packed_distance, whose no-pair
/// answer is already −1). Mirrors EncodedOracle::distance exactly; the
/// sentinel keeps std::optional construction out of the innermost loop.
inline int coded_distance(const encoding::CodedInterval* subsumer_base,
                          const desc::CodedConceptSpan& subsumer,
                          const encoding::CodedInterval* subsumee_base,
                          const desc::CodedConceptSpan& subsumee) noexcept {
    if (subsumer.ontology != subsumee.ontology) return -1;
    if (subsumer.canonical == subsumee.canonical) return 0;
    return encoding::packed_distance(subsumer_base + subsumer.begin,
                                     subsumer.count,
                                     subsumee_base + subsumee.begin,
                                     subsumee.count);
}

/// cover_all on packed signatures — same iteration order, early exits and
/// pair accounting as the oracle path, but no virtual dispatch and no
/// pointer-chasing beyond the two flat interval arrays. The subsumption
/// direction is a template parameter so the per-pair direction branch
/// compiles away (the call sites fix it statically anyway). always_inline
/// matters: the clause-shape fast path below pushes the body past the
/// inliner's default budget, and an out-of-line call per clause costs more
/// than the whole 1x1 case.
template <bool kProviderExpects>
[[gnu::always_inline]] inline bool cover_all_encoded(const desc::CodeSignature& expected_sig,
                       const std::vector<desc::CodedConceptSpan>& expected,
                       const desc::CodeSignature& offered_sig,
                       const std::vector<desc::CodedConceptSpan>& offered,
                       std::uint64_t& pairs, int& total) {
    const encoding::CodedInterval* expected_base =
        expected_sig.intervals.data();
    const encoding::CodedInterval* offered_base = offered_sig.intervals.data();
    if (expected.size() == 1 && offered.size() == 1) {
        // One expected concept against one offered concept — the dominant
        // clause shape (capabilities rarely carry more than a couple of
        // concepts per role). Same single pair the generic loop would
        // evaluate, without the loop or best-tracking machinery.
        ++pairs;
        const int d = kProviderExpects
                          ? coded_distance(expected_base, expected[0],
                                           offered_base, offered[0])
                          : coded_distance(offered_base, offered[0],
                                           expected_base, expected[0]);
        if (d < 0) return false;
        total += d;
        return true;
    }
    const desc::CodedConceptSpan* offered_begin = offered.data();
    const desc::CodedConceptSpan* offered_end = offered_begin + offered.size();
    for (const desc::CodedConceptSpan& want : expected) {
        int best = std::numeric_limits<int>::max();
        for (const desc::CodedConceptSpan* have = offered_begin;
             have != offered_end; ++have) {
            ++pairs;
            const int d =
                kProviderExpects
                    ? coded_distance(expected_base, want, offered_base, *have)
                    : coded_distance(offered_base, *have, expected_base, want);
            if (d >= 0 && d < best) {
                best = d;
                if (best == 0) break;  // cannot improve
            }
        }
        if (best == std::numeric_limits<int>::max()) return false;
        total += best;
    }
    return true;
}

}  // namespace

MatchOutcome match_capability_encoded(const ResolvedCapability& provided,
                                      const ResolvedCapability& required,
                                      DistanceOracle& oracle) {
    const desc::CodeSignature& ps = provided.signature;
    const desc::CodeSignature& rs = required.signature;
    std::uint64_t pairs = 0;
    int total = 0;
    const bool matched =
        cover_all_encoded</*kProviderExpects=*/true>(ps, ps.inputs, rs,
                                                     rs.inputs, pairs, total) &&
        cover_all_encoded</*kProviderExpects=*/false>(
            rs, rs.outputs, ps, ps.outputs, pairs, total) &&
        cover_all_encoded</*kProviderExpects=*/false>(
            rs, rs.properties, ps, ps.properties, pairs, total);
    oracle.note_batched_queries(pairs);
    return matched ? MatchOutcome{true, total} : MatchOutcome{false, 0};
}

MatchOutcome match_capability(const ResolvedCapability& provided,
                              const ResolvedCapability& required,
                              DistanceOracle& oracle) {
    // Fast path: both sides carry signatures built against the knowledge
    // base's current whole-environment state. The guard is two integer
    // compares against the oracle's global tag (0 means "no encoded view"
    // — the DistanceOracle base — and never dispatches); a stale tag only
    // ever causes fallback to the oracle path, never a wrong answer.
    const desc::CodeSignature& ps = provided.signature;
    const desc::CodeSignature& rs = required.signature;
    const std::uint64_t env = oracle.global_environment_tag();
    if (ps.valid && rs.valid && env != 0 && ps.global_tag == env &&
        rs.global_tag == env) {
        return match_capability_encoded(provided, required, oracle);
    }

    int total = 0;
    // Inputs: the provider's expected inputs must all be supplied; the
    // provider-side (expected) concept subsumes the offered one.
    if (!cover_all(provided.inputs, required.inputs, /*provider_expects=*/true,
                   oracle, total)) {
        return {false, 0};
    }
    // Outputs: the requester's expected outputs must all be delivered; the
    // provider-side (offered) concept subsumes the expected one.
    if (!cover_all(required.outputs, provided.outputs, /*provider_expects=*/false,
                   oracle, total)) {
        return {false, 0};
    }
    // Properties (service category folded in): required ones must be
    // provided; the provided concept subsumes the required one.
    if (!cover_all(required.properties, provided.properties,
                   /*provider_expects=*/false, oracle, total)) {
        return {false, 0};
    }
    return {true, total};
}

bool equivalent_capabilities(const ResolvedCapability& a,
                             const ResolvedCapability& b,
                             DistanceOracle& oracle) {
    const MatchOutcome forward = match_capability(a, b, oracle);
    if (!forward.matched || forward.semantic_distance != 0) return false;
    const MatchOutcome backward = match_capability(b, a, oracle);
    return backward.matched && backward.semantic_distance == 0;
}

}  // namespace sariadne::matching
