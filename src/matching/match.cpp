#include "matching/match.hpp"

#include <limits>
#include <vector>

namespace sariadne::matching {

namespace {

/// For every concept in `expected`, finds the minimum d(subsumer, subsumee)
/// over `offered` — with the provider-side concept passed as `subsumer`
/// according to `provider_expects`. Accumulates the sum into `total`;
/// returns false as soon as one expected concept has no partner.
bool cover_all(const std::vector<ConceptRef>& expected,
               const std::vector<ConceptRef>& offered, bool provider_expects,
               DistanceOracle& oracle, int& total) {
    for (const ConceptRef want : expected) {
        int best = std::numeric_limits<int>::max();
        for (const ConceptRef have : offered) {
            // Provider-side concept is always the subsumer (see header).
            const auto d = provider_expects ? oracle.distance(want, have)
                                            : oracle.distance(have, want);
            if (d && *d < best) {
                best = *d;
                if (best == 0) break;  // cannot improve
            }
        }
        if (best == std::numeric_limits<int>::max()) return false;
        total += best;
    }
    return true;
}

/// d() on packed signature codes: nullopt across ontologies, 0 within one
/// equivalence class, otherwise the merge-scan minimum nesting distance
/// (see packed_distance). Mirrors EncodedOracle::distance exactly.
inline std::optional<int> coded_distance(const desc::CodeSignature& subsumer_sig,
                                         const desc::CodedConceptSpan& subsumer,
                                         const desc::CodeSignature& subsumee_sig,
                                         const desc::CodedConceptSpan& subsumee) {
    if (subsumer.ontology != subsumee.ontology) return std::nullopt;
    if (subsumer.canonical == subsumee.canonical) return 0;
    const int best = encoding::packed_distance(
        subsumer_sig.intervals.data() + subsumer.begin, subsumer.count,
        subsumee_sig.intervals.data() + subsumee.begin, subsumee.count);
    if (best < 0) return std::nullopt;
    return best;
}

/// cover_all on packed signatures — same iteration order, early exits and
/// pair accounting as the oracle path, but no virtual dispatch and no
/// pointer-chasing beyond the two flat interval arrays.
bool cover_all_encoded(const desc::CodeSignature& expected_sig,
                       const std::vector<desc::CodedConceptSpan>& expected,
                       const desc::CodeSignature& offered_sig,
                       const std::vector<desc::CodedConceptSpan>& offered,
                       bool provider_expects, std::uint64_t& pairs,
                       int& total) {
    for (const desc::CodedConceptSpan& want : expected) {
        int best = std::numeric_limits<int>::max();
        for (const desc::CodedConceptSpan& have : offered) {
            ++pairs;
            const auto d =
                provider_expects
                    ? coded_distance(expected_sig, want, offered_sig, have)
                    : coded_distance(offered_sig, have, expected_sig, want);
            if (d && *d < best) {
                best = *d;
                if (best == 0) break;  // cannot improve
            }
        }
        if (best == std::numeric_limits<int>::max()) return false;
        total += best;
    }
    return true;
}

/// The batched fast path: the three Match clauses over two CodeSignatures.
MatchOutcome match_encoded(const ResolvedCapability& provided,
                           const ResolvedCapability& required,
                           DistanceOracle& oracle) {
    const desc::CodeSignature& ps = provided.signature;
    const desc::CodeSignature& rs = required.signature;
    std::uint64_t pairs = 0;
    int total = 0;
    const bool matched =
        cover_all_encoded(ps, ps.inputs, rs, rs.inputs,
                          /*provider_expects=*/true, pairs, total) &&
        cover_all_encoded(rs, rs.outputs, ps, ps.outputs,
                          /*provider_expects=*/false, pairs, total) &&
        cover_all_encoded(rs, rs.properties, ps, ps.properties,
                          /*provider_expects=*/false, pairs, total);
    oracle.note_batched_queries(pairs);
    return matched ? MatchOutcome{true, total} : MatchOutcome{false, 0};
}

}  // namespace

MatchOutcome match_capability(const ResolvedCapability& provided,
                              const ResolvedCapability& required,
                              DistanceOracle& oracle) {
    // Fast path: both sides carry signatures built against the knowledge
    // base's current whole-environment state. The guard is two integer
    // compares against the oracle's global tag (0 means "no encoded view"
    // — the DistanceOracle base — and never dispatches); a stale tag only
    // ever causes fallback to the oracle path, never a wrong answer.
    const desc::CodeSignature& ps = provided.signature;
    const desc::CodeSignature& rs = required.signature;
    const std::uint64_t env = oracle.global_environment_tag();
    if (ps.valid && rs.valid && env != 0 && ps.global_tag == env &&
        rs.global_tag == env) {
        return match_encoded(provided, required, oracle);
    }

    int total = 0;
    // Inputs: the provider's expected inputs must all be supplied; the
    // provider-side (expected) concept subsumes the offered one.
    if (!cover_all(provided.inputs, required.inputs, /*provider_expects=*/true,
                   oracle, total)) {
        return {false, 0};
    }
    // Outputs: the requester's expected outputs must all be delivered; the
    // provider-side (offered) concept subsumes the expected one.
    if (!cover_all(required.outputs, provided.outputs, /*provider_expects=*/false,
                   oracle, total)) {
        return {false, 0};
    }
    // Properties (service category folded in): required ones must be
    // provided; the provided concept subsumes the required one.
    if (!cover_all(required.properties, provided.properties,
                   /*provider_expects=*/false, oracle, total)) {
        return {false, 0};
    }
    return {true, total};
}

bool equivalent_capabilities(const ResolvedCapability& a,
                             const ResolvedCapability& b,
                             DistanceOracle& oracle) {
    const MatchOutcome forward = match_capability(a, b, oracle);
    if (!forward.matched || forward.semantic_distance != 0) return false;
    const MatchOutcome backward = match_capability(b, a, oracle);
    return backward.matched && backward.semantic_distance == 0;
}

}  // namespace sariadne::matching
