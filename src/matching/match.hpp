// The paper's semantic matching relation (§2.3).
//
// Match(C1, C2) — C1 a provided capability, C2 a required one — holds iff
//   * every input C1 expects is offered by C2: the expected (more generic)
//     input concept subsumes some offered input concept,
//   * every output C2 expects is offered by C1: the provided output concept
//     subsumes the expected output concept, and
//   * every property C2 requires (service category included) is provided by
//     C1: the provided property concept subsumes the required one.
//
// (The paper's prose writes d(in, in') for the input clause; the worked
// Figure 1 example — provided SendDigitalStream expecting DigitalResource
// matching requested GetVideoStream offering VideoResource — fixes the
// intended argument order: the *provider-side* concept is the subsumer in
// all three clauses. We implement that order.)
//
// SemanticDistance(C1, C2) sums, over the matched pairs, the subsumption
// level distance d(), taking for each expected element its best (minimum
// distance) partner; it scores how closely an advertisement fits a request
// (0 = exact fit) and orders capabilities inside the directory DAGs.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "encoding/resolved.hpp"
#include "ontology/ids.hpp"

namespace sariadne::matching {

using desc::ResolvedCapability;
using onto::ConceptRef;

/// Subsumption-distance provider: d(subsumer, subsumee) — 0 when
/// equivalent, the number of classified-hierarchy levels when subsumption
/// holds, std::nullopt (the paper's NULL) otherwise. Implementations:
/// EncodedOracle (interval codes, the fast path) and TaxonomyOracle
/// (reasoner output, used by the online matcher and as a test reference).
class DistanceOracle {
public:
    virtual ~DistanceOracle() = default;

    virtual std::optional<int> distance(ConceptRef subsumer,
                                        ConceptRef subsumee) = 0;

    /// Combined code-version tag of an ontology set as this oracle sees it
    /// — the precise per-set tag used at publish-time version validation.
    /// The base returns 0 (no encoded view), so non-encoded oracles always
    /// use the d() path.
    virtual std::uint64_t environment_tag(
        const FlatSet<onto::OntologyIndex>& ontologies) {
        (void)ontologies;
        return 0;
    }

    /// Whole-environment tag as this oracle sees it. The batched
    /// flat-layout kernel is taken only when both capabilities carry valid
    /// CodeSignatures whose global_tag equals this — a single integer
    /// compare per side, cheap enough for flat-scan inner loops. Without
    /// an encoded view the answer is 0: with it, the guard never passes.
    /// Deliberately non-virtual: match_capability evaluates this guard on
    /// every call, and a data-pointer load beats a virtual dispatch there;
    /// encoded oracles install their tag word at construction.
    std::uint64_t global_environment_tag() const noexcept {
        return global_tag_word_ != nullptr
                   ? global_tag_word_->load(std::memory_order_acquire)
                   : 0;
    }

    /// Number of d() evaluations performed — the paper's "number of
    /// semantic matches" cost metric at concept granularity.
    std::uint64_t queries() const noexcept { return queries_; }

    /// Reports concept-pair evaluations done by the batched encoded kernel
    /// so queries() counts both matching paths identically.
    void note_batched_queries(std::uint64_t pairs) noexcept {
        queries_ += pairs;
    }

protected:
    std::uint64_t queries_ = 0;
    /// The environment-tag word backing global_environment_tag(), owned by
    /// the knowledge base the oracle was constructed over (which outlives
    /// it). nullptr = no encoded view.
    const std::atomic<std::uint64_t>* global_tag_word_ = nullptr;
};

/// Result of one capability match.
struct MatchOutcome {
    bool matched = false;
    int semantic_distance = 0;  ///< meaningful only when matched
};

/// Evaluates Match(provided, required) and, when it holds, the semantic
/// distance. Returns {false, 0} otherwise. When both capabilities carry
/// CodeSignatures whose environment tags match the oracle's current view,
/// the evaluation runs as a non-virtual batched kernel over the packed
/// interval arrays (identical results, identical queries() accounting);
/// otherwise it falls back to per-pair oracle.distance() calls.
MatchOutcome match_capability(const ResolvedCapability& provided,
                              const ResolvedCapability& required,
                              DistanceOracle& oracle);

/// The prechecked encoded kernel behind match_capability's fast path: the
/// three Match clauses evaluated directly over the two packed
/// CodeSignatures, no virtual tag probe. Callers must have established the
/// dispatch guard themselves — both signatures valid and carrying the
/// oracle's current nonzero global environment tag. The DAG hot path
/// proves this once per query from its freshness summaries
/// (summary.code_tag == current tag ⇒ guard holds) instead of re-deriving
/// it per vertex. Results and queries() accounting are identical to
/// match_capability on the same inputs.
MatchOutcome match_capability_encoded(const ResolvedCapability& provided,
                                      const ResolvedCapability& required,
                                      DistanceOracle& oracle);

/// Convenience: true iff Match(provided, required) holds.
inline bool matches(const ResolvedCapability& provided,
                    const ResolvedCapability& required, DistanceOracle& oracle) {
    return match_capability(provided, required, oracle).matched;
}

/// True iff the two capabilities are equivalent in the paper's §3.3 sense:
/// Match holds both ways with distance 0 both ways (they collapse into one
/// DAG vertex).
bool equivalent_capabilities(const ResolvedCapability& a,
                             const ResolvedCapability& b,
                             DistanceOracle& oracle);

}  // namespace sariadne::matching
