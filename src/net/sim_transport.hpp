// SimTransport — the discrete-event simulator behind the Transport seam.
// A thin forwarding adapter: every call maps 1:1 onto the pre-seam
// net::Simulator API, so a DiscoveryNetwork on a SimTransport replays the
// pre-seam protocol byte-identically (same event order, same wire_seq
// assignment, same TrafficStats). Fault injection, mobility and topology
// control stay available through the simulator() escape hatch — the one
// sanctioned way for tests and benches to reach the concrete simulator
// now that DiscoveryNetwork no longer leaks it.
#pragma once

#include <memory>
#include <utility>

#include "ariadne/protocol.hpp"
#include "ariadne/transport.hpp"
#include "net/simulator.hpp"

namespace sariadne::ariadne {

class SimTransport final : public Transport, private net::NodeApp {
public:
    explicit SimTransport(net::Topology topology,
                          double per_hop_latency_ms = 2.0)
        : sim_(std::make_unique<net::Simulator>(std::move(topology),
                                                per_hop_latency_ms)) {
        for (net::NodeId node = 0; node < sim_->topology().node_count();
             ++node) {
            sim_->attach(node, this);
        }
    }

    /// The escape hatch: full simulator access (faults, mobility,
    /// topology mutation, stepping) for tests and benches.
    net::Simulator& simulator() noexcept { return *sim_; }
    const net::Simulator& simulator() const noexcept { return *sim_; }

    // --- Transport -------------------------------------------------------

    void set_delivery_handler(DeliveryHandler handler) override {
        handler_ = std::move(handler);
    }

    void set_metrics(obs::MetricsRegistry* registry) override {
        sim_->set_metrics(registry);
    }

    void unicast(net::NodeId from, net::NodeId to, net::Message msg) override {
        sim_->unicast(from, to, std::move(msg));
    }

    void broadcast(net::NodeId from, std::uint32_t ttl_hops,
                   net::Message msg) override {
        sim_->broadcast(from, ttl_hops, std::move(msg));
    }

    net::SimTime now() const override { return sim_->now(); }

    void schedule(net::SimTime delay_ms,
                  std::function<void()> action) override {
        sim_->schedule(delay_ms, std::move(action));
    }

    void run_for(net::SimTime duration_ms) override {
        sim_->run(sim_->now() + duration_ms);
    }

    bool idle() const override { return sim_->idle(); }

    std::size_t node_count() const override {
        return sim_->topology().node_count();
    }

    bool is_up(net::NodeId node) const override {
        return sim_->topology().is_up(node);
    }

    std::vector<int> hop_distances(net::NodeId from) const override {
        return sim_->topology().hop_distances(from);
    }

    bool is_infrastructure(net::NodeId node) const override {
        return sim_->topology().is_infrastructure(node);
    }

    std::size_t degree(net::NodeId node) const override {
        return sim_->topology().neighbors(node).size();
    }

    const net::TrafficStats& stats() const override { return sim_->stats(); }

private:
    // --- net::NodeApp (delivery bridge) ----------------------------------

    void on_start(net::Simulator&, net::NodeId) override {}

    void on_message(net::Simulator&, net::NodeId self,
                    const net::Message& msg) override {
        if (handler_) handler_(self, msg);
    }

    std::unique_ptr<net::Simulator> sim_;
    DeliveryHandler handler_;
};

/// Convenience for tests/benches built on the simulator testbed: the
/// simulator behind `network`'s transport. Precondition: the network was
/// constructed over a SimTransport (the topology convenience constructor
/// guarantees that); throws std::bad_cast otherwise.
inline net::Simulator& sim(DiscoveryNetwork& network) {
    return dynamic_cast<SimTransport&>(network.transport()).simulator();
}

inline const net::Simulator& sim(const DiscoveryNetwork& network) {
    return dynamic_cast<const SimTransport&>(network.transport()).simulator();
}

}  // namespace sariadne::ariadne
